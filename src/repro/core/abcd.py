"""An ABCD-style, demand-driven less-than prover.

Bodik, Gupta and Sarkar's ABCD algorithm ("Array Bounds Checks on Demand",
PLDI 2000) is the closest relative of the paper's analysis (Section 5): it
also builds a sparse program representation and reasons about strict
inequalities, but it answers queries *on demand* by searching an inequality
graph instead of computing the transitive closure of all less-than facts up
front.

This module reimplements that style of reasoning for our IR, for use as an
ablation baseline.  The inequality graph has one node per SSA variable and a
weighted edge ``u --w--> v`` meaning the analysis knows ``v >= u + w``:

* ``v = u + c``   (constant ``c``)                    edge ``u --c--> v``
* ``v = u``       (any copy)                          edge ``u --0--> v``
* σ-copies carry the branch information: on the true side of ``(a < b)`` the
  copy of ``b`` is at least one larger than the copy of ``a``; on the false
  side the copy of ``a`` is at least as large as the copy of ``b``; the other
  predicates are handled symmetrically.
* ``v = φ(a, b, ...)``: ``v`` is only known to be at least ``min`` over the
  incoming values, so a query must hold along *every* incoming edge.

A query ``proves_less_than(a, b)`` succeeds when the graph proves
``b >= a + 1``.  Cycles (loops) are resolved pessimistically, exactly like
ABCD's "reduce cycles conservatively" fallback.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.alias.interface import AliasAnalysis
from repro.alias.results import AliasResult, MemoryLocation
from repro.core.disambiguation import decompose_pointer
from repro.ir.function import Function
from repro.ir.instructions import BinaryOp, Copy, GetElementPtr, ICmp, Phi
from repro.ir.values import Argument, ConstantInt, Value

NEG_INF = float("-inf")


class InequalityEdges:
    """The weighted inequality graph of one function (in e-SSA form)."""

    def __init__(self, function: Function) -> None:
        self.function = function
        #: incoming[v] = list of (u, w) with v >= u + w, where u may also be a
        #: *list* of alternatives that must all hold (φ-functions).
        self.incoming: Dict[Value, List[Tuple[object, int]]] = {}
        self._build()

    def _add(self, target: Value, source: object, weight: int) -> None:
        self.incoming.setdefault(target, []).append((source, weight))

    def _build(self) -> None:
        for inst in self.function.instructions():
            if isinstance(inst, BinaryOp) and inst.op in ("add", "sub"):
                constant = inst.constant_operand()
                if constant is None:
                    continue
                other = inst.lhs if inst.rhs is constant else inst.rhs
                weight = constant.value if inst.op == "add" else -constant.value
                if inst.op == "sub" and inst.lhs is constant:
                    continue  # c - x tells us nothing monotone about x
                self._add(inst, other, weight)
            elif isinstance(inst, GetElementPtr):
                index = inst.constant_index()
                if index is not None:
                    self._add(inst, inst.base, index)
            elif isinstance(inst, Copy):
                self._add(inst, inst.source, 0)
                self._add_sigma_fact(inst)
            elif isinstance(inst, Phi):
                incoming = [value for value, _block in inst.incoming()]
                if incoming:
                    self._add(inst, list(incoming), 0)

    def _add_sigma_fact(self, copy: Copy) -> None:
        condition: Optional[ICmp] = getattr(copy, "sigma_condition", None)
        side = getattr(copy, "sigma_operand_side", None)
        on_true = getattr(copy, "sigma_on_true_branch", True)
        if condition is None or side not in ("lhs", "rhs"):
            return
        predicate = condition.predicate if on_true else ICmp.NEGATED[condition.predicate]
        other_operand = condition.rhs if side == "lhs" else condition.lhs
        if side == "rhs":
            predicate = ICmp.SWAPPED[predicate]
        partner = self._partner(copy, condition, side, on_true)
        other: Optional[Value] = partner if partner is not None else (
            other_operand if not isinstance(other_operand, ConstantInt) else None)
        if other is None:
            return
        # ``copy`` renames the operand on ``side``; relate it to ``other``.
        if predicate == "sgt":      # self > other  =>  self >= other + 1
            self._add(copy, other, 1)
        elif predicate == "sge":    # self >= other
            self._add(copy, other, 0)
        elif predicate == "eq":
            self._add(copy, other, 0)

    def _partner(self, copy: Copy, condition: ICmp, side: str, on_true: bool) -> Optional[Copy]:
        block = copy.parent
        if block is None:
            return None
        wanted = "rhs" if side == "lhs" else "lhs"
        for inst in block.instructions:
            if (isinstance(inst, Copy) and inst.kind == "sigma"
                    and getattr(inst, "sigma_condition", None) is condition
                    and getattr(inst, "sigma_on_true_branch", None) == on_true
                    and getattr(inst, "sigma_operand_side", None) == wanted):
                return inst
        return None


class ABCDProver:
    """Demand-driven strict-inequality queries over one function."""

    def __init__(self, function: Function) -> None:
        self.graph = InequalityEdges(function)

    def proves_less_than(self, smaller: Value, greater: Value) -> bool:
        """True when the inequality graph proves ``greater >= smaller + 1``."""
        return self._best_distance(greater, smaller, {}) >= 1

    def _best_distance(self, node: Value, origin: Value, active: Dict[Value, bool]) -> float:
        """The largest provable ``node - origin`` (or -inf when unrelated)."""
        if node is origin:
            return 0
        if node in active:
            # Cycle: resolve conservatively, as ABCD does for unknown cycles.
            return NEG_INF
        active[node] = True
        best = NEG_INF
        for source, weight in self.graph.incoming.get(node, []):
            if isinstance(source, list):
                # φ-function: the bound must hold over every incoming value.
                candidate = min(
                    (self._best_distance(value, origin, active) for value in source),
                    default=NEG_INF,
                )
            else:
                candidate = self._best_distance(source, origin, active)
            if candidate > NEG_INF and candidate + weight > best:
                best = candidate + weight
        del active[node]
        return best


class ABCDAliasAnalysis(AliasAnalysis):
    """Pointer disambiguation backed by the demand-driven ABCD-style prover.

    Applies the same criteria as Definition 3.11, but each query triggers a
    graph search instead of a lookup in precomputed LT sets.  Functions must
    already be in e-SSA form (prepare them with a
    :class:`~repro.core.sraa.StrictInequalityAliasAnalysis` or call
    :func:`repro.essa.convert_to_essa` first); otherwise branch information
    is simply absent and the analysis is weaker.
    """

    name = "abcd"

    def __init__(self) -> None:
        self._provers: Dict[Function, ABCDProver] = {}

    def prepare_function(self, function: Function) -> None:
        if function not in self._provers:
            from repro.essa import convert_to_essa
            convert_to_essa(function)
            self._provers[function] = ABCDProver(function)

    def _prover_for(self, pointer: Value) -> Optional[ABCDProver]:
        function = getattr(pointer, "function", None)
        if function is None:
            parent = getattr(pointer, "parent", None)
            function = parent.parent if parent is not None else None
        if function is None:
            return None
        self.prepare_function(function)
        return self._provers[function]

    def alias(self, loc_a: MemoryLocation, loc_b: MemoryLocation) -> AliasResult:
        prover = self._prover_for(loc_a.pointer)
        if prover is None:
            return AliasResult.MAY_ALIAS
        a, b = loc_a.pointer, loc_b.pointer
        if prover.proves_less_than(a, b) or prover.proves_less_than(b, a):
            return AliasResult.NO_ALIAS
        base_a, index_a = decompose_pointer(a)
        base_b, index_b = decompose_pointer(b)
        if index_a is not None and index_b is not None and base_a is base_b:
            if not (index_a.is_constant() and index_b.is_constant()):
                if prover.proves_less_than(index_a, index_b) or \
                        prover.proves_less_than(index_b, index_a):
                    return AliasResult.NO_ALIAS
        return AliasResult.MAY_ALIAS
