"""The Strict-Relations Alias Analysis (the paper's ``sraa`` LLVM pass).

This class packages the less-than analysis plus the disambiguation criteria
of Definition 3.11 behind the common :class:`repro.alias.AliasAnalysis`
interface, so that it can be chained with the baselines (``BA + LT`` in the
paper's tables) and evaluated by the ``aa-eval`` harness.

Like the original pass, preparing a function converts it to e-SSA form (the
``vSSA`` prerequisite); the transformation preserves semantics, so this is
transparent to clients.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.alias.interface import AliasAnalysis
from repro.alias.results import AliasResult, MemoryLocation
from repro.core.disambiguation import PointerDisambiguator
from repro.core.lessthan.analysis import LessThanAnalysis
from repro.ir.function import Function
from repro.ir.module import Module


class StrictInequalityAliasAnalysis(AliasAnalysis):
    """Alias analysis based on strict less-than relations between pointers."""

    name = "lt"

    def __init__(self, subject: Optional[Union[Function, Module]] = None,
                 interprocedural: bool = True) -> None:
        self.interprocedural = interprocedural
        self._module_analysis: Optional[LessThanAnalysis] = None
        self._module_disambiguator: Optional[PointerDisambiguator] = None
        self._per_function: Dict[Function, PointerDisambiguator] = {}
        if isinstance(subject, Module):
            self._prepare_module(subject)
        elif isinstance(subject, Function):
            self.prepare_function(subject)

    # -- preparation -------------------------------------------------------------------
    def _prepare_module(self, module: Module) -> None:
        analysis = LessThanAnalysis(module, build_essa=True,
                                    interprocedural=self.interprocedural)
        self._module_analysis = analysis
        self._module_disambiguator = PointerDisambiguator(analysis)

    def prepare_function(self, function: Function) -> None:
        if self._module_disambiguator is not None:
            return  # the whole module is already covered
        if function in self._per_function:
            return
        analysis = LessThanAnalysis(function, build_essa=True)
        self._per_function[function] = PointerDisambiguator(analysis)

    # -- queries ------------------------------------------------------------------------
    def _disambiguator_for(self, location: MemoryLocation) -> Optional[PointerDisambiguator]:
        if self._module_disambiguator is not None:
            return self._module_disambiguator
        pointer = location.pointer
        function = getattr(pointer, "function", None)
        if function is None:
            parent = getattr(pointer, "parent", None)
            function = parent.parent if parent is not None else None
        if function is None:
            return None
        if function not in self._per_function:
            self.prepare_function(function)
        return self._per_function.get(function)

    def alias(self, loc_a: MemoryLocation, loc_b: MemoryLocation) -> AliasResult:
        disambiguator = self._disambiguator_for(loc_a)
        if disambiguator is None:
            return AliasResult.MAY_ALIAS
        if disambiguator.no_alias(loc_a.pointer, loc_b.pointer):
            return AliasResult.NO_ALIAS
        return AliasResult.MAY_ALIAS

    # -- introspection ---------------------------------------------------------------------
    @property
    def analysis(self) -> Optional[LessThanAnalysis]:
        """The underlying module-level analysis, when prepared with a module."""
        return self._module_analysis
