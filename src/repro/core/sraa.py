"""The Strict-Relations Alias Analysis (the paper's ``sraa`` LLVM pass).

This class packages the less-than analysis plus the disambiguation criteria
of Definition 3.11 behind the common :class:`repro.alias.AliasAnalysis`
interface, so that it can be chained with the baselines (``BA + LT`` in the
paper's tables) and evaluated by the ``aa-eval`` harness.

Like the original pass, preparing a function converts it to e-SSA form (the
``vSSA`` prerequisite); the transformation preserves semantics, so this is
transparent to clients.

When constructed with a
:class:`~repro.passes.analysis_cache.FunctionAnalysisCache`, every expensive
piece of preparation (range analyses, e-SSA conversion, the constraint
solve, the disambiguator's per-value tables) is fetched from the shared
cache, so evaluating the same module repeatedly — or under several chained
configurations — computes each analysis exactly once.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.alias.interface import AliasAnalysis
from repro.alias.results import AliasResult, MemoryLocation
from repro.core.disambiguation import DisambiguationReason, PointerDisambiguator
from repro.core.lessthan.analysis import LessThanAnalysis
from repro.ir.function import Function
from repro.ir.module import Module
from repro.passes.analysis_cache import FunctionAnalysisCache


class StrictInequalityAliasAnalysis(AliasAnalysis):
    """Alias analysis based on strict less-than relations between pointers."""

    name = "lt"

    def __init__(self, subject: Optional[Union[Function, Module]] = None,
                 interprocedural: bool = True,
                 cache: Optional[FunctionAnalysisCache] = None) -> None:
        self.interprocedural = interprocedural
        self.cache = cache
        self._module_analysis: Optional[LessThanAnalysis] = None
        self._module_disambiguator: Optional[PointerDisambiguator] = None
        self._per_function: Dict[Function, PointerDisambiguator] = {}
        if isinstance(subject, Module):
            self._prepare_module(subject)
        elif isinstance(subject, Function):
            self.prepare_function(subject)

    # -- preparation -------------------------------------------------------------------
    def _prepare_module(self, module: Module) -> None:
        if self.cache is not None:
            self._module_analysis = self.cache.module_lessthan(
                module, self.interprocedural)
            self._module_disambiguator = self.cache.module_disambiguator(
                module, self.interprocedural)
            return
        analysis = LessThanAnalysis(module, build_essa=True,
                                    interprocedural=self.interprocedural)
        self._module_analysis = analysis
        self._module_disambiguator = PointerDisambiguator(analysis)

    def prepare_function(self, function: Function) -> None:
        if self._module_disambiguator is not None:
            return  # the whole module is already covered
        if function in self._per_function:
            return
        if self.cache is not None:
            self._per_function[function] = self.cache.function_disambiguator(function)
            return
        analysis = LessThanAnalysis(function, build_essa=True)
        self._per_function[function] = PointerDisambiguator(analysis)

    # -- queries ------------------------------------------------------------------------
    def _disambiguator_for(self, location: MemoryLocation) -> Optional[PointerDisambiguator]:
        if self._module_disambiguator is not None:
            return self._module_disambiguator
        pointer = location.pointer
        function = getattr(pointer, "function", None)
        if function is None:
            parent = getattr(pointer, "parent", None)
            function = parent.parent if parent is not None else None
        if function is None:
            return None
        if function not in self._per_function:
            self.prepare_function(function)
        return self._per_function.get(function)

    def alias(self, loc_a: MemoryLocation, loc_b: MemoryLocation) -> AliasResult:
        disambiguator = self._disambiguator_for(loc_a)
        if disambiguator is None:
            return AliasResult.MAY_ALIAS
        if disambiguator.no_alias(loc_a.pointer, loc_b.pointer):
            return AliasResult.NO_ALIAS
        return AliasResult.MAY_ALIAS

    def alias_many(self, locations, mask=None):
        """Batched queries through :meth:`PointerDisambiguator.disambiguate_pairs`.

        One table lookup per location instead of per pair; verdicts are
        identical to issuing :meth:`alias` pair by pair.  ``mask`` restricts
        the batch to the given ``(i, j)`` pairs (see
        :meth:`AliasAnalysis.alias_many`); the chain combinator uses it so the
        LT set operations are skipped for pairs basicaa already resolved.
        """
        if not locations:
            return
        disambiguators = [self._disambiguator_for(location) for location in locations]
        disambiguator = disambiguators[0]
        if any(d is not disambiguator for d in disambiguators):
            # Mixed-function batches fall back to the generic pairwise path.
            yield from super().alias_many(locations, mask)
            return
        if disambiguator is None:
            if mask is not None:
                for i, j in mask:
                    yield i, j, AliasResult.MAY_ALIAS
                return
            for i in range(len(locations)):
                for j in range(i + 1, len(locations)):
                    yield i, j, AliasResult.MAY_ALIAS
            return
        pointers = [location.pointer for location in locations]
        pairs = list(mask) if mask is not None else None
        no_alias = AliasResult.NO_ALIAS
        may_alias = AliasResult.MAY_ALIAS
        none = DisambiguationReason.NONE
        for i, j, reason in disambiguator.disambiguate_pairs(pointers, pairs):
            yield i, j, (may_alias if reason is none else no_alias)

    # -- introspection ---------------------------------------------------------------------
    @property
    def analysis(self) -> Optional[LessThanAnalysis]:
        """The underlying module-level analysis, when prepared with a module."""
        return self._module_analysis

    def disambiguators(self):
        """Every :class:`PointerDisambiguator` this analysis has built.

        The execution engine reads their statistics to report per-shard
        disambiguation work (queries, class truncation) on the coordinator.
        """
        if self._module_disambiguator is not None:
            return [self._module_disambiguator]
        return list(self._per_function.values())
