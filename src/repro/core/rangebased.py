"""Range-based pointer disambiguation (the family the paper argues against).

Section 2 and Section 5 of the paper discuss analyses that associate an
interval with every pointer offset and declare two derived pointers disjoint
when the intervals do not overlap (Balakrishnan–Reps value sets, symbolic
range analyses, etc.).  The paper's central observation is that such
analyses *cannot* separate ``v[i]`` from ``v[j]`` in the motivating loops,
because the ranges of ``i`` and ``j`` overlap even though ``i < j`` holds at
every point where both accesses happen.

This module implements that baseline: a disambiguator that uses only the
interval analysis.  It exists for the ablation benchmark, which shows the
strict-inequality analysis succeeding exactly where the interval argument
fails — the paper's headline claim.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.alias.interface import AliasAnalysis
from repro.alias.results import AliasResult, MemoryLocation
from repro.core.disambiguation import decompose_pointer
from repro.ir.function import Function
from repro.ir.values import Value
from repro.rangeanalysis.analysis import RangeAnalysis


class RangeBasedAliasAnalysis(AliasAnalysis):
    """NoAlias when two same-base derived pointers have disjoint offset ranges."""

    name = "range-based"

    def __init__(self) -> None:
        self._ranges: Dict[Function, RangeAnalysis] = {}

    def prepare_function(self, function: Function) -> None:
        if function not in self._ranges:
            self._ranges[function] = RangeAnalysis(function)

    def _range_for(self, value: Value):
        function = getattr(value, "function", None)
        if function is None:
            parent = getattr(value, "parent", None)
            function = parent.parent if parent is not None else None
        if function is None:
            return None
        self.prepare_function(function)
        return self._ranges[function].range_of(value)

    def alias(self, loc_a: MemoryLocation, loc_b: MemoryLocation) -> AliasResult:
        base_a, index_a = decompose_pointer(loc_a.pointer)
        base_b, index_b = decompose_pointer(loc_b.pointer)
        if index_a is None or index_b is None:
            return AliasResult.MAY_ALIAS
        if base_a is not base_b:
            return AliasResult.MAY_ALIAS
        range_a = self._range_for(index_a) if not index_a.is_constant() else None
        range_b = self._range_for(index_b) if not index_b.is_constant() else None
        from repro.rangeanalysis.interval import Interval
        from repro.ir.values import ConstantInt

        if isinstance(index_a, ConstantInt):
            range_a = Interval.constant(index_a.value)
        if isinstance(index_b, ConstantInt):
            range_b = Interval.constant(index_b.value)
        if range_a is None or range_b is None:
            return AliasResult.MAY_ALIAS
        if range_a.is_bottom() or range_b.is_bottom():
            # An empty range means the access is unreachable (or the analysis
            # has no information); claiming disjointness from it would be
            # vacuous, so stay conservative.
            return AliasResult.MAY_ALIAS
        if not range_a.intersects(range_b):
            return AliasResult.NO_ALIAS
        return AliasResult.MAY_ALIAS
