"""Constraint generation (Figure 7 of the paper).

The generator walks an e-SSA function and emits one constraint per SSA
variable.  Constraint generation is linear in the number of variables, which
is the property the scalability experiment (Figure 11) measures: the number
of constraints grows linearly with the number of instructions.

The rules, matching Figure 7 (with the straightforward generalisation to all
comparison predicates and to pointer arithmetic through ``gep``):

1. ``x = •``                     → ``LT(x) = ∅``
2. ``x1 = x2 + n`` (n > 0)       → ``LT(x1) = {x2} ∪ LT(x2)``
3. ``x1 = x2 - n ‖ ⟨x3 = x2⟩``   → ``LT(x3) = {x1} ∪ LT(x2)``, ``LT(x1) = ∅``
4. ``x = φ(x1, ..., xn)``        → ``LT(x) = LT(x1) ∩ ... ∩ LT(xn)``
5. ``(x1 < x2)?`` with σ-copies  → ``LT(x2t) = {x1t} ∪ LT(x2) ∪ LT(x1t)``,
                                    ``LT(x1t) = LT(x1)``,
                                    ``LT(x2f) = LT(x2)``,
                                    ``LT(x1f) = LT(x1) ∪ LT(x2f)``
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.lessthan.constraints import (
    Constraint,
    InitConstraint,
    IntersectionConstraint,
    UnionConstraint,
)
from repro.ir.function import Function
from repro.ir.instructions import (
    BinaryOp,
    Call,
    Copy,
    GetElementPtr,
    ICmp,
    Instruction,
    Phi,
)
from repro.ir.module import Module
from repro.ir.values import Argument, ConstantInt, Value
from repro.rangeanalysis.analysis import RangeAnalysis
from repro.rangeanalysis.classify import classify_additive


#: relation of a σ-copy's own operand to the other operand of the comparison,
#: per (predicate, branch taken).  "lt": self < other, "gt": self > other,
#: "le", "ge", "eq" analogous, "none": no information.
_SIGMA_RELATION = {
    ("slt", True): {"lhs": "lt", "rhs": "gt"},
    ("slt", False): {"lhs": "ge", "rhs": "le"},
    ("sle", True): {"lhs": "le", "rhs": "ge"},
    ("sle", False): {"lhs": "gt", "rhs": "lt"},
    ("sgt", True): {"lhs": "gt", "rhs": "lt"},
    ("sgt", False): {"lhs": "le", "rhs": "ge"},
    ("sge", True): {"lhs": "ge", "rhs": "le"},
    ("sge", False): {"lhs": "lt", "rhs": "gt"},
    ("eq", True): {"lhs": "eq", "rhs": "eq"},
    ("eq", False): {"lhs": "none", "rhs": "none"},
    ("ne", True): {"lhs": "none", "rhs": "none"},
    ("ne", False): {"lhs": "eq", "rhs": "eq"},
}


def _is_variable(value: Value) -> bool:
    """Constants are not variables; only SSA names participate in LT sets."""
    return isinstance(value, (Argument, Instruction))


class ConstraintGenerator:
    """Generates less-than constraints for functions (and whole modules)."""

    def __init__(self, ranges: Optional[Dict[Function, RangeAnalysis]] = None) -> None:
        # Ranges may be shared with the caller (the analysis driver computes
        # them once and reuses them for e-SSA construction and generation).
        self._ranges = ranges or {}

    # -- entry points ------------------------------------------------------------
    def generate_for_function(self, function: Function) -> List[Constraint]:
        constraints: List[Constraint] = []
        if function.is_declaration():
            return constraints
        ranges = self._range_analysis(function)
        for argument in function.arguments:
            constraints.append(InitConstraint(argument, origin=argument))
        for inst in function.instructions():
            if not inst.produces_value():
                continue
            constraints.append(self._constraint_for(inst, ranges))
        return constraints

    def generate_for_module(self, module: Module, interprocedural: bool = True) -> List[Constraint]:
        """Generate constraints for every function of ``module``.

        With ``interprocedural`` set, formal parameters are constrained by a
        pseudo-φ over the actual arguments of every call site, as described
        in Section 4 of the paper; otherwise they behave like unknown inputs.
        """
        constraints: List[Constraint] = []
        argument_constraints: Dict[Argument, Constraint] = {}
        for function in module.functions:
            if function.is_declaration():
                continue
            ranges = self._range_analysis(function)
            for argument in function.arguments:
                argument_constraints[argument] = InitConstraint(argument, origin=argument)
            for inst in function.instructions():
                if not inst.produces_value():
                    continue
                constraints.append(self._constraint_for(inst, ranges))
        if interprocedural:
            self._add_pseudo_phis(module, argument_constraints)
        constraints.extend(argument_constraints.values())
        return constraints

    def _add_pseudo_phis(self, module: Module,
                         argument_constraints: Dict[Argument, Constraint]) -> None:
        actuals: Dict[Argument, List[Value]] = {}
        complete: Dict[Argument, bool] = {}
        for function in module.functions:
            for inst in function.instructions():
                if not isinstance(inst, Call):
                    continue
                callee = inst.callee
                for index, actual in enumerate(inst.arguments):
                    if index >= len(callee.arguments):
                        continue
                    formal = callee.arguments[index]
                    actuals.setdefault(formal, [])
                    if _is_variable(actual):
                        actuals[formal].append(actual)
                    else:
                        # A constant actual contributes no LT set; the pseudo
                        # φ-function must then fall back to the empty set.
                        complete[formal] = False
        for formal, values in actuals.items():
            if formal not in argument_constraints:
                continue
            if values and complete.get(formal, True):
                argument_constraints[formal] = IntersectionConstraint(
                    formal, values, origin="pseudo-phi")

    # -- per-instruction rules ---------------------------------------------------------
    def _range_analysis(self, function: Function) -> RangeAnalysis:
        if function not in self._ranges:
            self._ranges[function] = RangeAnalysis(function)
        return self._ranges[function]

    def _constraint_for(self, inst: Instruction, ranges: RangeAnalysis) -> Constraint:
        if isinstance(inst, Phi):
            return self._phi_rule(inst)
        if isinstance(inst, Copy):
            return self._copy_rule(inst, ranges)
        if isinstance(inst, (BinaryOp, GetElementPtr)):
            return self._additive_rule(inst, ranges)
        # Loads, calls, allocations, comparisons, ... carry no ordering info.
        return InitConstraint(inst, origin=inst)

    def _phi_rule(self, phi: Phi) -> Constraint:
        sources = [value for value, _block in phi.incoming()]
        if not sources or not all(_is_variable(s) for s in sources):
            # A constant incoming value has no LT set to intersect with;
            # conservatively fall back to the empty set.
            return InitConstraint(phi, origin=phi)
        return IntersectionConstraint(phi, sources, origin=phi)

    def _additive_rule(self, inst: Instruction, ranges: RangeAnalysis) -> Constraint:
        elements: List[Value] = []
        sources: List[Value] = []
        for fact in classify_additive(inst, ranges):
            if fact.kind == "grow" and _is_variable(fact.base):
                elements.append(fact.base)
                sources.append(fact.base)
        if elements:
            return UnionConstraint(inst, elements, sources, origin=inst)
        # Pure subtractions (rule 3) leave the result unconstrained; the
        # ordering information lives on the parallel copy instead.
        return InitConstraint(inst, origin=inst)

    def _copy_rule(self, copy: Copy, ranges: RangeAnalysis) -> Constraint:
        if copy.kind == "split":
            subtraction = getattr(copy, "split_subtraction", None)
            if subtraction is not None:
                # x1 = x2 - n ‖ ⟨x3 = x2⟩  gives  LT(x3) = {x1} ∪ LT(x2).
                return UnionConstraint(copy, [subtraction], [copy.source], origin=copy)
            return UnionConstraint(copy, [], [copy.source], origin=copy)
        if copy.kind == "sigma":
            return self._sigma_rule(copy)
        # Plain copies simply propagate the set of their source.
        if _is_variable(copy.source):
            return UnionConstraint(copy, [], [copy.source], origin=copy)
        return InitConstraint(copy, origin=copy)

    def _sigma_rule(self, copy: Copy) -> Constraint:
        condition: Optional[ICmp] = getattr(copy, "sigma_condition", None)
        side: Optional[str] = getattr(copy, "sigma_operand_side", None)
        on_true: bool = getattr(copy, "sigma_on_true_branch", True)
        source = copy.source
        base_sources: List[Value] = [source] if _is_variable(source) else []
        if condition is None or side not in ("lhs", "rhs"):
            return UnionConstraint(copy, [], base_sources, origin=copy)
        relation = _SIGMA_RELATION.get((condition.predicate, on_true), {}).get(side, "none")
        partner = self._find_partner_sigma(copy, condition, side, on_true)
        other_operand = condition.rhs if side == "lhs" else condition.lhs
        other_ref: Optional[Value] = partner if partner is not None else (
            other_operand if _is_variable(other_operand) else None)
        if relation == "gt" and other_ref is not None:
            return UnionConstraint(copy, [other_ref], base_sources + [other_ref], origin=copy)
        if relation in ("ge", "eq") and other_ref is not None:
            return UnionConstraint(copy, [], base_sources + [other_ref], origin=copy)
        # "lt", "le", "none", or no usable reference to the other operand:
        # the σ-copy just propagates its source's set.
        return UnionConstraint(copy, [], base_sources, origin=copy)

    def _find_partner_sigma(self, copy: Copy, condition: ICmp, side: str,
                            on_true: bool) -> Optional[Copy]:
        """The σ-copy of the *other* operand on the same branch, if any."""
        block = copy.parent
        if block is None:
            return None
        wanted_side = "rhs" if side == "lhs" else "lhs"
        for inst in block.instructions:
            if not isinstance(inst, Copy) or inst.kind != "sigma":
                continue
            if getattr(inst, "sigma_condition", None) is not condition:
                continue
            if getattr(inst, "sigma_on_true_branch", None) != on_true:
                continue
            if getattr(inst, "sigma_operand_side", None) == wanted_side:
                return inst
        return None
