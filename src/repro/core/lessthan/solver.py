"""The worklist constraint solver (Section 3.4 of the paper).

Every constrained variable starts at the top of the lattice P(V) (the set of
all program variables — represented lazily by the ``TOP`` marker so that we
never materialise the full set).  Constraints are then re-evaluated until a
fixed point; by Lemma 3.6 of the paper the sets only shrink, so termination
is guaranteed by the finiteness of the lattice.

The solver records the statistics the paper reports in Section 4.2: number
of constraints, number of worklist pops, and the pops-per-constraint ratio
(the paper measures about 2.1 visits per constraint over SPEC plus the LLVM
test suite, which is the observation backing the "linear in practice" claim).
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

from repro.core.lessthan.constraints import Constraint, LTState, TOP
from repro.ir.values import Value
from repro.util.worklist import Worklist


class SolverStatistics:
    """Counters describing one constraint-solving run."""

    def __init__(self) -> None:
        self.constraint_count = 0
        self.variable_count = 0
        self.worklist_pops = 0
        self.solve_time_seconds = 0.0

    @property
    def pops_per_constraint(self) -> float:
        if self.constraint_count == 0:
            return 0.0
        return self.worklist_pops / self.constraint_count

    def as_dict(self) -> Dict[str, float]:
        return {
            "constraints": self.constraint_count,
            "variables": self.variable_count,
            "worklist_pops": self.worklist_pops,
            "pops_per_constraint": self.pops_per_constraint,
            "solve_time_seconds": self.solve_time_seconds,
        }

    def __repr__(self) -> str:
        return "<SolverStatistics constraints={} pops={} ({:.2f}/constraint)>".format(
            self.constraint_count, self.worklist_pops, self.pops_per_constraint)


class ConstraintSolver:
    """Solves a system of less-than constraints to a fixed point."""

    def __init__(self, constraints: Sequence[Constraint]) -> None:
        self.constraints: List[Constraint] = list(constraints)
        self.statistics = SolverStatistics()
        # Dependency map: which constraints must be re-evaluated when the LT
        # set of a given variable changes.
        self._dependents: Dict[Value, List[Constraint]] = {}
        for constraint in self.constraints:
            for source in constraint.sources():
                self._dependents.setdefault(source, []).append(constraint)

    def solve(self) -> Dict[Value, FrozenSet[Value]]:
        """Run the fixed-point iteration and return the final LT sets."""
        start = time.perf_counter()
        state: LTState = {}
        for constraint in self.constraints:
            state[constraint.target] = TOP
        worklist: Worklist[Constraint] = Worklist(self.constraints)
        while worklist:
            constraint = worklist.pop()
            evaluated = constraint.evaluate(state)
            current = state.get(constraint.target, TOP)
            updated = self._meet(current, evaluated)
            if updated != current:
                state[constraint.target] = updated
                for dependent in self._dependents.get(constraint.target, []):
                    worklist.push(dependent)
        self.statistics.constraint_count = len(self.constraints)
        self.statistics.variable_count = len(state)
        self.statistics.worklist_pops = worklist.pops
        self.statistics.solve_time_seconds = time.perf_counter() - start
        # Any variable still at TOP belongs to a degenerate cycle never fed by
        # a concrete definition (only possible in unreachable code); report it
        # as the empty set so that no unsound ordering is ever claimed.
        result: Dict[Value, FrozenSet[Value]] = {}
        for value, lt_set in state.items():
            result[value] = frozenset() if lt_set is TOP else lt_set  # type: ignore[assignment]
        return result

    @staticmethod
    def _meet(current: object, evaluated: object) -> object:
        """Greatest lower bound of the current and the freshly evaluated set.

        Taking the meet (instead of overwriting) guarantees the monotonically
        decreasing behaviour that the termination proof of the paper relies
        on, independently of the evaluation order of the worklist.
        """
        if current is TOP:
            return evaluated
        if evaluated is TOP:
            return current
        return current & evaluated  # type: ignore[operator]
