"""The worklist constraint solver (Section 3.4 of the paper).

Every constrained variable starts at the top of the lattice P(V) (the set of
all program variables — represented lazily by the ``TOP`` marker so that we
never materialise the full set).  Constraints are then re-evaluated until a
fixed point; by Lemma 3.6 of the paper the sets only shrink, so termination
is guaranteed by the finiteness of the lattice.

Two scheduling strategies reach that fixed point (the solution is the same —
the descending chaotic iteration of a monotone system converges to one fixed
point regardless of evaluation order, which the differential tests assert):

* ``sparse`` (the default) — the worklist is keyed by **variable**: after a
  seed pass that evaluates every constraint once, only the dependents of a
  variable whose LT set actually shrank are re-evaluated.  Multiple changes
  to the same variable coalesce into one pending entry, so a constraint is
  revisited once per batch of source changes rather than once per change.
* ``constraint`` — the legacy scheme: the worklist holds whole constraints
  and a change re-pushes every dependent constraint individually.

The sparse strategy's pop order is a swappable policy shared with the range
solver (``order`` constructor argument / ``REPRO_WORKLIST_ORDER``): ``fifo``
is the legacy queue, ``scc`` pops variables in the condensation
(topological SCC) order of the constraint dependency graph — sources before
the variables they constrain, so each variable tends to see all its inputs
settled before it is revisited — and ``loopdepth`` falls back to the
``scc`` ranks (constraints carry no loop structure).  The fixed point is
the same under every policy (descending iteration on a finite lattice);
only the visit counts differ.

The solver records the statistics the paper reports in Section 4.2: number
of constraints, number of constraint (re-)evaluations, and the
visits-per-constraint ratio (the paper measures about 2.1 visits per
constraint over SPEC plus the LLVM test suite, which is the observation
backing the "linear in practice" claim).  The sparse strategy additionally
records variable pops, coalesced pushes and the resulting skip ratio, which
quantify the work the dependents-only scheme avoids.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

from repro.api.config import (
    ConfigError,
    LT_SOLVERS,
    resolved_lt_solver,
    resolved_worklist_order,
)
from repro.core.lessthan.constraints import Constraint, LTState, TOP
from repro.ir.values import Value
from repro.obs import TRACER
from repro.rangeanalysis.graph import strongly_connected_components
from repro.util.worklist import (
    PriorityWorklist,
    SolverInfo,
    Worklist,
    validate_order,
)


def default_lt_solver() -> str:
    """The configured strategy (default ``sparse``).

    Resolution — active :class:`~repro.api.config.ReproConfig` first, the
    ``REPRO_LT_SOLVER`` environment variable second — lives in
    :mod:`repro.api.config`; invalid values raise
    :class:`~repro.api.config.ConfigError` there instead of silently
    falling back.
    """
    return resolved_lt_solver()


class SolverStatistics:
    """Counters describing one constraint-solving run.

    ``worklist_pops`` counts constraint evaluations in both strategies (the
    paper's "visits per constraint" metric); ``variable_pops`` and
    ``coalesced_pushes`` are only non-zero under the sparse strategy.
    """

    def __init__(self) -> None:
        self.constraint_count = 0
        self.variable_count = 0
        self.worklist_pops = 0
        self.variable_pops = 0
        self.coalesced_pushes = 0
        self.solve_time_seconds = 0.0
        self.order = "fifo"

    def solver_info(self) -> SolverInfo:
        """These counters as a mergeable cross-solver :class:`SolverInfo`.

        Constraint evaluations map onto ``evaluations`` (there is no widening
        on the finite LT lattice); variable pops are keyed by the ordering
        policy that served them.
        """
        info = SolverInfo(evaluations=self.worklist_pops)
        info.record_pops(self.order, self.variable_pops)
        return info

    @property
    def pops_per_constraint(self) -> float:
        if self.constraint_count == 0:
            return 0.0
        return self.worklist_pops / self.constraint_count

    @property
    def skip_ratio(self) -> float:
        """Fraction of scheduling requests absorbed by an already-pending
        variable — re-evaluations the constraint-keyed scheme would have run."""
        attempted = self.coalesced_pushes + self.variable_pops
        if attempted == 0:
            return 0.0
        return self.coalesced_pushes / attempted

    def as_dict(self) -> Dict[str, float]:
        return {
            "constraints": self.constraint_count,
            "variables": self.variable_count,
            "worklist_pops": self.worklist_pops,
            "pops_per_constraint": self.pops_per_constraint,
            "variable_pops": self.variable_pops,
            "coalesced_pushes": self.coalesced_pushes,
            "skip_ratio": self.skip_ratio,
            "solve_time_seconds": self.solve_time_seconds,
            "order": self.order,
        }

    def __repr__(self) -> str:
        return "<SolverStatistics constraints={} pops={} ({:.2f}/constraint)>".format(
            self.constraint_count, self.worklist_pops, self.pops_per_constraint)


class ConstraintSolver:
    """Solves a system of less-than constraints to a fixed point."""

    def __init__(self, constraints: Sequence[Constraint],
                 strategy: Optional[str] = None,
                 order: Optional[str] = None) -> None:
        self.constraints: List[Constraint] = list(constraints)
        self.strategy = strategy or default_lt_solver()
        if self.strategy not in LT_SOLVERS:
            raise ConfigError("lt_solver={!r} is not one of {}".format(
                self.strategy, "/".join(LT_SOLVERS)))
        self.order = validate_order(order or resolved_worklist_order())
        self.statistics = SolverStatistics()
        self.statistics.order = self.order
        # Dependency map: which constraints must be re-evaluated when the LT
        # set of a given variable changes.
        self._dependents: Dict[Value, List[Constraint]] = {}
        for constraint in self.constraints:
            for source in constraint.sources():
                self._dependents.setdefault(source, []).append(constraint)

    def solve(self) -> Dict[Value, FrozenSet[Value]]:
        """Run the fixed-point iteration and return the final LT sets."""
        state: LTState = {}
        with TRACER.timer("lt.solve", strategy=self.strategy,
                          constraints=len(self.constraints)) as timer:
            for constraint in self.constraints:
                state[constraint.target] = TOP
            if self.strategy == "sparse":
                self._solve_sparse(state)
            else:
                self._solve_constraint_keyed(state)
        self.statistics.constraint_count = len(self.constraints)
        self.statistics.variable_count = len(state)
        self.statistics.solve_time_seconds = timer.seconds
        # Any variable still at TOP belongs to a degenerate cycle never fed by
        # a concrete definition (only possible in unreachable code); report it
        # as the empty set so that no unsound ordering is ever claimed.
        result: Dict[Value, FrozenSet[Value]] = {}
        for value, lt_set in state.items():
            result[value] = frozenset() if lt_set is TOP else lt_set  # type: ignore[assignment]
        return result

    def _policy_ranks(self) -> Optional[Dict[Value, int]]:
        """Variable pop ranks for the active ordering policy.

        ``fifo`` needs none (insertion order).  ``scc`` — and ``loopdepth``,
        which degrades to it here — ranks every variable by the topological
        position of its SCC in the condensation of the constraint dependency
        graph (an edge per constraint, source → target), so a popped variable
        tends to have all its sources already settled.
        """
        if self.order == "fifo":
            return None
        nodes: List[Value] = []
        successors: Dict[Value, List[Value]] = {}

        def add_node(value: Value) -> None:
            if value not in successors:
                nodes.append(value)
                successors[value] = []

        for constraint in self.constraints:
            add_node(constraint.target)
            for source in constraint.sources():
                add_node(source)
                successors[source].append(constraint.target)
        components = strongly_connected_components(nodes, successors)
        ranks: Dict[Value, int] = {}
        for rank, component in enumerate(reversed(components)):
            for value in component:
                ranks[value] = rank
        return ranks

    def _solve_sparse(self, state: LTState) -> None:
        """Variable-keyed worklist: re-evaluate only affected dependents.

        A constraint must be revisited iff one of its sources changed *after*
        the constraint's last evaluation, so the solver keeps a global step
        counter, stamps every evaluation and every state change, and skips
        dependents whose last evaluation already saw the change.  Changes to
        the same variable coalesce into one pending entry (the shared
        :class:`~repro.util.worklist.PriorityWorklist` counts them), and the
        pop order follows the policy ranks of :meth:`_policy_ranks`.
        """
        worklist: PriorityWorklist[Value] = PriorityWorklist(self._policy_ranks())
        evaluations = 0
        skipped = 0
        step = 0
        last_evaluated: Dict[int, int] = {}
        last_changed: Dict[Value, int] = {}

        def apply(constraint: Constraint) -> None:
            nonlocal evaluations, step
            step += 1
            evaluations += 1
            last_evaluated[id(constraint)] = step
            evaluated = constraint.evaluate(state)
            current = state.get(constraint.target, TOP)
            updated = self._meet(current, evaluated)
            if updated != current:
                state[constraint.target] = updated
                last_changed[constraint.target] = step
                worklist.push(constraint.target)

        # Seed pass: every constraint is visited exactly once; only variables
        # whose sets shrank enter the worklist.
        for constraint in self.constraints:
            apply(constraint)
        while worklist:
            variable = worklist.pop()
            changed_at = last_changed.get(variable, 0)
            for dependent in self._dependents.get(variable, []):
                if last_evaluated.get(id(dependent), 0) >= changed_at:
                    # Evaluated after the change it is being notified of —
                    # re-running the transfer function would be a no-op.
                    skipped += 1
                    continue
                apply(dependent)
        self.statistics.worklist_pops = evaluations
        self.statistics.variable_pops = worklist.pops
        self.statistics.coalesced_pushes = worklist.coalesced + skipped

    def _solve_constraint_keyed(self, state: LTState) -> None:
        """Legacy scheme: the worklist holds whole constraints."""
        worklist: Worklist[Constraint] = Worklist(self.constraints)
        while worklist:
            constraint = worklist.pop()
            evaluated = constraint.evaluate(state)
            current = state.get(constraint.target, TOP)
            updated = self._meet(current, evaluated)
            if updated != current:
                state[constraint.target] = updated
                for dependent in self._dependents.get(constraint.target, []):
                    worklist.push(dependent)
        self.statistics.worklist_pops = worklist.pops

    @staticmethod
    def _meet(current: object, evaluated: object) -> object:
        """Greatest lower bound of the current and the freshly evaluated set.

        Taking the meet (instead of overwriting) guarantees the monotonically
        decreasing behaviour that the termination proof of the paper relies
        on, independently of the evaluation order of the worklist.
        """
        if current is TOP:
            return evaluated
        if evaluated is TOP:
            return current
        return current & evaluated  # type: ignore[operator]
