"""Constraint kinds of the less-than analysis.

Figure 7 of the paper generates four kinds of constraints:

* *init* — ``LT(x) = ∅`` for definitions that carry no ordering information
  (loads, calls, unknown arithmetic, ...);
* *union* — ``LT(x) = {e1, ...} ∪ LT(s1) ∪ ...`` for additions, subtraction
  split copies and the σ-copy on the "greater" side of a comparison;
* *inter* — ``LT(x) = LT(s1) ∩ ... ∩ LT(sn)`` for φ-functions;
* *copy* — ``LT(x) = LT(s)``, a special case of *union* with no extra
  elements and a single source.

All kinds are represented by two classes — :class:`UnionConstraint` (which
also covers *init* and *copy*) and :class:`IntersectionConstraint` — plus an
:class:`InitConstraint` alias kept for readability at generation sites.
Every constraint targets exactly one variable; evaluation is a pure function
of the current LT sets of its sources.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.ir.values import Value

# The abstract state: a mapping from variable to the set of variables known
# to be strictly smaller.  ``TOP`` is the lazy representation of "the set of
# all variables" used to seed the descending fixed-point iteration.
TOP = "TOP"
LTState = Dict[Value, object]  # value -> set of values, or TOP


class Constraint:
    """Base class; every constraint constrains a single ``target`` variable."""

    def __init__(self, target: Value, origin: object = None) -> None:
        self.target = target
        #: the instruction (or other object) that generated this constraint;
        #: only used for diagnostics and statistics.
        self.origin = origin

    def sources(self) -> Tuple[Value, ...]:  # pragma: no cover - interface
        raise NotImplementedError

    def evaluate(self, state: LTState) -> object:  # pragma: no cover - interface
        raise NotImplementedError

    def describe(self) -> str:  # pragma: no cover - debugging helper
        raise NotImplementedError

    def __repr__(self) -> str:
        return "<{} {}>".format(type(self).__name__, self.describe())


def _lookup(state: LTState, value: Value) -> object:
    return state.get(value, frozenset())


class UnionConstraint(Constraint):
    """``LT(target) = elements ∪ LT(source_1) ∪ ... ∪ LT(source_n)``."""

    def __init__(self, target: Value, elements: Sequence[Value] = (),
                 source_sets: Sequence[Value] = (), origin: object = None) -> None:
        super().__init__(target, origin)
        self.elements: Tuple[Value, ...] = tuple(elements)
        self.source_sets: Tuple[Value, ...] = tuple(source_sets)

    def sources(self) -> Tuple[Value, ...]:
        return self.source_sets

    def evaluate(self, state: LTState) -> object:
        for source in self.source_sets:
            if _lookup(state, source) is TOP:
                return TOP
        result: Set[Value] = set(self.elements)
        for source in self.source_sets:
            result |= _lookup(state, source)  # type: ignore[arg-type]
        return frozenset(result)

    def describe(self) -> str:
        parts = ["{{{}}}".format(", ".join(e.short_name() for e in self.elements))] if self.elements else []
        parts += ["LT({})".format(s.short_name()) for s in self.source_sets]
        rhs = " U ".join(parts) if parts else "{}"
        return "LT({}) = {}".format(self.target.short_name(), rhs)


class InitConstraint(UnionConstraint):
    """``LT(target) = ∅`` — produced by definitions with no ordering info."""

    def __init__(self, target: Value, origin: object = None) -> None:
        super().__init__(target, (), (), origin)

    def describe(self) -> str:
        return "LT({}) = {{}}".format(self.target.short_name())


class IntersectionConstraint(Constraint):
    """``LT(target) = LT(source_1) ∩ ... ∩ LT(source_n)`` — φ-functions."""

    def __init__(self, target: Value, source_sets: Sequence[Value], origin: object = None) -> None:
        super().__init__(target, origin)
        self.source_sets: Tuple[Value, ...] = tuple(source_sets)

    def sources(self) -> Tuple[Value, ...]:
        return self.source_sets

    def evaluate(self, state: LTState) -> object:
        result: object = TOP
        for source in self.source_sets:
            current = _lookup(state, source)
            if current is TOP:
                continue
            if result is TOP:
                result = set(current)  # type: ignore[arg-type]
            else:
                result &= current  # type: ignore[operator]
        if result is TOP:
            return TOP
        return frozenset(result)  # type: ignore[arg-type]

    def describe(self) -> str:
        rhs = " ^ ".join("LT({})".format(s.short_name()) for s in self.source_sets) or "TOP"
        return "LT({}) = {}".format(self.target.short_name(), rhs)
