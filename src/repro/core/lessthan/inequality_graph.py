"""The inequality graph implied by the LT sets.

Section 5 of the paper relates the algebraic formulation (LT sets) to the
geometric one used by the ABCD algorithm: create a vertex per variable and an
edge from ``v1`` to ``v2`` whenever ``v1 ∈ LT(v2)``.  This module makes that
graph explicit, both for inspection/visualisation and because the ABCD-style
baseline of :mod:`repro.core.abcd` searches it for positive paths.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set

from repro.ir.values import Value
from repro.util.dot import DotGraph


class InequalityGraph:
    """A directed graph with an edge ``a -> b`` meaning ``a < b``."""

    def __init__(self, lt_sets: Mapping[Value, FrozenSet[Value]]) -> None:
        self.successors: Dict[Value, Set[Value]] = {}
        self.predecessors: Dict[Value, Set[Value]] = {}
        for greater, smaller_set in lt_sets.items():
            self.successors.setdefault(greater, set())
            self.predecessors.setdefault(greater, set())
            for smaller in smaller_set:
                self.successors.setdefault(smaller, set()).add(greater)
                self.predecessors.setdefault(greater, set()).add(smaller)
                self.predecessors.setdefault(smaller, set())

    # -- queries -------------------------------------------------------------------
    def nodes(self) -> List[Value]:
        return list(self.successors)

    def edge_count(self) -> int:
        return sum(len(s) for s in self.successors.values())

    def has_edge(self, smaller: Value, greater: Value) -> bool:
        return greater in self.successors.get(smaller, set())

    def reachable_from(self, value: Value) -> Set[Value]:
        """Every variable provably greater than ``value`` (transitively)."""
        seen: Set[Value] = set()
        stack = list(self.successors.get(value, set()))
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.successors.get(node, set()))
        return seen

    def is_less_than(self, smaller: Value, greater: Value) -> bool:
        """Path query: is there a chain ``smaller < ... < greater``?"""
        return greater in self.reachable_from(smaller)

    # -- export -----------------------------------------------------------------------
    def to_dot(self, name: str = "inequalities") -> str:
        graph = DotGraph(name)
        for node in self.successors:
            graph.add_node("%" + node.short_name())
        for smaller, greaters in self.successors.items():
            for greater in greaters:
                graph.add_edge("%" + smaller.short_name(), "%" + greater.short_name(), label="<")
        return graph.to_dot()
