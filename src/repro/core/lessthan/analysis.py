"""The less-than analysis driver.

Ties the pipeline together, matching the pass ordering of the original LLVM
artifact (``RangeAnalysis`` → ``vSSA`` → ``sraa``):

1. compute value ranges (used to classify additions vs. subtractions);
2. convert the function to e-SSA form (live-range splitting);
3. recompute ranges on the e-SSA form (σ-copies make them more precise);
4. generate the constraints of Figure 7;
5. solve them with the worklist solver.

The analysis can run on a single function or on a whole module; the module
variant adds the interprocedural pseudo-φ constraints that bind formal
parameters to the actual arguments of their call sites (Section 4).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Union

from repro.core.lessthan.constraints import Constraint
from repro.core.lessthan.generation import ConstraintGenerator
from repro.core.lessthan.inequality_graph import InequalityGraph
from repro.core.lessthan.solver import ConstraintSolver, SolverStatistics
from repro.essa.transform import convert_to_essa
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.values import Value
from repro.obs import TRACER
from repro.passes.pass_base import AnalysisPass
from repro.rangeanalysis.analysis import RangeAnalysis


class LessThanAnalysis:
    """Computes the strict less-than relation for a function or module.

    Parameters
    ----------
    subject:
        A :class:`Function` or a :class:`Module`.
    build_essa:
        When true (the default), the subject is converted to e-SSA form in
        place before constraints are generated.  Pass False when the subject
        is already in e-SSA form (e.g. when chaining analyses).
    interprocedural:
        Only meaningful for modules: generate pseudo-φ constraints binding
        formal parameters to actual arguments.
    cache:
        An optional :class:`repro.passes.analysis_cache.FunctionAnalysisCache`.
        When provided, the e-SSA conversion and the per-function range
        analyses are fetched from (and stored into) the cache, so several
        analyses over the same functions share one computation.
    solver_strategy:
        Worklist scheduling of the constraint solver: ``"sparse"``
        (variable-keyed, the default) or ``"constraint"`` (the legacy
        constraint-keyed scheme).  ``None`` defers to ``REPRO_LT_SOLVER``.
        Both reach the same fixed point; the knob exists for differential
        tests and the solver hot-path benchmark.
    worklist_order:
        Pop-order policy of the sparse strategy (``"fifo"``/``"scc"``/
        ``"loopdepth"``); ``None`` defers to ``REPRO_WORKLIST_ORDER``.
    """

    def __init__(self, subject: Union[Function, Module], build_essa: bool = True,
                 interprocedural: bool = True, cache: Optional[object] = None,
                 solver_strategy: Optional[str] = None,
                 worklist_order: Optional[str] = None) -> None:
        self.subject = subject
        self.cache = cache
        self.solver_strategy = solver_strategy
        self.worklist_order = worklist_order
        self.functions: List[Function] = (
            [subject] if isinstance(subject, Function)
            else [f for f in subject.functions if not f.is_declaration()]
        )
        self.ranges: Dict[Function, RangeAnalysis] = {}
        self.constraints: List[Constraint] = []
        self.lt_sets: Dict[Value, FrozenSet[Value]] = {}
        self.statistics = SolverStatistics()
        self._run(build_essa, interprocedural)

    # -- pipeline ------------------------------------------------------------------
    def _run(self, build_essa: bool, interprocedural: bool) -> None:
        if build_essa:
            for function in self.functions:
                if self.cache is not None:
                    self.cache.ensure_essa(function)
                elif not getattr(function, "essa_form", False):
                    # The pre-conversion ranges only matter for the conversion
                    # itself, so skip them entirely on already-converted
                    # functions (conversion is a tagged no-op there).
                    pre_ranges = RangeAnalysis(function)
                    convert_to_essa(function, pre_ranges)
        # Ranges on the (possibly transformed) functions, reused by the
        # constraint generator.
        for function in self.functions:
            if self.cache is not None:
                self.ranges[function] = self.cache.ranges(function)
            else:
                self.ranges[function] = RangeAnalysis(function)
        generator = ConstraintGenerator(self.ranges)
        with TRACER.span("lt.generate",
                         functions=len(self.functions)) as span:
            if isinstance(self.subject, Module):
                self.constraints = generator.generate_for_module(
                    self.subject, interprocedural=interprocedural)
            else:
                self.constraints = generator.generate_for_function(self.subject)
            span.annotate(constraints=len(self.constraints))
        solver = ConstraintSolver(self.constraints, strategy=self.solver_strategy,
                                  order=self.worklist_order)
        self.lt_sets = solver.solve()
        self.statistics = solver.statistics

    # -- queries ---------------------------------------------------------------------
    def lt(self, value: Value) -> FrozenSet[Value]:
        """``LT(value)``: the set of variables strictly smaller than ``value``."""
        return self.lt_sets.get(value, frozenset())

    def is_less_than(self, smaller: Value, greater: Value) -> bool:
        """True when the analysis proves ``smaller < greater``.

        By Corollary 3.10 this holds at every program point where both
        variables are simultaneously alive.
        """
        return smaller in self.lt_sets.get(greater, frozenset())

    def ordered(self, a: Value, b: Value) -> bool:
        """True when the analysis proves ``a < b`` or ``b < a``."""
        return self.is_less_than(a, b) or self.is_less_than(b, a)

    def inequality_graph(self) -> InequalityGraph:
        return InequalityGraph(self.lt_sets)

    def constraint_count(self) -> int:
        return len(self.constraints)

    def non_empty_sets(self) -> int:
        return sum(1 for lt_set in self.lt_sets.values() if lt_set)

    def range_of(self, function: Function) -> RangeAnalysis:
        return self.ranges[function]


class LessThanAnalysisPass(AnalysisPass):
    """Pass-manager wrapper: per-function less-than analysis.

    The wrapped analysis converts the function to e-SSA form, so this pass is
    *not* purely observational; it mirrors the original artifact where
    ``vSSA`` rewrites the program before ``sraa`` runs.
    """

    name = "less-than-analysis"

    def run_on_function(self, function: Function) -> LessThanAnalysis:
        return LessThanAnalysis(function, build_essa=True)
