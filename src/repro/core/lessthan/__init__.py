"""The less-than (strict inequality) dataflow analysis."""

from repro.core.lessthan.constraints import (
    Constraint,
    InitConstraint,
    IntersectionConstraint,
    UnionConstraint,
)
from repro.core.lessthan.generation import ConstraintGenerator
from repro.core.lessthan.solver import (
    ConstraintSolver,
    SolverStatistics,
    default_lt_solver,
)
from repro.core.lessthan.analysis import LessThanAnalysis, LessThanAnalysisPass
from repro.core.lessthan.inequality_graph import InequalityGraph

__all__ = [
    "Constraint",
    "InitConstraint",
    "IntersectionConstraint",
    "UnionConstraint",
    "ConstraintGenerator",
    "ConstraintSolver",
    "SolverStatistics",
    "default_lt_solver",
    "LessThanAnalysis",
    "LessThanAnalysisPass",
    "InequalityGraph",
]
