"""The paper's primary contribution.

* :mod:`repro.core.lessthan` — the sparse "less-than" dataflow analysis:
  constraint generation over e-SSA programs (Figure 7 of the paper) and the
  worklist solver over the powerset-of-variables lattice.
* :mod:`repro.core.disambiguation` — the pointer disambiguation criteria of
  Definition 3.11.
* :mod:`repro.core.sraa` — the Strict-Relations Alias Analysis, packaging the
  above behind the common :class:`repro.alias.AliasAnalysis` interface.
* :mod:`repro.core.abcd` and :mod:`repro.core.rangebased` — reimplementations
  of the two closest related approaches discussed in Section 5 (the ABCD
  demand-driven inequality prover and range/value-set based disambiguation),
  used by the ablation benchmarks.
"""

from repro.core.lessthan.analysis import LessThanAnalysis, LessThanAnalysisPass
from repro.core.lessthan.solver import SolverStatistics
from repro.core.disambiguation import (
    DisambiguationReason,
    DisambiguationStatistics,
    PointerDisambiguator,
)
from repro.core.sraa import StrictInequalityAliasAnalysis
from repro.core.abcd import ABCDAliasAnalysis, ABCDProver
from repro.core.rangebased import RangeBasedAliasAnalysis

__all__ = [
    "LessThanAnalysis",
    "LessThanAnalysisPass",
    "SolverStatistics",
    "DisambiguationReason",
    "DisambiguationStatistics",
    "PointerDisambiguator",
    "StrictInequalityAliasAnalysis",
    "ABCDAliasAnalysis",
    "ABCDProver",
    "RangeBasedAliasAnalysis",
]
