"""Pointer disambiguation criteria (Definition 3.11 of the paper).

Given the LT sets produced by :class:`repro.core.lessthan.LessThanAnalysis`,
two memory locations are proven disjoint when:

1. one of the pointers is strictly smaller than the other
   (``p1 ∈ LT(p2)`` or ``p2 ∈ LT(p1)``), or
2. both pointers are derived from the same base pointer and one index is
   strictly smaller than the other (``p1 = p + x1``, ``p2 = p + x2`` with
   ``x1 ∈ LT(x2)`` or ``x2 ∈ LT(x1)``), where ``x1`` and ``x2`` are
   variables, not constants.

Because the e-SSA transformation splits live ranges, the same run-time value
may be known under several SSA names (the original, its σ-copies, its
subtraction-split copies).  Copies are identity functions, so the
disambiguator considers the whole equivalence class of names when checking
the criteria — exactly like the original ``sraa`` pass, which resolves
queries through the renamed uses produced by ``vSSA``.

The class also reports *why* a pair was disambiguated, which the examples
and the evaluation harness use to break down the sources of precision.

Performance.  The ``aa-eval`` methodology issues O(n²) queries per function,
and the class-walk behind each query is invariant while the IR is unchanged.
The disambiguator therefore memoizes, per value, the canonical name, the
``(base, index)`` decomposition, and the copy-equivalence class together with
the union of the LT sets of its members.  The memoized check

``ordered(a, b)  ⇔  names(b) ∩ LT∪(a) ≠ ∅  or  names(a) ∩ LT∪(b) ≠ ∅``

is set-for-set identical to the seed's pairwise loop, so verdicts are
bit-identical; only the cost per query changes.  Pass ``memoize=False`` to
get the original recompute-per-query behaviour (the throughput benchmark
uses it as the baseline), and call :meth:`PointerDisambiguator.invalidate`
after mutating the IR.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.api.config import resolved_class_limit
from repro.core.lessthan.analysis import LessThanAnalysis
from repro.ir.instructions import Copy, GetElementPtr, Instruction
from repro.ir.values import Argument, ConstantInt, Value
from repro.obs import TRACER
from repro.util.worklist import SolverInfo


class DisambiguationReason(enum.Enum):
    """Which criterion of Definition 3.11 proved a pair disjoint."""

    NONE = "none"
    POINTERS_ORDERED = "pointers-ordered"       # criterion 1
    INDICES_ORDERED = "indices-ordered"         # criterion 2

    def __bool__(self) -> bool:
        return self is not DisambiguationReason.NONE


class DisambiguationStatistics:
    """Counters the evaluation harness reads back after a query batch.

    ``truncated_classes`` counts equivalence classes that exceeded the
    traversal limit (the members kept are chosen deterministically, but
    precision may be lost); ``largest_class`` records the biggest class seen
    before truncation.  ``solver`` carries the fixed-point solver counters
    (:class:`~repro.util.worklist.SolverInfo`) of the analyses behind the
    verdicts, so they survive the engine's shard/merge path.
    """

    def __init__(self) -> None:
        self.queries = 0
        self.truncated_classes = 0
        self.largest_class = 0
        self.memoized_values = 0
        self.solver = SolverInfo()

    def record_class(self, size: int, truncated: bool) -> None:
        self.largest_class = max(self.largest_class, size)
        if truncated:
            self.truncated_classes += 1

    def merge(self, other: "DisambiguationStatistics") -> "DisambiguationStatistics":
        """Lossless aggregation of per-shard statistics on the coordinator.

        Counters sum; ``largest_class`` is a maximum, so the merged value is
        the maximum over shards — exactly what a single-process run over the
        union of the shards would have recorded.  Solver counters merge
        losslessly too, which is what keeps ``repro stats`` totals identical
        between serial and multi-worker runs.
        """
        merged = DisambiguationStatistics()
        merged.queries = self.queries + other.queries
        merged.truncated_classes = self.truncated_classes + other.truncated_classes
        merged.largest_class = max(self.largest_class, other.largest_class)
        merged.memoized_values = self.memoized_values + other.memoized_values
        merged.solver = self.solver.merge(other.solver)
        return merged

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "DisambiguationStatistics":
        statistics = cls()
        statistics.queries = int(data.get("queries", 0))
        statistics.truncated_classes = int(data.get("truncated_classes", 0))
        statistics.largest_class = int(data.get("largest_class", 0))
        statistics.memoized_values = int(data.get("memoized_values", 0))
        statistics.solver = SolverInfo.from_dict(data.get("solver", {}) or {})
        return statistics

    def as_dict(self) -> Dict[str, int]:
        return {
            "queries": self.queries,
            "truncated_classes": self.truncated_classes,
            "largest_class": self.largest_class,
            "memoized_values": self.memoized_values,
            "solver": self.solver.as_dict(),
        }

    def __repr__(self) -> str:
        return "<DisambiguationStatistics queries={} truncated={} largest={}>".format(
            self.queries, self.truncated_classes, self.largest_class)


def _is_variable(value: Value) -> bool:
    return isinstance(value, (Argument, Instruction)) and not isinstance(value, ConstantInt)


def canonical_value(value: Value) -> Value:
    """Strip copies and zero-offset ``gep``s to reach the canonical name."""
    current = value
    while True:
        if isinstance(current, Copy):
            current = current.source
            continue
        if isinstance(current, GetElementPtr) and current.constant_index() == 0:
            current = current.base
            continue
        return current


def _name_order_key(value: Value) -> Tuple[int, str]:
    """Deterministic, construction-order-independent ordering of SSA names.

    Names are unique within a function, and numeric suffixes (``v2`` < ``v10``)
    sort naturally thanks to the length-first key.
    """
    name = getattr(value, "name", "") or ""
    return (len(name), name)


def equivalent_names(value: Value, limit: Optional[int] = 64,
                     statistics: Optional[DisambiguationStatistics] = None) -> List[Value]:
    """All SSA names denoting the same run-time value as ``value``.

    The set contains the canonical name (copies stripped) plus every copy
    transitively derived from it.  Copies are pure renamings, so every member
    evaluates to the same value whenever it is defined.

    Classes larger than ``limit`` are truncated.  The members kept are chosen
    by a deterministic order on the names themselves (never by uses-list
    order, which varies with IR construction history), the canonical root and
    ``value`` itself are always retained, and the truncation is reported on
    ``statistics`` so callers can see when precision may have been lost.
    """
    root = canonical_value(value)
    names: List[Value] = [root]
    seen: Set[int] = {id(root)}
    index = 0
    while index < len(names):
        current = names[index]
        index += 1
        for user in current.users():
            if isinstance(user, Copy) and user.source is current and id(user) not in seen:
                seen.add(id(user))
                names.append(user)
    if id(value) not in seen:
        names.append(value)
    truncated = limit is not None and len(names) > limit
    if statistics is not None:
        statistics.record_class(len(names), truncated)
    if truncated:
        keep: List[Value] = [root]
        if value is not root and id(value) in {id(n) for n in names}:
            keep.append(value)
        kept_ids = {id(n) for n in keep}
        for name in sorted(names, key=_name_order_key):
            if len(keep) >= limit:
                break
            if id(name) not in kept_ids:
                kept_ids.add(id(name))
                keep.append(name)
        names = keep
    return names


def strip_trivial_geps(pointer: Value) -> Value:
    """Walk through zero-offset ``gep`` instructions to the underlying pointer."""
    current = pointer
    while isinstance(current, GetElementPtr) and current.constant_index() == 0:
        current = current.base
    return current


def decompose_pointer(pointer: Value) -> Tuple[Value, Optional[Value]]:
    """Split a pointer into ``(base, index)`` when it is a derived pointer.

    Copies wrapping a ``gep`` are looked through.  Returns ``(pointer, None)``
    for pointers that are not derived from a base through pointer arithmetic.
    """
    current = pointer
    while isinstance(current, Copy):
        current = current.source
    if isinstance(current, GetElementPtr):
        return current.base, current.index
    return pointer, None


class PointerDisambiguator:
    """Answers "are these two pointers provably different?" questions.

    With ``memoize=True`` (the default) per-value tables are filled on first
    use and reused across the whole O(n²) pair loop;
    :meth:`disambiguate_pairs` bulk-fills them for a batch up front.
    ``memoize=False`` restores the seed's recompute-per-query behaviour.
    """

    def __init__(self, analysis: LessThanAnalysis, memoize: bool = True,
                 class_limit: Optional[int] = None) -> None:
        self.analysis = analysis
        self.memoize = memoize
        # Precedence: explicit argument > active ReproConfig >
        # REPRO_CLASS_LIMIT > default (64).  Pass 0 for "no truncation".
        if class_limit is None:
            class_limit = resolved_class_limit()
        elif class_limit <= 0:
            class_limit = None
        self.class_limit = class_limit
        self.statistics = DisambiguationStatistics()
        # Fold the fixed-point solver counters of the underlying analyses in
        # at construction: the less-than constraint solve plus every
        # per-function range solve.  They ride along with the query counters
        # through the engine's payload/merge path from here on.
        solver = analysis.statistics.solver_info()
        for range_analysis in analysis.ranges.values():
            solver = solver.merge(range_analysis.statistics.solver_info())
        self.statistics.solver = solver
        # Indexed per-value tables (identity-keyed: Values hash by identity).
        self._canonical: Dict[Value, Value] = {}
        self._decomposition: Dict[Value, Tuple[Value, Optional[Value]]] = {}
        self._names: Dict[Value, Tuple[FrozenSet[Value], FrozenSet[Value]]] = {}

    # -- table management -----------------------------------------------------------
    def invalidate(self) -> None:
        """Drop every memoized table (call after mutating the IR)."""
        self._canonical.clear()
        self._decomposition.clear()
        self._names.clear()
        self.statistics.memoized_values = 0

    # -- memoized lookups ----------------------------------------------------------
    def _canonical_of(self, value: Value) -> Value:
        if not self.memoize:
            return canonical_value(value)
        cached = self._canonical.get(value)
        if cached is None:
            cached = canonical_value(value)
            self._canonical[value] = cached
        return cached

    def _decompose(self, pointer: Value) -> Tuple[Value, Optional[Value]]:
        if not self.memoize:
            return decompose_pointer(pointer)
        cached = self._decomposition.get(pointer)
        if cached is None:
            cached = decompose_pointer(pointer)
            self._decomposition[pointer] = cached
        return cached

    def _class_info(self, value: Value) -> Tuple[FrozenSet[Value], FrozenSet[Value]]:
        """``(names, LT∪)``: the equivalence class of ``value`` and the union
        of the LT sets of its members."""
        cached = self._names.get(value)
        if cached is not None:
            return cached
        names = equivalent_names(value, limit=self.class_limit,
                                 statistics=self.statistics)
        lt_union: Set[Value] = set()
        lt_sets = self.analysis.lt_sets
        for name in names:
            lt_union.update(lt_sets.get(name, ()))
        info = (frozenset(names), frozenset(lt_union))
        if self.memoize:
            self._names[value] = info
            self.statistics.memoized_values = len(self._names)
        return info

    # -- helpers ------------------------------------------------------------------------
    def _ordered_with_equivalents(self, a: Value, b: Value) -> bool:
        if not self.memoize:
            # Seed path: recompute the classes and walk every name pair.
            names_a = equivalent_names(a, limit=self.class_limit,
                                       statistics=self.statistics)
            names_b = equivalent_names(b, limit=self.class_limit,
                                       statistics=self.statistics)
            for name_a in names_a:
                for name_b in names_b:
                    if self.analysis.ordered(name_a, name_b):
                        return True
            return False
        names_a, lt_a = self._class_info(a)
        names_b, lt_b = self._class_info(b)
        # ∃ na, nb with na < nb or nb < na  ⇔  the class of one side meets
        # the union of LT sets of the other.
        return not names_b.isdisjoint(lt_a) or not names_a.isdisjoint(lt_b)

    # -- criteria ---------------------------------------------------------------------
    def pointers_ordered(self, p1: Value, p2: Value) -> bool:
        """Criterion 1: ``p1 ∈ LT(p2)`` or ``p2 ∈ LT(p1)`` (modulo copies)."""
        return self._ordered_with_equivalents(p1, p2)

    def indices_ordered(self, p1: Value, p2: Value) -> bool:
        """Criterion 2: same base, and the offsets are strictly ordered variables."""
        base1, index1 = self._decompose(p1)
        base2, index2 = self._decompose(p2)
        if index1 is None or index2 is None:
            return False
        if self._canonical_of(base1) is not self._canonical_of(base2):
            return False
        if not (_is_variable(index1) and _is_variable(index2)):
            # The criterion explicitly requires variables; constant offsets
            # are the job of range-based analyses (and of basicaa).
            return False
        return self._ordered_with_equivalents(index1, index2)

    # -- batched entry point ---------------------------------------------------------------
    def disambiguate_pairs(self, pointers: List[Value],
                           pairs: Optional[List[Tuple[int, int]]] = None):
        """Yield ``(i, j, reason)`` for every unordered pair of ``pointers``.

        Verdicts are identical to calling :meth:`disambiguate` pair by pair in
        the same order; the batch path hoists every per-value table lookup out
        of the O(n²) loop, leaving only identity checks and frozenset
        operations per pair.

        ``pairs``, when given, restricts the batch to those ``(i, j)`` index
        pairs (in the given order) and only builds tables for the pointers
        they involve — the mask-passing entry point of the chain combinator,
        which skips pairs an earlier analysis already resolved.
        """
        if not TRACER.enabled:
            return self._disambiguate_pairs(pointers, pairs)
        # The result is a lazily consumed generator, so a plain ``with``
        # around it would close the span before any pair is evaluated —
        # materialize inside the span instead (tracing runs only).
        with TRACER.span("disambiguate.pairs", pointers=len(pointers),
                         restricted=pairs is not None) as span:
            results = list(self._disambiguate_pairs(pointers, pairs))
            span.annotate(pairs=len(results))
        return iter(results)

    def _disambiguate_pairs(self, pointers: List[Value],
                            pairs: Optional[List[Tuple[int, int]]] = None):
        if not self.memoize:
            if pairs is not None:
                for i, j in pairs:
                    yield i, j, self.disambiguate(pointers[i], pointers[j])
                return
            for i in range(len(pointers)):
                for j in range(i + 1, len(pointers)):
                    yield i, j, self.disambiguate(pointers[i], pointers[j])
            return
        if pairs is not None:
            yield from self._disambiguate_pair_subset(pointers, pairs)
            return
        count = len(pointers)
        canon = [self._canonical_of(p) for p in pointers]
        classes = [self._class_info(p) for p in pointers]
        decomps = [self._decompose(p) for p in pointers]
        index_class: List[Optional[Tuple[FrozenSet[Value], FrozenSet[Value]]]] = []
        base_canon: List[Optional[Value]] = []
        for base, index in decomps:
            if index is not None and _is_variable(index):
                base_canon.append(self._canonical_of(base))
                index_class.append(self._class_info(index))
            else:
                # Constant or missing index: criterion 2 never applies.
                base_canon.append(None)
                index_class.append(None)
        none = DisambiguationReason.NONE
        ordered = DisambiguationReason.POINTERS_ORDERED
        indexed = DisambiguationReason.INDICES_ORDERED
        for i in range(count):
            canon_i = canon[i]
            names_i, lt_i = classes[i]
            base_i = base_canon[i]
            index_i = index_class[i]
            for j in range(i + 1, count):
                self.statistics.queries += 1
                if canon_i is canon[j]:
                    yield i, j, none
                    continue
                names_j, lt_j = classes[j]
                if not names_j.isdisjoint(lt_i) or not names_i.isdisjoint(lt_j):
                    yield i, j, ordered
                    continue
                index_j = index_class[j]
                if (index_i is not None and index_j is not None
                        and base_i is base_canon[j]):
                    idx_names_i, idx_lt_i = index_i
                    idx_names_j, idx_lt_j = index_j
                    if (not idx_names_j.isdisjoint(idx_lt_i)
                            or not idx_names_i.isdisjoint(idx_lt_j)):
                        yield i, j, indexed
                        continue
                yield i, j, none

    def _disambiguate_pair_subset(self, pointers: List[Value],
                                  pairs: List[Tuple[int, int]]):
        """The masked batch: tables only for the indices ``pairs`` mention."""
        involved = sorted({index for pair in pairs for index in pair})
        canon: Dict[int, Value] = {}
        classes: Dict[int, Tuple[FrozenSet[Value], FrozenSet[Value]]] = {}
        base_canon: Dict[int, Optional[Value]] = {}
        index_class: Dict[int, Optional[Tuple[FrozenSet[Value], FrozenSet[Value]]]] = {}
        for k in involved:
            pointer = pointers[k]
            canon[k] = self._canonical_of(pointer)
            classes[k] = self._class_info(pointer)
            base, index = self._decompose(pointer)
            if index is not None and _is_variable(index):
                base_canon[k] = self._canonical_of(base)
                index_class[k] = self._class_info(index)
            else:
                base_canon[k] = None
                index_class[k] = None
        none = DisambiguationReason.NONE
        ordered = DisambiguationReason.POINTERS_ORDERED
        indexed = DisambiguationReason.INDICES_ORDERED
        for i, j in pairs:
            self.statistics.queries += 1
            if canon[i] is canon[j]:
                yield i, j, none
                continue
            names_i, lt_i = classes[i]
            names_j, lt_j = classes[j]
            if not names_j.isdisjoint(lt_i) or not names_i.isdisjoint(lt_j):
                yield i, j, ordered
                continue
            index_i = index_class[i]
            index_j = index_class[j]
            if (index_i is not None and index_j is not None
                    and base_canon[i] is base_canon[j]):
                idx_names_i, idx_lt_i = index_i
                idx_names_j, idx_lt_j = index_j
                if (not idx_names_j.isdisjoint(idx_lt_i)
                        or not idx_names_i.isdisjoint(idx_lt_j)):
                    yield i, j, indexed
                    continue
            yield i, j, none

    # -- main entry point -----------------------------------------------------------------
    def disambiguate(self, p1: Value, p2: Value) -> DisambiguationReason:
        """Return the criterion proving ``p1`` and ``p2`` disjoint, if any."""
        self.statistics.queries += 1
        if self._canonical_of(p1) is self._canonical_of(p2):
            return DisambiguationReason.NONE
        if self.pointers_ordered(p1, p2):
            return DisambiguationReason.POINTERS_ORDERED
        if self.indices_ordered(p1, p2):
            return DisambiguationReason.INDICES_ORDERED
        return DisambiguationReason.NONE

    def no_alias(self, p1: Value, p2: Value) -> bool:
        return bool(self.disambiguate(p1, p2))
