"""Pointer disambiguation criteria (Definition 3.11 of the paper).

Given the LT sets produced by :class:`repro.core.lessthan.LessThanAnalysis`,
two memory locations are proven disjoint when:

1. one of the pointers is strictly smaller than the other
   (``p1 ∈ LT(p2)`` or ``p2 ∈ LT(p1)``), or
2. both pointers are derived from the same base pointer and one index is
   strictly smaller than the other (``p1 = p + x1``, ``p2 = p + x2`` with
   ``x1 ∈ LT(x2)`` or ``x2 ∈ LT(x1)``), where ``x1`` and ``x2`` are
   variables, not constants.

Because the e-SSA transformation splits live ranges, the same run-time value
may be known under several SSA names (the original, its σ-copies, its
subtraction-split copies).  Copies are identity functions, so the
disambiguator considers the whole equivalence class of names when checking
the criteria — exactly like the original ``sraa`` pass, which resolves
queries through the renamed uses produced by ``vSSA``.

The class also reports *why* a pair was disambiguated, which the examples
and the evaluation harness use to break down the sources of precision.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Set, Tuple

from repro.core.lessthan.analysis import LessThanAnalysis
from repro.ir.instructions import Copy, GetElementPtr, Instruction
from repro.ir.values import Argument, ConstantInt, Value


class DisambiguationReason(enum.Enum):
    """Which criterion of Definition 3.11 proved a pair disjoint."""

    NONE = "none"
    POINTERS_ORDERED = "pointers-ordered"       # criterion 1
    INDICES_ORDERED = "indices-ordered"         # criterion 2

    def __bool__(self) -> bool:
        return self is not DisambiguationReason.NONE


def _is_variable(value: Value) -> bool:
    return isinstance(value, (Argument, Instruction)) and not isinstance(value, ConstantInt)


def canonical_value(value: Value) -> Value:
    """Strip copies and zero-offset ``gep``s to reach the canonical name."""
    current = value
    while True:
        if isinstance(current, Copy):
            current = current.source
            continue
        if isinstance(current, GetElementPtr) and current.constant_index() == 0:
            current = current.base
            continue
        return current


def equivalent_names(value: Value, limit: int = 64) -> List[Value]:
    """All SSA names denoting the same run-time value as ``value``.

    The set contains the canonical name (copies stripped) plus every copy
    transitively derived from it.  Copies are pure renamings, so every member
    evaluates to the same value whenever it is defined.
    """
    root = canonical_value(value)
    names: List[Value] = [root]
    seen: Set[int] = {id(root)}
    index = 0
    while index < len(names) and len(names) < limit:
        current = names[index]
        index += 1
        for user in current.users():
            if isinstance(user, Copy) and user.source is current and id(user) not in seen:
                seen.add(id(user))
                names.append(user)
    if id(value) not in seen:
        names.append(value)
    return names


def strip_trivial_geps(pointer: Value) -> Value:
    """Walk through zero-offset ``gep`` instructions to the underlying pointer."""
    current = pointer
    while isinstance(current, GetElementPtr) and current.constant_index() == 0:
        current = current.base
    return current


def decompose_pointer(pointer: Value) -> Tuple[Value, Optional[Value]]:
    """Split a pointer into ``(base, index)`` when it is a derived pointer.

    Copies wrapping a ``gep`` are looked through.  Returns ``(pointer, None)``
    for pointers that are not derived from a base through pointer arithmetic.
    """
    current = pointer
    while isinstance(current, Copy):
        current = current.source
    if isinstance(current, GetElementPtr):
        return current.base, current.index
    return pointer, None


class PointerDisambiguator:
    """Answers "are these two pointers provably different?" questions."""

    def __init__(self, analysis: LessThanAnalysis) -> None:
        self.analysis = analysis

    # -- helpers ------------------------------------------------------------------------
    def _ordered_with_equivalents(self, a: Value, b: Value) -> bool:
        names_a = equivalent_names(a)
        names_b = equivalent_names(b)
        for name_a in names_a:
            for name_b in names_b:
                if self.analysis.ordered(name_a, name_b):
                    return True
        return False

    # -- criteria ---------------------------------------------------------------------
    def pointers_ordered(self, p1: Value, p2: Value) -> bool:
        """Criterion 1: ``p1 ∈ LT(p2)`` or ``p2 ∈ LT(p1)`` (modulo copies)."""
        return self._ordered_with_equivalents(p1, p2)

    def indices_ordered(self, p1: Value, p2: Value) -> bool:
        """Criterion 2: same base, and the offsets are strictly ordered variables."""
        base1, index1 = decompose_pointer(p1)
        base2, index2 = decompose_pointer(p2)
        if index1 is None or index2 is None:
            return False
        if canonical_value(base1) is not canonical_value(base2):
            return False
        if not (_is_variable(index1) and _is_variable(index2)):
            # The criterion explicitly requires variables; constant offsets
            # are the job of range-based analyses (and of basicaa).
            return False
        return self._ordered_with_equivalents(index1, index2)

    # -- main entry point -----------------------------------------------------------------
    def disambiguate(self, p1: Value, p2: Value) -> DisambiguationReason:
        """Return the criterion proving ``p1`` and ``p2`` disjoint, if any."""
        if canonical_value(p1) is canonical_value(p2):
            return DisambiguationReason.NONE
        if self.pointers_ordered(p1, p2):
            return DisambiguationReason.POINTERS_ORDERED
        if self.indices_ordered(p1, p2):
            return DisambiguationReason.INDICES_ORDERED
        return DisambiguationReason.NONE

    def no_alias(self, p1: Value, p2: Value) -> bool:
        return bool(self.disambiguate(p1, p2))
