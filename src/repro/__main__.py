"""``python -m repro`` — the command-line face of the reproduction.

See :mod:`repro.api.cli` for the subcommands (``eval``, ``print-ir``,
``stats``, ``store``) and the configuration flags.
"""

import sys

from repro.api.cli import main

if __name__ == "__main__":
    sys.exit(main())
