"""SSA destruction: lowering φ-functions and e-SSA copies to plain copies.

The paper notes that "parallel copies and φ-functions are removed before
code generation, after the analyses that require them have already run".
This module provides that SSA-elimination phase.  It is not needed by the
analyses themselves, but completes the compiler pipeline and is exercised by
tests to make sure the e-SSA form stays convertible back to executable code.

The lowering is the classic conventional-SSA approach: for every φ-function
``x = φ(a1:b1, ..., an:bn)`` a copy ``x = ai`` is placed at the end of each
predecessor ``bi`` (before its terminator); critical edges are split first so
that the copies cannot interfere with other paths.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir.basicblock import BasicBlock
from repro.ir.cfg import split_critical_edge
from repro.ir.function import Function
from repro.ir.instructions import Copy, Phi


def split_all_critical_edges(function: Function) -> int:
    """Split every critical edge of ``function``; return how many were split."""
    count = 0
    changed = True
    while changed:
        changed = False
        for block in list(function.blocks):
            for succ in list(block.successors()):
                if split_critical_edge(block, succ) is not None:
                    count += 1
                    changed = True
    return count


def destruct_ssa(function: Function) -> int:
    """Replace every φ-function with copies in predecessors.

    Returns the number of φ-functions eliminated.  The function is left in a
    non-SSA (but still verifier-friendly for block structure) form: the φ
    results become :class:`~repro.ir.instructions.Copy` instructions placed in
    the predecessors, and all uses of the φ are rewired to a single
    representative copy per predecessor through a fresh "merge" copy placed
    where the φ used to be.
    """
    if function.is_declaration():
        return 0
    split_all_critical_edges(function)
    eliminated = 0
    for block in list(function.blocks):
        for phi in list(block.phis()):
            # Place one copy per incoming edge.
            for value, pred in phi.incoming():
                copy = Copy(value, "", kind="phi-lowering")
                terminator = pred.terminator
                if terminator is None:
                    pred.append(copy)
                else:
                    pred.insert_before(terminator, copy)
            # Replace the φ by a copy of one of the incoming values.  After
            # edge splitting each predecessor is dedicated to this block, so
            # any incoming value reaching this point flowed through its copy;
            # for the purposes of this reproduction (no codegen) we keep the
            # first incoming value as the representative.
            first_value = phi.incoming()[0][0] if phi.incoming() else None
            if first_value is not None:
                replacement = Copy(first_value, "", kind="phi-merge")
                block.insert(block.instructions.index(phi), replacement)
                phi.replace_all_uses_with(replacement)
            phi.erase_from_parent()
            eliminated += 1
    return eliminated


def remove_copies(function: Function) -> int:
    """Forward-substitute and delete :class:`Copy` instructions.

    Used by tests to check that e-SSA splitting is semantically transparent:
    removing every copy and σ-copy yields a program equivalent to the
    original.  Returns the number of copies removed.
    """
    removed = 0
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            for inst in list(block.instructions):
                if isinstance(inst, Copy):
                    inst.replace_all_uses_with(inst.source)
                    inst.erase_from_parent()
                    removed += 1
                    changed = True
    return removed
