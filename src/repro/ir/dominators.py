"""Dominator tree and dominance frontier computation.

Implements the Cooper–Harvey–Kennedy iterative algorithm ("A simple, fast
dominance algorithm").  Dominance is the backbone of SSA construction, of the
e-SSA renaming step (uses dominated by a σ-copy are renamed) and of the
verifier's SSA checks.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from repro.ir.basicblock import BasicBlock
from repro.ir.cfg import ControlFlowGraph, reverse_postorder
from repro.ir.function import Function
from repro.ir.instructions import Instruction, Phi


class DominatorTree:
    """Immediate dominators, dominance queries and dominance frontiers."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self.cfg = ControlFlowGraph(function)
        self.rpo = reverse_postorder(function)
        self._rpo_index: Dict[BasicBlock, int] = {b: i for i, b in enumerate(self.rpo)}
        self.idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self.children: Dict[BasicBlock, List[BasicBlock]] = {}
        self._compute_idoms()
        self._compute_children()
        self.frontier: Dict[BasicBlock, Set[BasicBlock]] = self._compute_frontier()

    # -- construction -----------------------------------------------------------
    def _compute_idoms(self) -> None:
        entry = self.function.entry_block
        if entry is None:
            return
        idom: Dict[BasicBlock, Optional[BasicBlock]] = {b: None for b in self.rpo}
        idom[entry] = entry
        changed = True
        while changed:
            changed = False
            for block in self.rpo:
                if block is entry:
                    continue
                processed_preds = [
                    p for p in self.cfg.preds(block)
                    if p in idom and idom.get(p) is not None
                ]
                if not processed_preds:
                    continue
                new_idom = processed_preds[0]
                for pred in processed_preds[1:]:
                    new_idom = self._intersect(pred, new_idom, idom)
                if idom[block] is not new_idom:
                    idom[block] = new_idom
                    changed = True
        # Entry's idom is conventionally None (it has no strict dominator).
        idom[entry] = None
        self.idom = idom

    def _intersect(self, a: BasicBlock, b: BasicBlock,
                   idom: Dict[BasicBlock, Optional[BasicBlock]]) -> BasicBlock:
        finger_a, finger_b = a, b
        while finger_a is not finger_b:
            while self._rpo_index[finger_a] > self._rpo_index[finger_b]:
                parent = idom[finger_a]
                assert parent is not None
                finger_a = parent
            while self._rpo_index[finger_b] > self._rpo_index[finger_a]:
                parent = idom[finger_b]
                assert parent is not None
                finger_b = parent
        return finger_a

    def _compute_children(self) -> None:
        self.children = {block: [] for block in self.rpo}
        for block in self.rpo:
            parent = self.idom.get(block)
            if parent is not None and parent is not block:
                self.children[parent].append(block)

    def _compute_frontier(self) -> Dict[BasicBlock, Set[BasicBlock]]:
        frontier: Dict[BasicBlock, Set[BasicBlock]] = {b: set() for b in self.rpo}
        for block in self.rpo:
            preds = self.cfg.preds(block)
            if len(preds) < 2:
                continue
            for pred in preds:
                runner: Optional[BasicBlock] = pred
                while runner is not None and runner is not self.idom.get(block):
                    frontier.setdefault(runner, set()).add(block)
                    runner = self.idom.get(runner)
        return frontier

    # -- queries -------------------------------------------------------------------
    def immediate_dominator(self, block: BasicBlock) -> Optional[BasicBlock]:
        return self.idom.get(block)

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if block ``a`` dominates block ``b`` (reflexive)."""
        if a is b:
            return True
        runner = self.idom.get(b)
        while runner is not None:
            if runner is a:
                return True
            runner = self.idom.get(runner)
        return False

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def dominance_frontier(self, block: BasicBlock) -> Set[BasicBlock]:
        return self.frontier.get(block, set())

    def dom_tree_preorder(self) -> Iterator[BasicBlock]:
        entry = self.function.entry_block
        if entry is None:
            return
        stack = [entry]
        while stack:
            block = stack.pop()
            yield block
            stack.extend(reversed(self.children.get(block, [])))

    # -- instruction-level dominance --------------------------------------------------
    def instruction_dominates(self, a: Instruction, b: Instruction) -> bool:
        """True if instruction ``a`` dominates instruction ``b``.

        φ-functions are treated as executing at the top of their block, in
        parallel; a φ never dominates another instruction of the same block
        position-wise unless it appears earlier in the block's list.
        """
        block_a, block_b = a.parent, b.parent
        if block_a is None or block_b is None:
            raise ValueError("detached instructions have no dominance relation")
        if block_a is not block_b:
            return self.strictly_dominates(block_a, block_b)
        return block_a.instructions.index(a) < block_b.instructions.index(b)

    def value_dominates_use(self, value: Instruction, user: Instruction, operand_index: int) -> bool:
        """SSA dominance of a definition over one particular use.

        For uses inside φ-functions the definition must dominate the *end of
        the corresponding predecessor block*, not the φ itself.
        """
        if isinstance(user, Phi):
            pred = user.incoming_blocks[operand_index]
            def_block = value.parent
            if def_block is None:
                return False
            return self.dominates(def_block, pred)
        return self.instruction_dominates(value, user)
