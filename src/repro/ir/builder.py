"""A convenience builder for constructing IR programmatically.

The builder keeps an insertion point (a basic block) and provides one method
per instruction kind.  Tests, examples, the mini-C lowering and the synthetic
program generator all construct IR through this class.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Copy,
    GetElementPtr,
    ICmp,
    Instruction,
    Jump,
    Load,
    Malloc,
    Phi,
    Return,
    Store,
)
from repro.ir.types import IntType, Type
from repro.ir.values import ConstantInt, Value


class IRBuilder:
    """Builds instructions at the end of a chosen basic block."""

    def __init__(self, block: Optional[BasicBlock] = None) -> None:
        self.block = block

    # -- positioning -----------------------------------------------------------
    def set_insert_point(self, block: BasicBlock) -> None:
        self.block = block

    def _insert(self, instruction: Instruction) -> Instruction:
        if self.block is None:
            raise RuntimeError("IRBuilder has no insertion point")
        return self.block.append(instruction)

    # -- constants ---------------------------------------------------------------
    @staticmethod
    def const(value: int, ty: Optional[Type] = None) -> ConstantInt:
        return ConstantInt(value, ty if ty is not None else IntType(64))

    # -- arithmetic ----------------------------------------------------------------
    def add(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self._insert(BinaryOp("add", lhs, rhs, name))  # type: ignore[return-value]

    def sub(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self._insert(BinaryOp("sub", lhs, rhs, name))  # type: ignore[return-value]

    def mul(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self._insert(BinaryOp("mul", lhs, rhs, name))  # type: ignore[return-value]

    def div(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self._insert(BinaryOp("div", lhs, rhs, name))  # type: ignore[return-value]

    def rem(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self._insert(BinaryOp("rem", lhs, rhs, name))  # type: ignore[return-value]

    def binary(self, op: str, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self._insert(BinaryOp(op, lhs, rhs, name))  # type: ignore[return-value]

    # -- comparisons -----------------------------------------------------------------
    def icmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> ICmp:
        return self._insert(ICmp(predicate, lhs, rhs, name))  # type: ignore[return-value]

    def icmp_slt(self, lhs: Value, rhs: Value, name: str = "") -> ICmp:
        return self.icmp("slt", lhs, rhs, name)

    def icmp_sle(self, lhs: Value, rhs: Value, name: str = "") -> ICmp:
        return self.icmp("sle", lhs, rhs, name)

    def icmp_sgt(self, lhs: Value, rhs: Value, name: str = "") -> ICmp:
        return self.icmp("sgt", lhs, rhs, name)

    def icmp_sge(self, lhs: Value, rhs: Value, name: str = "") -> ICmp:
        return self.icmp("sge", lhs, rhs, name)

    def icmp_eq(self, lhs: Value, rhs: Value, name: str = "") -> ICmp:
        return self.icmp("eq", lhs, rhs, name)

    def icmp_ne(self, lhs: Value, rhs: Value, name: str = "") -> ICmp:
        return self.icmp("ne", lhs, rhs, name)

    # -- control flow ------------------------------------------------------------------
    def jump(self, target: BasicBlock) -> Jump:
        return self._insert(Jump(target))  # type: ignore[return-value]

    def branch(self, condition: Value, true_block: BasicBlock, false_block: BasicBlock) -> Branch:
        return self._insert(Branch(condition, true_block, false_block))  # type: ignore[return-value]

    def ret(self, value: Optional[Value] = None) -> Return:
        return self._insert(Return(value))  # type: ignore[return-value]

    def phi(self, ty: Type, name: str = "") -> Phi:
        """Insert a φ-function at the start of the current block."""
        if self.block is None:
            raise RuntimeError("IRBuilder has no insertion point")
        node = Phi(ty, name)
        return self.block.insert(self.block.first_non_phi_index(), node)  # type: ignore[return-value]

    # -- memory ---------------------------------------------------------------------------
    def alloca(self, ty: Type, name: str = "", array_size: Optional[Value] = None) -> Alloca:
        return self._insert(Alloca(ty, name, array_size))  # type: ignore[return-value]

    def malloc(self, ty: Type, size: Optional[Value] = None, name: str = "") -> Malloc:
        return self._insert(Malloc(ty, size, name))  # type: ignore[return-value]

    def load(self, pointer: Value, name: str = "") -> Load:
        return self._insert(Load(pointer, name))  # type: ignore[return-value]

    def store(self, value: Value, pointer: Value) -> Store:
        return self._insert(Store(value, pointer))  # type: ignore[return-value]

    def gep(self, base: Value, index: Value, name: str = "") -> GetElementPtr:
        return self._insert(GetElementPtr(base, index, name))  # type: ignore[return-value]

    # -- misc ------------------------------------------------------------------------------
    def copy(self, source: Value, name: str = "", kind: str = "plain") -> Copy:
        return self._insert(Copy(source, name, kind))  # type: ignore[return-value]

    def call(self, callee: Function, args: Iterable[Value], name: str = "") -> Call:
        return self._insert(Call(callee, args, name))  # type: ignore[return-value]
