"""Basic blocks: maximal straight-line sequences of instructions."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.ir.instructions import Instruction, Phi

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.function import Function


class BasicBlock:
    """A labelled list of instructions ending in a terminator.

    Blocks know their parent function.  Predecessor and successor queries are
    derived from terminator instructions, so there is no redundant edge list
    to keep in sync when the CFG is edited.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.parent: Optional["Function"] = None
        self.instructions: List[Instruction] = []

    # -- instruction management ----------------------------------------------
    def append(self, instruction: Instruction) -> Instruction:
        """Add ``instruction`` at the end of the block and claim ownership."""
        instruction.parent = self
        self.instructions.append(instruction)
        if self.parent is not None and instruction.produces_value() and not instruction.name:
            instruction.name = self.parent.next_value_name()
        return instruction

    def insert(self, index: int, instruction: Instruction) -> Instruction:
        instruction.parent = self
        self.instructions.insert(index, instruction)
        if self.parent is not None and instruction.produces_value() and not instruction.name:
            instruction.name = self.parent.next_value_name()
        return instruction

    def insert_before(self, anchor: Instruction, instruction: Instruction) -> Instruction:
        return self.insert(self.instructions.index(anchor), instruction)

    def insert_after(self, anchor: Instruction, instruction: Instruction) -> Instruction:
        return self.insert(self.instructions.index(anchor) + 1, instruction)

    def remove_instruction(self, instruction: Instruction) -> None:
        self.instructions.remove(instruction)
        instruction.parent = None

    # -- structure queries ----------------------------------------------------
    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator():
            return self.instructions[-1]
        return None

    def phis(self) -> List[Phi]:
        return [inst for inst in self.instructions if isinstance(inst, Phi)]

    def non_phi_instructions(self) -> List[Instruction]:
        return [inst for inst in self.instructions if not isinstance(inst, Phi)]

    def first_non_phi_index(self) -> int:
        for index, inst in enumerate(self.instructions):
            if not isinstance(inst, Phi):
                return index
        return len(self.instructions)

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        if term is None:
            return []
        return term.successors()  # type: ignore[attr-defined]

    def predecessors(self) -> List["BasicBlock"]:
        if self.parent is None:
            return []
        preds = []
        for block in self.parent.blocks:
            if self in block.successors():
                preds.append(block)
        return preds

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return "<BasicBlock {}>".format(self.name or "<unnamed>")
