"""Natural-loop detection.

Loops are where pointer arithmetic matters most: the motivating examples of
the paper are loops walking an array from both ends.  This module identifies
natural loops from back edges in the dominator tree and exposes simple
queries (loop headers, members, nesting depth) used by the synthetic workload
generator and by the examples that reason about loop-carried dependences.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.basicblock import BasicBlock
from repro.ir.cfg import ControlFlowGraph
from repro.ir.dominators import DominatorTree
from repro.ir.function import Function


class Loop:
    """One natural loop: a header plus the set of blocks that reach it."""

    def __init__(self, header: BasicBlock) -> None:
        self.header = header
        self.blocks: Set[BasicBlock] = {header}
        self.parent: Optional["Loop"] = None
        self.children: List["Loop"] = []

    def contains(self, block: BasicBlock) -> bool:
        return block in self.blocks

    def depth(self) -> int:
        depth = 1
        current = self.parent
        while current is not None:
            depth += 1
            current = current.parent
        return depth

    def latches(self, cfg: ControlFlowGraph) -> List[BasicBlock]:
        """Blocks inside the loop that branch back to the header."""
        return [b for b in cfg.preds(self.header) if b in self.blocks]

    def exit_blocks(self, cfg: ControlFlowGraph) -> List[BasicBlock]:
        """Blocks outside the loop that are successors of loop blocks."""
        exits: List[BasicBlock] = []
        for block in self.blocks:
            for succ in cfg.succs(block):
                if succ not in self.blocks and succ not in exits:
                    exits.append(succ)
        return exits

    def __repr__(self) -> str:
        return "<Loop header={} blocks={}>".format(self.header.name, len(self.blocks))


class LoopInfo:
    """All natural loops of a function, with nesting structure."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self.cfg = ControlFlowGraph(function)
        self.domtree = DominatorTree(function)
        self.loops: List[Loop] = []
        self._loop_of_header: Dict[BasicBlock, Loop] = {}
        self._discover_loops()
        self._build_nesting()

    def _discover_loops(self) -> None:
        # A back edge is an edge b -> h where h dominates b.
        for block in self.function.blocks:
            for succ in block.successors():
                if self.domtree.dominates(succ, block):
                    loop = self._loop_of_header.get(succ)
                    if loop is None:
                        loop = Loop(succ)
                        self._loop_of_header[succ] = loop
                        self.loops.append(loop)
                    self._collect_body(loop, block)

    def _collect_body(self, loop: Loop, latch: BasicBlock) -> None:
        """Add to ``loop`` every block that can reach ``latch`` without going
        through the header (the standard natural-loop body computation)."""
        stack = [latch]
        while stack:
            block = stack.pop()
            if block in loop.blocks:
                continue
            loop.blocks.add(block)
            for pred in self.cfg.preds(block):
                if pred not in loop.blocks:
                    stack.append(pred)

    def _build_nesting(self) -> None:
        # Order loops by size; a loop is nested in the smallest loop that
        # strictly contains its header and all of its blocks.
        by_size = sorted(self.loops, key=lambda l: len(l.blocks))
        for inner in by_size:
            for outer in by_size:
                if outer is inner:
                    continue
                if len(outer.blocks) <= len(inner.blocks):
                    continue
                if inner.blocks <= outer.blocks:
                    inner.parent = outer
                    outer.children.append(inner)
                    break

    # -- queries ------------------------------------------------------------------
    def loop_for_header(self, block: BasicBlock) -> Optional[Loop]:
        return self._loop_of_header.get(block)

    def innermost_loop_containing(self, block: BasicBlock) -> Optional[Loop]:
        best: Optional[Loop] = None
        for loop in self.loops:
            if loop.contains(block):
                if best is None or len(loop.blocks) < len(best.blocks):
                    best = loop
        return best

    def loop_depth(self, block: BasicBlock) -> int:
        loop = self.innermost_loop_containing(block)
        return loop.depth() if loop is not None else 0

    def headers(self) -> List[BasicBlock]:
        return [loop.header for loop in self.loops]

    def __len__(self) -> int:
        return len(self.loops)
