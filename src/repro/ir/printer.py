"""Textual rendering of IR modules, functions and instructions.

The format loosely follows LLVM's: values are printed as ``%name``, globals
as ``@name``, blocks as labels.  The printer is used by tests, examples and
error messages; :mod:`repro.ir.parser` can read the format back.
"""

from __future__ import annotations

from typing import List

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Copy,
    GetElementPtr,
    ICmp,
    Instruction,
    Jump,
    Load,
    Malloc,
    Phi,
    Return,
    Store,
)
from repro.ir.module import Module
from repro.ir.values import Argument, ConstantInt, GlobalVariable, NullPointer, Undef, Value


def format_value(value: Value) -> str:
    """Render ``value`` as an operand reference."""
    if isinstance(value, ConstantInt):
        return str(value.value)
    if isinstance(value, NullPointer):
        return "null"
    if isinstance(value, Undef):
        return "undef"
    if isinstance(value, GlobalVariable):
        return "@{}".format(value.name)
    return "%{}".format(value.name)


def format_typed_value(value: Value) -> str:
    return "{} {}".format(value.type, format_value(value))


def format_instruction(inst: Instruction) -> str:
    """Render one instruction (without indentation or trailing newline)."""
    if isinstance(inst, BinaryOp):
        return "%{} = {} {} {}, {}".format(
            inst.name, inst.op, inst.type, format_value(inst.lhs), format_value(inst.rhs)
        )
    if isinstance(inst, ICmp):
        return "%{} = icmp {} {} {}, {}".format(
            inst.name, inst.predicate, inst.lhs.type, format_value(inst.lhs), format_value(inst.rhs)
        )
    if isinstance(inst, Phi):
        incoming = ", ".join(
            "[{}, %{}]".format(format_value(value), block.name) for value, block in inst.incoming()
        )
        return "%{} = phi {} {}".format(inst.name, inst.type, incoming)
    if isinstance(inst, Jump):
        return "br label %{}".format(inst.target.name)
    if isinstance(inst, Branch):
        return "br {} {}, label %{}, label %{}".format(
            inst.condition.type, format_value(inst.condition),
            inst.true_block.name, inst.false_block.name,
        )
    if isinstance(inst, Return):
        if inst.value is None:
            return "ret void"
        return "ret {}".format(format_typed_value(inst.value))
    if isinstance(inst, Alloca):
        if inst.array_size is not None:
            return "%{} = alloca {}, {}".format(
                inst.name, inst.allocated_type, format_typed_value(inst.array_size)
            )
        return "%{} = alloca {}".format(inst.name, inst.allocated_type)
    if isinstance(inst, Malloc):
        if inst.size is not None:
            return "%{} = malloc {}, {}".format(
                inst.name, inst.allocated_type, format_typed_value(inst.size)
            )
        return "%{} = malloc {}".format(inst.name, inst.allocated_type)
    if isinstance(inst, Load):
        return "%{} = load {}, {}".format(
            inst.name, inst.type, format_typed_value(inst.pointer)
        )
    if isinstance(inst, Store):
        return "store {}, {}".format(
            format_typed_value(inst.value), format_typed_value(inst.pointer)
        )
    if isinstance(inst, GetElementPtr):
        return "%{} = gep {}, {}".format(
            inst.name, format_typed_value(inst.base), format_typed_value(inst.index)
        )
    if isinstance(inst, Copy):
        return "%{} = copy {} {} ; {}".format(
            inst.name, inst.type, format_value(inst.source), inst.kind
        )
    if isinstance(inst, Call):
        args = ", ".join(format_typed_value(a) for a in inst.arguments)
        if inst.produces_value():
            return "%{} = call {} @{}({})".format(inst.name, inst.type, inst.callee.name, args)
        return "call void @{}({})".format(inst.callee.name, args)
    return "<unknown instruction {}>".format(type(inst).__name__)


def print_block(block: BasicBlock) -> str:
    lines: List[str] = ["{}:".format(block.name)]
    for inst in block.instructions:
        lines.append("  " + format_instruction(inst))
    return "\n".join(lines)


def print_function(function: Function) -> str:
    args = ", ".join("{} %{}".format(a.type, a.name) for a in function.arguments)
    header = "define {} @{}({}) {{".format(function.return_type, function.name, args)
    if function.is_declaration():
        return "declare {} @{}({})".format(function.return_type, function.name, args)
    body = "\n".join(print_block(block) for block in function.blocks)
    return "{}\n{}\n}}".format(header, body)


def print_module(module: Module) -> str:
    parts: List[str] = ["; module {}".format(module.name)]
    for gv in module.globals:
        if gv.initializer is not None:
            parts.append("@{} = global {} {}".format(
                gv.name, gv.value_type, format_value(gv.initializer)))
        else:
            parts.append("@{} = global {}".format(gv.name, gv.value_type))
    for function in module.functions:
        parts.append(print_function(function))
    return "\n\n".join(parts) + "\n"
