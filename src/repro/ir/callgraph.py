"""Module call graphs and call-graph-aware dependency fingerprints.

Every cache layer of the engine used to invalidate at *module* granularity:
editing any function changed the module text hash, so every function-level
store entry missed.  This module computes what an edit actually dirties:

* :class:`CallGraph` — the direct-call graph over a module's defined
  functions (``Call`` instructions name their callee statically), condensed
  into SCCs with the shared Tarjan machinery so recursion — self or mutual —
  is handled exactly.

* :class:`ModuleFingerprints` — three content hashes per function:

  - ``own_hash``: SHA-256 of the function's printed IR.  Changes iff the
    function's own body (or signature) changes; call sites embed the callee
    *name*, so re-pointing a call changes the caller's own hash too.
  - ``fingerprint`` (the *dependency fingerprint*): own hash folded with the
    fingerprints of every callee, fixpointed SCC-aware — all members of a
    recursive component share one component digest, so the fold terminates
    and is deterministic.  Editing function ``A`` changes the fingerprints
    of exactly ``A`` and its transitive *callers* (their dependency cone
    contains ``A``); unrelated functions keep their fingerprints.
  - ``region_fingerprint`` (the *reachable-region fingerprint*): the fold of
    the own hashes of every function whose facts can flow *into* this one
    under the interprocedural less-than analysis.  Pseudo-φ constraints bind
    a formal parameter to the actual arguments of its call sites, so facts
    flow caller → callee: the region of ``F`` is ``{F}`` plus its transitive
    callers.  Editing a leaf invalidates only that leaf's region; everything
    else keeps its region fingerprint and hits warm.

All three hashes are derived from printed IR text, which the deterministic
frontend reproduces bit-identically across processes and runs — the property
that makes them usable as persistent store keys
(:func:`repro.engine.store.function_key`).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Set

from repro.ir.function import Function
from repro.ir.instructions import Call
from repro.ir.module import Module
from repro.ir.printer import print_function
from repro.util.scc import strongly_connected_components


def function_own_hash(function: Function) -> str:
    """SHA-256 of the function's printed IR (its *own* content address)."""
    return hashlib.sha256(print_function(function).encode("utf-8")).hexdigest()


def _fold(parts: List[str]) -> str:
    """Fold a list of hex digests into one, NUL-separated (unambiguous)."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


class CallGraph:
    """The direct-call graph over ``module``'s defined functions.

    Nodes are function *names* (names are unique within a module and survive
    recompilation, unlike object identities).  Calls to declared-but-undefined
    functions contribute no edge — the callee has no body to fingerprint, and
    its name is already part of the caller's own hash via the printed call.
    """

    def __init__(self, module: Module) -> None:
        self.module = module
        self.nodes: List[str] = []
        self.callees: Dict[str, List[str]] = {}
        self.callers: Dict[str, List[str]] = {}
        defined: Set[str] = set()
        for function in module.defined_functions():
            self.nodes.append(function.name)
            defined.add(function.name)
            self.callees[function.name] = []
            self.callers.setdefault(function.name, [])
        for function in module.defined_functions():
            seen: Set[str] = set()
            for inst in function.instructions():
                if not isinstance(inst, Call):
                    continue
                callee = inst.callee.name
                if callee not in defined or callee in seen:
                    continue
                seen.add(callee)
                self.callees[function.name].append(callee)
                self.callers.setdefault(callee, []).append(function.name)
        for name in self.nodes:
            self.callees[name].sort()
            self.callers[name].sort()

    def components(self) -> List[List[str]]:
        """SCCs in callee-first topological order (dependencies first).

        Tarjan emits the condensation in reverse topological order along the
        ``callees`` edge direction, i.e. every component after all components
        it calls into — exactly the order a bottom-up fingerprint fold needs.
        """
        return strongly_connected_components(self.nodes, self.callees)

    def transitive_callers(self, name: str) -> Set[str]:
        """``{name}`` plus every function from which ``name`` is reachable."""
        return self._closure(name, self.callers)

    def transitive_callees(self, name: str) -> Set[str]:
        """``{name}`` plus every function reachable from ``name``."""
        return self._closure(name, self.callees)

    def _closure(self, name: str, edges: Dict[str, List[str]]) -> Set[str]:
        closure: Set[str] = {name}
        stack = [name]
        while stack:
            current = stack.pop()
            for neighbour in edges.get(current, ()):
                if neighbour not in closure:
                    closure.add(neighbour)
                    stack.append(neighbour)
        return closure

    def __repr__(self) -> str:
        edges = sum(len(callees) for callees in self.callees.values())
        return "<CallGraph {} functions, {} edges>".format(len(self.nodes), edges)


class ModuleFingerprints:
    """Per-function content hashes of one module snapshot (see module doc)."""

    __slots__ = ("graph", "own", "fingerprint", "region")

    def __init__(self, module: Module) -> None:
        self.graph = CallGraph(module)
        self.own: Dict[str, str] = {
            function.name: function_own_hash(function)
            for function in module.defined_functions()}
        self.fingerprint: Dict[str, str] = {}
        self.region: Dict[str, str] = {}
        self._fold_fingerprints()
        self._fold_regions()

    def _fold_fingerprints(self) -> None:
        # Bottom-up over the condensation: when a component is processed,
        # every external callee already carries its final fingerprint, so one
        # pass reaches the fixpoint.  Members of a cyclic component share one
        # component digest (their mutual recursion makes them one unit of
        # change), personalised by each member's own hash so two members with
        # different bodies still fingerprint differently.
        for component in self.graph.components():
            members = set(component)
            external: Set[str] = set()
            for name in component:
                for callee in self.graph.callees.get(name, ()):
                    if callee not in members:
                        external.add(self.fingerprint[callee])
            component_digest = _fold(
                sorted(self.own[name] for name in component)
                + sorted(external))
            for name in component:
                self.fingerprint[name] = _fold([self.own[name], component_digest])

    def _fold_regions(self) -> None:
        # The region folds *own* hashes, not dependency fingerprints: a
        # caller's facts are generated from its own instructions only (its
        # callees' bodies reach it through their own regions, not through the
        # caller's constraints), so folding caller fingerprints here would
        # re-couple every function to its siblings via a shared root caller.
        for name in self.graph.nodes:
            region = self.graph.transitive_callers(name)
            self.region[name] = _fold(sorted(self.own[member] for member in region))

    def names(self) -> List[str]:
        return list(self.graph.nodes)

    def dirty_since(self, previous: "ModuleFingerprints") -> List[str]:
        """Function names whose *own* content changed (or appeared) since
        ``previous`` — the seed of an edit's blast radius."""
        return [name for name in self.graph.nodes
                if self.own[name] != previous.own.get(name)]

    def __repr__(self) -> str:
        return "<ModuleFingerprints {} functions>".format(len(self.own))


def module_fingerprints(module: Module) -> ModuleFingerprints:
    """Fingerprint ``module``'s current state (a pure function of its IR)."""
    return ModuleFingerprints(module)
