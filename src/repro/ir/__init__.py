"""An LLVM-like, typed, SSA-based intermediate representation.

The paper implements its analyses as LLVM passes; this package provides the
equivalent substrate in pure Python: a module/function/basic-block/instruction
hierarchy, a builder API, textual printing and parsing, a verifier, and the
classic CFG analyses (dominators, liveness, loops) that the strict-inequality
analysis and its companions rely on.
"""

from repro.ir.types import (
    ArrayType,
    BoolType,
    FunctionType,
    IntType,
    PointerType,
    Type,
    VoidType,
    BOOL,
    INT,
    VOID,
    pointer_to,
)
from repro.ir.values import (
    Argument,
    Constant,
    ConstantInt,
    GlobalVariable,
    NullPointer,
    Undef,
    Value,
)
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Copy,
    GetElementPtr,
    ICmp,
    Instruction,
    Jump,
    Load,
    Malloc,
    Phi,
    Return,
    Store,
)
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.builder import IRBuilder
from repro.ir.printer import print_function, print_module
from repro.ir.verifier import VerificationError, verify_function, verify_module

__all__ = [
    "ArrayType",
    "BoolType",
    "FunctionType",
    "IntType",
    "PointerType",
    "Type",
    "VoidType",
    "BOOL",
    "INT",
    "VOID",
    "pointer_to",
    "Argument",
    "Constant",
    "ConstantInt",
    "GlobalVariable",
    "NullPointer",
    "Undef",
    "Value",
    "Alloca",
    "BinaryOp",
    "Branch",
    "Call",
    "Copy",
    "GetElementPtr",
    "ICmp",
    "Instruction",
    "Jump",
    "Load",
    "Malloc",
    "Phi",
    "Return",
    "Store",
    "BasicBlock",
    "Function",
    "Module",
    "IRBuilder",
    "print_function",
    "print_module",
    "VerificationError",
    "verify_function",
    "verify_module",
]
