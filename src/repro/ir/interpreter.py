"""A reference interpreter for the IR.

The interpreter serves two purposes:

* it makes the examples runnable end-to-end (the mini-C sorting routines can
  actually be executed on concrete arrays), and
* it powers differential testing of the static analyses: the adequacy
  theorem of the paper (Theorem 3.9) states that whenever the analysis puts
  ``x`` in ``LT(y)``, the concrete value of ``x`` is smaller than the value
  of ``y`` at any moment where both are defined.  Property-based tests run
  random programs under this interpreter and check exactly that.

Memory is modelled as a collection of independent objects (one per ``alloca``
/ ``malloc`` / global), each a Python list of cells; pointers are
``(object id, offset)`` pairs.  Out-of-bounds accesses raise
:class:`InterpreterError` instead of being undefined behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Copy,
    GetElementPtr,
    ICmp,
    Instruction,
    Jump,
    Load,
    Malloc,
    Phi,
    Return,
    Store,
)
from repro.ir.module import Module
from repro.ir.values import Argument, ConstantInt, GlobalVariable, NullPointer, Undef, Value


class InterpreterError(Exception):
    """Raised on invalid runtime behaviour (bad memory access, div by zero...)."""


class Pointer:
    """A runtime pointer: an object identifier plus an element offset."""

    __slots__ = ("object_id", "offset")

    def __init__(self, object_id: int, offset: int = 0) -> None:
        self.object_id = object_id
        self.offset = offset

    def moved(self, delta: int) -> "Pointer":
        return Pointer(self.object_id, self.offset + delta)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Pointer)
            and other.object_id == self.object_id
            and other.offset == self.offset
        )

    def __hash__(self) -> int:
        return hash((self.object_id, self.offset))

    def __repr__(self) -> str:
        return "Pointer(obj={}, off={})".format(self.object_id, self.offset)


NULL_POINTER = Pointer(-1, 0)

# A trace entry: (function name, instruction, environment snapshot).
TraceEntry = Tuple[str, Instruction, Dict[Value, object]]


class MemoryObject:
    """A contiguous runtime object of ``size`` integer-or-pointer cells."""

    def __init__(self, object_id: int, size: int, label: str) -> None:
        self.object_id = object_id
        self.cells: List[object] = [0] * size
        self.label = label

    def read(self, offset: int) -> object:
        if not 0 <= offset < len(self.cells):
            raise InterpreterError(
                "out-of-bounds read at {}[{}] (size {})".format(self.label, offset, len(self.cells)))
        return self.cells[offset]

    def write(self, offset: int, value: object) -> None:
        if not 0 <= offset < len(self.cells):
            raise InterpreterError(
                "out-of-bounds write at {}[{}] (size {})".format(self.label, offset, len(self.cells)))
        self.cells[offset] = value


class Interpreter:
    """Executes functions of a module.

    Parameters
    ----------
    module:
        The module containing the functions to run.
    max_steps:
        A fuel limit that guards against non-terminating random programs.
    record_trace:
        When true, every executed instruction that produces a value is
        recorded together with a snapshot of the local environment; the
        adequacy property test consumes this trace.
    """

    DEFAULT_OBJECT_SIZE = 64

    def __init__(self, module: Module, max_steps: int = 100000, record_trace: bool = False) -> None:
        self.module = module
        self.max_steps = max_steps
        self.record_trace = record_trace
        self.steps = 0
        self.memory: Dict[int, MemoryObject] = {}
        self.trace: List[TraceEntry] = []
        self._next_object_id = 0
        self._globals: Dict[GlobalVariable, Pointer] = {}
        for gv in module.globals:
            pointer = self._allocate(self.DEFAULT_OBJECT_SIZE, "@" + gv.name)
            if gv.initializer is not None and isinstance(gv.initializer, ConstantInt):
                self.memory[pointer.object_id].write(0, gv.initializer.value)
            self._globals[gv] = pointer

    # -- memory management -----------------------------------------------------
    def _allocate(self, size: int, label: str) -> Pointer:
        object_id = self._next_object_id
        self._next_object_id += 1
        self.memory[object_id] = MemoryObject(object_id, size, label)
        return Pointer(object_id)

    def allocate_array(self, values: Sequence[int], label: str = "array") -> Pointer:
        """Allocate an object initialised with ``values`` (used by examples)."""
        pointer = self._allocate(max(len(values), 1), label)
        for index, value in enumerate(values):
            self.memory[pointer.object_id].write(index, value)
        return pointer

    def read_array(self, pointer: Pointer, count: int) -> List[object]:
        obj = self.memory[pointer.object_id]
        return [obj.read(pointer.offset + i) for i in range(count)]

    # -- value evaluation ---------------------------------------------------------
    def _eval(self, value: Value, env: Dict[Value, object]) -> object:
        if isinstance(value, ConstantInt):
            return value.value
        if isinstance(value, NullPointer):
            return NULL_POINTER
        if isinstance(value, Undef):
            return 0
        if isinstance(value, GlobalVariable):
            return self._globals[value]
        if value in env:
            return env[value]
        raise InterpreterError("use of undefined value %{}".format(value.name))

    # -- execution ------------------------------------------------------------------
    def run(self, function_name: str, args: Sequence[object] = ()) -> Optional[object]:
        function = self.module.get_function(function_name)
        if function is None:
            raise InterpreterError("no function named {}".format(function_name))
        return self.call_function(function, list(args))

    def call_function(self, function: Function, args: Sequence[object]) -> Optional[object]:
        if function.is_declaration():
            raise InterpreterError("cannot execute declaration @{}".format(function.name))
        if len(args) != len(function.arguments):
            raise InterpreterError(
                "@{} expects {} arguments, got {}".format(
                    function.name, len(function.arguments), len(args)))
        env: Dict[Value, object] = {}
        for formal, actual in zip(function.arguments, args):
            env[formal] = actual
        block = function.entry_block
        assert block is not None
        previous_block: Optional[BasicBlock] = None
        while True:
            next_block, result, returned = self._run_block(function, block, previous_block, env)
            if returned:
                return result
            previous_block, block = block, next_block  # type: ignore[assignment]

    def _run_block(self, function: Function, block: BasicBlock,
                   previous: Optional[BasicBlock], env: Dict[Value, object]):
        # φ-functions execute in parallel based on the incoming edge.
        phi_values: Dict[Phi, object] = {}
        for phi in block.phis():
            if previous is None:
                raise InterpreterError("phi %{} executed in entry block".format(phi.name))
            incoming = phi.incoming_value_for(previous)
            if incoming is None:
                raise InterpreterError(
                    "phi %{} has no incoming value for block {}".format(phi.name, previous.name))
            phi_values[phi] = self._eval(incoming, env)
        for phi, value in phi_values.items():
            env[phi] = value
            self._record(function, phi, env)

        for inst in block.non_phi_instructions():
            self.steps += 1
            if self.steps > self.max_steps:
                raise InterpreterError("step limit exceeded (non-terminating program?)")
            if isinstance(inst, BinaryOp):
                env[inst] = self._binary(inst, env)
            elif isinstance(inst, ICmp):
                env[inst] = self._compare(inst, env)
            elif isinstance(inst, Copy):
                env[inst] = self._eval(inst.source, env)
            elif isinstance(inst, Alloca):
                size = self.DEFAULT_OBJECT_SIZE
                if inst.array_size is not None:
                    size = int(self._eval(inst.array_size, env))  # type: ignore[arg-type]
                env[inst] = self._allocate(max(size, 1), "%" + inst.name)
            elif isinstance(inst, Malloc):
                size = self.DEFAULT_OBJECT_SIZE
                if inst.size is not None:
                    size = int(self._eval(inst.size, env))  # type: ignore[arg-type]
                env[inst] = self._allocate(max(size, 1), "%" + inst.name)
            elif isinstance(inst, GetElementPtr):
                base = self._eval(inst.base, env)
                index = self._eval(inst.index, env)
                if not isinstance(base, Pointer):
                    raise InterpreterError("gep on non-pointer value in %{}".format(inst.name))
                env[inst] = base.moved(int(index))  # type: ignore[arg-type]
            elif isinstance(inst, Load):
                pointer = self._eval(inst.pointer, env)
                if not isinstance(pointer, Pointer) or pointer.object_id not in self.memory:
                    raise InterpreterError("load through invalid pointer in %{}".format(inst.name))
                env[inst] = self.memory[pointer.object_id].read(pointer.offset)
            elif isinstance(inst, Store):
                pointer = self._eval(inst.pointer, env)
                value = self._eval(inst.value, env)
                if not isinstance(pointer, Pointer) or pointer.object_id not in self.memory:
                    raise InterpreterError("store through invalid pointer")
                self.memory[pointer.object_id].write(pointer.offset, value)
            elif isinstance(inst, Call):
                arg_values = [self._eval(a, env) for a in inst.arguments]
                result = self.call_function(inst.callee, arg_values)
                if inst.produces_value():
                    env[inst] = result
            elif isinstance(inst, Jump):
                return inst.target, None, False
            elif isinstance(inst, Branch):
                condition = self._eval(inst.condition, env)
                target = inst.true_block if condition else inst.false_block
                return target, None, False
            elif isinstance(inst, Return):
                value = self._eval(inst.value, env) if inst.value is not None else None
                return None, value, True
            else:
                raise InterpreterError("cannot interpret {}".format(type(inst).__name__))
            if inst.produces_value():
                self._record(function, inst, env)
        raise InterpreterError("block {} fell through without a terminator".format(block.name))

    # -- helpers -----------------------------------------------------------------------
    def _binary(self, inst: BinaryOp, env: Dict[Value, object]) -> object:
        lhs = self._eval(inst.lhs, env)
        rhs = self._eval(inst.rhs, env)
        # Pointer arithmetic through add/sub is permitted: pointer +/- int.
        if isinstance(lhs, Pointer) and isinstance(rhs, int):
            if inst.op == "add":
                return lhs.moved(rhs)
            if inst.op == "sub":
                return lhs.moved(-rhs)
            raise InterpreterError("unsupported pointer arithmetic {}".format(inst.op))
        if isinstance(rhs, Pointer) and isinstance(lhs, int) and inst.op == "add":
            return rhs.moved(lhs)
        if not isinstance(lhs, int) or not isinstance(rhs, int):
            raise InterpreterError("binary op on non-integers in %{}".format(inst.name))
        if inst.op == "add":
            return lhs + rhs
        if inst.op == "sub":
            return lhs - rhs
        if inst.op == "mul":
            return lhs * rhs
        if inst.op == "div":
            if rhs == 0:
                raise InterpreterError("division by zero in %{}".format(inst.name))
            return int(lhs / rhs)  # C-style truncation toward zero
        if inst.op == "rem":
            if rhs == 0:
                raise InterpreterError("remainder by zero in %{}".format(inst.name))
            return lhs - int(lhs / rhs) * rhs
        raise InterpreterError("unknown binary op {}".format(inst.op))

    def _compare(self, inst: ICmp, env: Dict[Value, object]) -> bool:
        lhs = self._eval(inst.lhs, env)
        rhs = self._eval(inst.rhs, env)
        if isinstance(lhs, Pointer) and isinstance(rhs, Pointer):
            lhs_key: object = (lhs.object_id, lhs.offset)
            rhs_key: object = (rhs.object_id, rhs.offset)
        else:
            lhs_key, rhs_key = lhs, rhs
        if inst.predicate == "eq":
            return lhs_key == rhs_key
        if inst.predicate == "ne":
            return lhs_key != rhs_key
        if inst.predicate == "slt":
            return lhs_key < rhs_key  # type: ignore[operator]
        if inst.predicate == "sle":
            return lhs_key <= rhs_key  # type: ignore[operator]
        if inst.predicate == "sgt":
            return lhs_key > rhs_key  # type: ignore[operator]
        if inst.predicate == "sge":
            return lhs_key >= rhs_key  # type: ignore[operator]
        raise InterpreterError("unknown predicate {}".format(inst.predicate))

    def _record(self, function: Function, inst: Instruction, env: Dict[Value, object]) -> None:
        if self.record_trace:
            self.trace.append((function.name, inst, dict(env)))
