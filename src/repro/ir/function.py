"""Functions: argument lists plus a control-flow graph of basic blocks."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence

from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import Instruction
from repro.ir.types import FunctionType, Type, VoidType
from repro.ir.values import Argument, Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.module import Module


class Function:
    """A function: name, typed arguments and an ordered list of basic blocks.

    The first block added to the function is its entry block.  The function
    owns a name counter so every value it contains gets a unique textual
    name, which keeps printed IR readable and makes analyses deterministic.
    """

    def __init__(self, name: str, return_type: Type,
                 arg_types: Sequence[Type] = (), arg_names: Optional[Sequence[str]] = None) -> None:
        self.name = name
        self.return_type = return_type
        self.parent: Optional["Module"] = None
        self.blocks: List[BasicBlock] = []
        self.arguments: List[Argument] = []
        self._value_counter = 0
        self._block_counter = 0
        if arg_names is None:
            arg_names = ["arg{}".format(i) for i in range(len(arg_types))]
        if len(arg_names) != len(arg_types):
            raise ValueError("arg_names and arg_types must have the same length")
        for index, (ty, arg_name) in enumerate(zip(arg_types, arg_names)):
            argument = Argument(ty, arg_name, index)
            argument.function = self
            self.arguments.append(argument)

    # -- naming ----------------------------------------------------------------
    def next_value_name(self) -> str:
        name = "v{}".format(self._value_counter)
        self._value_counter += 1
        return name

    def next_block_name(self, hint: str = "bb") -> str:
        name = "{}{}".format(hint, self._block_counter)
        self._block_counter += 1
        return name

    # -- block management -------------------------------------------------------
    def append_block(self, block: Optional[BasicBlock] = None, name: str = "") -> BasicBlock:
        if block is None:
            block = BasicBlock(name or self.next_block_name())
        elif not block.name:
            block.name = self.next_block_name()
        block.parent = self
        self.blocks.append(block)
        # Name any instructions that were added before attachment.
        for inst in block.instructions:
            if inst.produces_value() and not inst.name:
                inst.name = self.next_value_name()
        return block

    def remove_block(self, block: BasicBlock) -> None:
        self.blocks.remove(block)
        block.parent = None

    @property
    def entry_block(self) -> Optional[BasicBlock]:
        return self.blocks[0] if self.blocks else None

    @property
    def function_type(self) -> FunctionType:
        return FunctionType(self.return_type, tuple(a.type for a in self.arguments))

    def is_declaration(self) -> bool:
        return not self.blocks

    # -- traversal ---------------------------------------------------------------
    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            for inst in block.instructions:
                yield inst

    def values(self) -> Iterator[Value]:
        """All SSA values defined in the function: arguments then results."""
        for argument in self.arguments:
            yield argument
        for inst in self.instructions():
            if inst.produces_value():
                yield inst

    def block_by_name(self, name: str) -> Optional[BasicBlock]:
        for block in self.blocks:
            if block.name == name:
                return block
        return None

    def value_by_name(self, name: str) -> Optional[Value]:
        for value in self.values():
            if value.name == name:
                return value
        return None

    def instruction_count(self) -> int:
        return sum(len(block) for block in self.blocks)

    def __repr__(self) -> str:
        return "<Function {} ({} blocks)>".format(self.name, len(self.blocks))
