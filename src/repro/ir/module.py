"""Modules: the top-level container of functions and global variables."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.ir.function import Function
from repro.ir.types import Type
from repro.ir.values import Constant, GlobalVariable


class Module:
    """A translation unit: named functions and global variables."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: List[Function] = []
        self.globals: List[GlobalVariable] = []

    # -- functions ---------------------------------------------------------------
    def add_function(self, function: Function) -> Function:
        if self.get_function(function.name) is not None:
            raise ValueError("duplicate function name: {}".format(function.name))
        function.parent = self
        self.functions.append(function)
        return function

    def create_function(self, name: str, return_type: Type,
                        arg_types: Sequence[Type] = (),
                        arg_names: Optional[Sequence[str]] = None) -> Function:
        return self.add_function(Function(name, return_type, arg_types, arg_names))

    def get_function(self, name: str) -> Optional[Function]:
        for function in self.functions:
            if function.name == name:
                return function
        return None

    # -- globals -----------------------------------------------------------------
    def add_global(self, value_type: Type, name: str,
                   initializer: Optional[Constant] = None) -> GlobalVariable:
        if self.get_global(name) is not None:
            raise ValueError("duplicate global name: {}".format(name))
        gv = GlobalVariable(value_type, name, initializer)
        gv.module = self
        self.globals.append(gv)
        return gv

    def get_global(self, name: str) -> Optional[GlobalVariable]:
        for gv in self.globals:
            if gv.name == name:
                return gv
        return None

    # -- aggregate queries ---------------------------------------------------------
    def instruction_count(self) -> int:
        return sum(f.instruction_count() for f in self.functions)

    def defined_functions(self) -> Iterator[Function]:
        for function in self.functions:
            if not function.is_declaration():
                yield function

    def __repr__(self) -> str:
        return "<Module {} ({} functions, {} globals)>".format(
            self.name, len(self.functions), len(self.globals)
        )
