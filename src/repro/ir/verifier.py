"""IR verifier.

The analyses rely on structural invariants of the IR (blocks end in a
terminator, SSA definitions dominate their uses, φ-functions match their
predecessors).  The verifier checks those invariants and raises
:class:`VerificationError` with a readable message when one is violated;
tests and the frontend run it after building or transforming IR.
"""

from __future__ import annotations

from typing import List

from repro.ir.basicblock import BasicBlock
from repro.ir.dominators import DominatorTree
from repro.ir.function import Function
from repro.ir.instructions import Branch, Instruction, Jump, Phi, Return
from repro.ir.module import Module
from repro.ir.printer import format_instruction
from repro.ir.values import Argument, Constant, GlobalVariable, Value


class VerificationError(Exception):
    """Raised when a module or function violates an IR invariant."""


def _error(message: str) -> None:
    raise VerificationError(message)


def verify_function(function: Function) -> None:
    """Check structural and SSA invariants of ``function``."""
    if function.is_declaration():
        return
    _check_blocks(function)
    _check_operand_scope(function)
    _check_phis(function)
    _check_ssa_dominance(function)
    _check_unique_names(function)


def verify_module(module: Module) -> None:
    for function in module.functions:
        try:
            verify_function(function)
        except VerificationError as exc:
            raise VerificationError("in function @{}: {}".format(function.name, exc)) from exc


def function_problems(function: Function) -> List[str]:
    """Every invariant violation of ``function``, as messages (lint mode).

    Unlike :func:`verify_function` this does not stop at the first problem:
    each check runs independently and contributes at most one message (the
    checks themselves raise on their first finding), so the self-check suite
    (:mod:`repro.verify`) can report per-category diagnostics instead of one
    opaque exception.
    """
    if function.is_declaration():
        return []
    problems: List[str] = []
    for check in (_check_blocks, _check_operand_scope, _check_phis,
                  _check_ssa_dominance, _check_unique_names):
        try:
            check(function)
        except VerificationError as exc:
            problems.append(str(exc))
        except Exception as exc:  # a malformed CFG can break the checkers too
            problems.append("{} crashed: {}".format(check.__name__, exc))
    return problems


# ---------------------------------------------------------------------------
# Individual checks
# ---------------------------------------------------------------------------

def _check_blocks(function: Function) -> None:
    if function.entry_block is None:
        _error("function has no entry block")
    for block in function.blocks:
        if block.parent is not function:
            _error("block {} has a stale parent link".format(block.name))
        if not block.instructions:
            _error("block {} is empty".format(block.name))
        if block.terminator is None:
            _error("block {} does not end in a terminator".format(block.name))
        for inst in block.instructions[:-1]:
            if inst.is_terminator():
                _error("block {} has a terminator in the middle: {}".format(
                    block.name, format_instruction(inst)))
        for inst in block.instructions:
            if inst.parent is not block:
                _error("instruction {} has a stale parent link".format(format_instruction(inst)))
        # Branch targets must belong to this function.
        for succ in block.successors():
            if succ.parent is not function:
                _error("block {} branches to a block of another function".format(block.name))
    entry = function.entry_block
    assert entry is not None
    if entry.predecessors():
        _error("the entry block must not have predecessors")


def _check_operand_scope(function: Function) -> None:
    for inst in function.instructions():
        for operand in inst.operands:
            if isinstance(operand, Constant) or isinstance(operand, GlobalVariable):
                continue
            if isinstance(operand, Argument):
                if operand.function is not function:
                    _error("instruction {} uses an argument of another function".format(
                        format_instruction(inst)))
                continue
            if isinstance(operand, Instruction):
                if operand.function is not function:
                    _error("instruction {} uses a value defined in another function".format(
                        format_instruction(inst)))
                continue
            _error("instruction {} has an operand of unexpected kind {}".format(
                format_instruction(inst), type(operand).__name__))


def _check_phis(function: Function) -> None:
    for block in function.blocks:
        preds = block.predecessors()
        for phi in block.phis():
            incoming_blocks = phi.incoming_blocks
            if len(incoming_blocks) != len(set(id(b) for b in incoming_blocks)):
                _error("phi %{} has duplicate incoming blocks".format(phi.name))
            if set(id(b) for b in incoming_blocks) != set(id(b) for b in preds):
                _error(
                    "phi %{} of block {} does not cover its predecessors "
                    "(has [{}], expected [{}])".format(
                        phi.name, block.name,
                        ", ".join(b.name for b in incoming_blocks),
                        ", ".join(b.name for b in preds),
                    )
                )
            for value, _pred in phi.incoming():
                if value.type != phi.type:
                    _error("phi %{} mixes types {} and {}".format(
                        phi.name, phi.type, value.type))
        # φ-functions must be grouped at the top of the block.
        seen_non_phi = False
        for inst in block.instructions:
            if isinstance(inst, Phi):
                if seen_non_phi:
                    _error("phi %{} appears after a non-phi in block {}".format(
                        inst.name, block.name))
            else:
                seen_non_phi = True


def _check_ssa_dominance(function: Function) -> None:
    domtree = DominatorTree(function)
    for inst in function.instructions():
        for index, operand in enumerate(inst.operands):
            if not isinstance(operand, Instruction):
                continue
            if operand.parent is None:
                _error("instruction {} uses an erased value %{}".format(
                    format_instruction(inst), operand.name))
            if not domtree.value_dominates_use(operand, inst, index):
                _error("definition of %{} does not dominate its use in {}".format(
                    operand.name, format_instruction(inst)))


def _check_unique_names(function: Function) -> None:
    seen = {}
    for value in function.values():
        if not value.name:
            _error("unnamed value {!r}".format(value))
        if value.name in seen:
            _error("duplicate value name %{}".format(value.name))
        seen[value.name] = value
    block_names = [b.name for b in function.blocks]
    if len(block_names) != len(set(block_names)):
        _error("duplicate block names in function @{}".format(function.name))
