"""The type system of the intermediate representation.

The paper's core language manipulates scalars: integers and pointers
(Section 3.1, "Variables have scalar type, e.g., either integer or pointer").
We additionally provide array and function types so that the mini-C frontend
and the synthetic program generator can express realistic programs, and a
boolean type for comparison results.

Types are immutable and structural: two ``PointerType`` instances with the
same pointee compare equal and hash equally, so they can be used freely as
dictionary keys.
"""

from __future__ import annotations

from typing import Tuple


class Type:
    """Base class of all IR types."""

    def is_int(self) -> bool:
        return isinstance(self, IntType)

    def is_bool(self) -> bool:
        return isinstance(self, BoolType)

    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    def is_scalar(self) -> bool:
        """Scalar in the C-standard sense: arithmetic or pointer type."""
        return self.is_int() or self.is_bool() or self.is_pointer()

    def __repr__(self) -> str:
        return "<{} {}>".format(type(self).__name__, self)


class VoidType(Type):
    """The type of instructions that produce no value (e.g. ``store``)."""

    def __str__(self) -> str:
        return "void"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VoidType)

    def __hash__(self) -> int:
        return hash("void")


class IntType(Type):
    """A signed integer of a given bit width (default 64)."""

    __slots__ = ("bits",)

    def __init__(self, bits: int = 64) -> None:
        if bits <= 0:
            raise ValueError("integer width must be positive")
        self.bits = bits

    def __str__(self) -> str:
        return "i{}".format(self.bits)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntType) and other.bits == self.bits

    def __hash__(self) -> int:
        return hash(("int", self.bits))


class BoolType(Type):
    """The result type of comparisons; equivalent to LLVM's ``i1``."""

    def __str__(self) -> str:
        return "i1"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BoolType)

    def __hash__(self) -> int:
        return hash("bool")


class PointerType(Type):
    """A pointer to values of ``pointee`` type."""

    __slots__ = ("pointee",)

    def __init__(self, pointee: Type) -> None:
        if pointee.is_void():
            raise ValueError("pointers to void are not supported; use a byte pointer")
        self.pointee = pointee

    def __str__(self) -> str:
        return "{}*".format(self.pointee)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PointerType) and other.pointee == self.pointee

    def __hash__(self) -> int:
        return hash(("ptr", self.pointee))

    def nesting_depth(self) -> int:
        """Number of pointer levels, e.g. ``int***`` has depth 3."""
        depth = 0
        ty: Type = self
        while isinstance(ty, PointerType):
            depth += 1
            ty = ty.pointee
        return depth


class ArrayType(Type):
    """A fixed-size array of ``count`` elements of ``element`` type."""

    __slots__ = ("element", "count")

    def __init__(self, element: Type, count: int) -> None:
        if count < 0:
            raise ValueError("array size cannot be negative")
        if element.is_void():
            raise ValueError("arrays of void are not supported")
        self.element = element
        self.count = count

    def __str__(self) -> str:
        return "[{} x {}]".format(self.count, self.element)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrayType)
            and other.element == self.element
            and other.count == self.count
        )

    def __hash__(self) -> int:
        return hash(("array", self.element, self.count))


class FunctionType(Type):
    """A function signature: return type plus parameter types."""

    __slots__ = ("return_type", "param_types")

    def __init__(self, return_type: Type, param_types: Tuple[Type, ...]) -> None:
        self.return_type = return_type
        self.param_types = tuple(param_types)

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.param_types)
        return "{} ({})".format(self.return_type, params)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FunctionType)
            and other.return_type == self.return_type
            and other.param_types == self.param_types
        )

    def __hash__(self) -> int:
        return hash(("fn", self.return_type, self.param_types))


# Canonical singletons for the common cases.  ``IntType`` instances compare
# structurally so creating new ones is also fine; these exist for brevity.
VOID = VoidType()
INT = IntType(64)
BOOL = BoolType()


def pointer_to(ty: Type, levels: int = 1) -> PointerType:
    """Wrap ``ty`` in ``levels`` pointer layers (``levels`` must be >= 1)."""
    if levels < 1:
        raise ValueError("levels must be at least 1")
    result: Type = ty
    for _ in range(levels):
        result = PointerType(result)
    assert isinstance(result, PointerType)
    return result
