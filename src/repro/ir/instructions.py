"""Instruction classes of the intermediate representation.

The set of instructions mirrors the subset of LLVM that the paper's analyses
care about:

* integer arithmetic (``add``, ``sub``, ``mul``, ``div``, ``rem``),
* integer comparisons (``icmp``) and conditional/unconditional branches,
* φ-functions,
* memory: ``alloca`` (stack allocation), ``malloc`` (heap allocation),
  ``load``, ``store``,
* ``getelementptr`` for pointer arithmetic (a base pointer plus an index),
* ``copy`` — the parallel copies introduced by the e-SSA transformation
  (live-range splits; they are not real machine instructions and are removed
  before code generation, exactly as the paper describes),
* function ``call`` and ``ret``.

Instructions are also :class:`~repro.ir.values.Value` instances, so the
result of an instruction can be used directly as an operand of another.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.ir.types import BOOL, BoolType, IntType, PointerType, Type, VoidType
from repro.ir.values import Constant, ConstantInt, Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.basicblock import BasicBlock
    from repro.ir.function import Function


class Instruction(Value):
    """Base class of all instructions.

    Operand storage is uniform: ``self._operands`` is a list of values, and
    every mutation goes through :meth:`set_operand` so that use lists stay
    consistent.
    """

    #: mnemonic used by the printer; subclasses override it.
    opcode = "instr"

    def __init__(self, ty: Type, operands: Sequence[Value] = (), name: str = "") -> None:
        super().__init__(ty, name)
        self._operands: List[Value] = []
        self.parent: Optional["BasicBlock"] = None
        for operand in operands:
            self.append_operand(operand)

    # -- operand management --------------------------------------------------
    @property
    def operands(self) -> Tuple[Value, ...]:
        return tuple(self._operands)

    def append_operand(self, value: Value) -> None:
        index = len(self._operands)
        self._operands.append(value)
        value.add_use(self, index)

    def set_operand(self, index: int, value: Value) -> None:
        old = self._operands[index]
        old.remove_use(self, index)
        self._operands[index] = value
        value.add_use(self, index)

    def drop_operands(self) -> None:
        """Detach this instruction from all of its operands' use lists."""
        for index, operand in enumerate(self._operands):
            operand.remove_use(self, index)
        self._operands = []

    def replace_uses_of(self, old: Value, new: Value) -> None:
        for index, operand in enumerate(self._operands):
            if operand is old:
                self.set_operand(index, new)

    # -- structural helpers ---------------------------------------------------
    @property
    def function(self) -> Optional["Function"]:
        return self.parent.parent if self.parent is not None else None

    def is_terminator(self) -> bool:
        return isinstance(self, (Branch, Jump, Return))

    def produces_value(self) -> bool:
        return not isinstance(self.type, VoidType)

    def erase_from_parent(self) -> None:
        """Remove this instruction from its basic block and drop its operands."""
        if self.parent is not None:
            self.parent.remove_instruction(self)
        self.drop_operands()

    def __repr__(self) -> str:
        return "<{} %{}>".format(type(self).__name__, self.short_name())


# ---------------------------------------------------------------------------
# Arithmetic and comparison
# ---------------------------------------------------------------------------

class BinaryOp(Instruction):
    """Integer arithmetic: ``add``, ``sub``, ``mul``, ``div``, ``rem``."""

    VALID_OPS = ("add", "sub", "mul", "div", "rem")

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if op not in self.VALID_OPS:
            raise ValueError("unknown binary operator: {!r}".format(op))
        super().__init__(lhs.type, (lhs, rhs), name)
        self.op = op

    @property
    def opcode(self) -> str:  # type: ignore[override]
        return self.op

    @property
    def lhs(self) -> Value:
        return self._operands[0]

    @property
    def rhs(self) -> Value:
        return self._operands[1]

    def constant_operand(self) -> Optional[ConstantInt]:
        """Return the constant operand if exactly one operand is a constant."""
        lhs_const = isinstance(self.lhs, ConstantInt)
        rhs_const = isinstance(self.rhs, ConstantInt)
        if lhs_const and not rhs_const:
            return self.lhs  # type: ignore[return-value]
        if rhs_const and not lhs_const:
            return self.rhs  # type: ignore[return-value]
        return None


class ICmp(Instruction):
    """Integer / pointer comparison producing a boolean.

    Predicates follow LLVM: ``eq``, ``ne``, ``slt``, ``sle``, ``sgt``, ``sge``.
    """

    VALID_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge")

    #: predicate obtained by swapping the operands
    SWAPPED: Dict[str, str] = {
        "eq": "eq",
        "ne": "ne",
        "slt": "sgt",
        "sle": "sge",
        "sgt": "slt",
        "sge": "sle",
    }

    #: predicate that holds on the false branch (negation)
    NEGATED: Dict[str, str] = {
        "eq": "ne",
        "ne": "eq",
        "slt": "sge",
        "sle": "sgt",
        "sgt": "sle",
        "sge": "slt",
    }

    opcode = "icmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if predicate not in self.VALID_PREDICATES:
            raise ValueError("unknown icmp predicate: {!r}".format(predicate))
        super().__init__(BOOL, (lhs, rhs), name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self._operands[0]

    @property
    def rhs(self) -> Value:
        return self._operands[1]


# ---------------------------------------------------------------------------
# Control flow
# ---------------------------------------------------------------------------

class Jump(Instruction):
    """Unconditional branch to a single successor block."""

    opcode = "br"

    def __init__(self, target: "BasicBlock") -> None:
        super().__init__(VoidType(), ())
        self.target = target

    def successors(self) -> List["BasicBlock"]:
        return [self.target]

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self.target is old:
            self.target = new


class Branch(Instruction):
    """Conditional branch: ``br cond, true_block, false_block``."""

    opcode = "br"

    def __init__(self, condition: Value, true_block: "BasicBlock", false_block: "BasicBlock") -> None:
        super().__init__(VoidType(), (condition,))
        self.true_block = true_block
        self.false_block = false_block

    @property
    def condition(self) -> Value:
        return self._operands[0]

    def successors(self) -> List["BasicBlock"]:
        return [self.true_block, self.false_block]

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self.true_block is old:
            self.true_block = new
        if self.false_block is old:
            self.false_block = new


class Return(Instruction):
    """Return from the current function, optionally with a value."""

    opcode = "ret"

    def __init__(self, value: Optional[Value] = None) -> None:
        operands = (value,) if value is not None else ()
        super().__init__(VoidType(), operands)

    @property
    def value(self) -> Optional[Value]:
        return self._operands[0] if self._operands else None

    def successors(self) -> List["BasicBlock"]:
        return []


class Phi(Instruction):
    """SSA φ-function: selects a value according to the incoming CFG edge."""

    opcode = "phi"

    def __init__(self, ty: Type, name: str = "") -> None:
        super().__init__(ty, (), name)
        self.incoming_blocks: List["BasicBlock"] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        self.append_operand(value)
        self.incoming_blocks.append(block)

    def incoming(self) -> List[Tuple[Value, "BasicBlock"]]:
        return list(zip(self._operands, self.incoming_blocks))

    def incoming_value_for(self, block: "BasicBlock") -> Optional[Value]:
        for value, pred in self.incoming():
            if pred is block:
                return value
        return None

    def remove_incoming(self, block: "BasicBlock") -> None:
        """Drop the incoming entry for ``block`` (no effect if absent)."""
        for i, pred in enumerate(self.incoming_blocks):
            if pred is block:
                # Rebuild operand list without index i.
                values = [v for j, v in enumerate(self._operands) if j != i]
                self.drop_operands()
                for v in values:
                    self.append_operand(v)
                del self.incoming_blocks[i]
                return


# ---------------------------------------------------------------------------
# Memory
# ---------------------------------------------------------------------------

class Alloca(Instruction):
    """Stack allocation of one object of ``allocated_type``.

    The result is a pointer to the allocated storage.  Each ``alloca`` is a
    distinct allocation site, which the basic alias analysis exploits.
    """

    opcode = "alloca"

    def __init__(self, allocated_type: Type, name: str = "",
                 array_size: Optional[Value] = None) -> None:
        operands = (array_size,) if array_size is not None else ()
        super().__init__(PointerType(allocated_type), operands, name)
        self.allocated_type = allocated_type

    @property
    def array_size(self) -> Optional[Value]:
        return self._operands[0] if self._operands else None


class Malloc(Instruction):
    """Heap allocation returning a fresh object of ``allocated_type``.

    Modelled as its own instruction (rather than a call) so that allocation
    sites are first-class, as they are for LLVM's ``noalias`` return
    attributes on allocation functions.
    """

    opcode = "malloc"

    def __init__(self, allocated_type: Type, size: Optional[Value] = None, name: str = "") -> None:
        operands = (size,) if size is not None else ()
        super().__init__(PointerType(allocated_type), operands, name)
        self.allocated_type = allocated_type

    @property
    def size(self) -> Optional[Value]:
        return self._operands[0] if self._operands else None


class Load(Instruction):
    """Read the value stored at ``pointer``."""

    opcode = "load"

    def __init__(self, pointer: Value, name: str = "") -> None:
        if not isinstance(pointer.type, PointerType):
            raise TypeError("load requires a pointer operand, got {}".format(pointer.type))
        super().__init__(pointer.type.pointee, (pointer,), name)

    @property
    def pointer(self) -> Value:
        return self._operands[0]


class Store(Instruction):
    """Write ``value`` to the location designated by ``pointer``."""

    opcode = "store"

    def __init__(self, value: Value, pointer: Value) -> None:
        if not isinstance(pointer.type, PointerType):
            raise TypeError("store requires a pointer operand, got {}".format(pointer.type))
        super().__init__(VoidType(), (value, pointer))

    @property
    def value(self) -> Value:
        return self._operands[0]

    @property
    def pointer(self) -> Value:
        return self._operands[1]


class GetElementPtr(Instruction):
    """Pointer arithmetic: ``result = base + index`` (in elements).

    This models the common single-index form of LLVM's ``getelementptr``:
    the result is a *derived pointer* obtained by offsetting ``base`` by
    ``index`` elements.  Definition 3.11(2) of the paper compares derived
    pointers through the less-than sets of their indices.
    """

    opcode = "gep"

    def __init__(self, base: Value, index: Value, name: str = "") -> None:
        if not isinstance(base.type, PointerType):
            raise TypeError("gep requires a pointer base, got {}".format(base.type))
        super().__init__(base.type, (base, index), name)

    @property
    def base(self) -> Value:
        return self._operands[0]

    @property
    def index(self) -> Value:
        return self._operands[1]

    def constant_index(self) -> Optional[int]:
        index = self.index
        if isinstance(index, ConstantInt):
            return index.value
        return None


# ---------------------------------------------------------------------------
# Copies, calls
# ---------------------------------------------------------------------------

class Copy(Instruction):
    """``x' = x`` — a live-range split introduced by the e-SSA transformation.

    The ``kind`` attribute records why the copy exists: ``"sigma"`` for
    copies placed at the outgoing edges of a conditional branch, ``"split"``
    for copies placed next to subtractions, and ``"plain"`` otherwise.
    """

    opcode = "copy"

    def __init__(self, source: Value, name: str = "", kind: str = "plain") -> None:
        super().__init__(source.type, (source,), name)
        self.kind = kind

    @property
    def source(self) -> Value:
        return self._operands[0]


class Call(Instruction):
    """Direct call to another function in the module."""

    opcode = "call"

    def __init__(self, callee: "Function", args: Iterable[Value], name: str = "") -> None:
        args = tuple(args)
        super().__init__(callee.return_type, args, name)
        self.callee = callee

    @property
    def arguments(self) -> Tuple[Value, ...]:
        return self.operands
