"""Live-variable analysis.

The disambiguation guarantee of the paper (Corollary 3.10) is phrased in
terms of variables that are *simultaneously alive*: if ``xi`` is in
``LT(xj)`` then ``xi < xj`` at every program point where both are alive.
This module computes block-level live-in/live-out sets by the standard
backward dataflow, plus the instruction-level queries the alias analysis and
the tests need (is a value live at a given instruction, do two values
interfere).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.ir.basicblock import BasicBlock
from repro.ir.cfg import ControlFlowGraph
from repro.ir.function import Function
from repro.ir.instructions import Instruction, Phi
from repro.ir.values import Argument, Constant, Value


def _is_tracked(value: Value) -> bool:
    """Only SSA variables (arguments and instruction results) have live ranges."""
    return isinstance(value, (Argument, Instruction)) and not isinstance(value, Constant)


class LivenessInfo:
    """Live-in and live-out sets for every block of one function."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self.cfg = ControlFlowGraph(function)
        self.live_in: Dict[BasicBlock, Set[Value]] = {}
        self.live_out: Dict[BasicBlock, Set[Value]] = {}
        self._use: Dict[BasicBlock, Set[Value]] = {}
        self._def: Dict[BasicBlock, Set[Value]] = {}
        self._phi_uses_by_pred: Dict[BasicBlock, Set[Value]] = {}
        self._compute_local_sets()
        self._solve()

    # -- local (per-block) sets ---------------------------------------------------
    def _compute_local_sets(self) -> None:
        for block in self.function.blocks:
            uses: Set[Value] = set()
            defs: Set[Value] = set()
            for inst in block.instructions:
                if isinstance(inst, Phi):
                    # φ-operands are live at the end of the corresponding
                    # predecessor, not at the top of this block.
                    for value, pred in inst.incoming():
                        if _is_tracked(value):
                            self._phi_uses_by_pred.setdefault(pred, set()).add(value)
                else:
                    for operand in inst.operands:
                        if _is_tracked(operand) and operand not in defs:
                            uses.add(operand)
                if inst.produces_value():
                    defs.add(inst)
            self._use[block] = uses
            self._def[block] = defs

    def _solve(self) -> None:
        blocks = self.function.blocks
        self.live_in = {b: set() for b in blocks}
        self.live_out = {b: set() for b in blocks}
        changed = True
        while changed:
            changed = False
            for block in reversed(blocks):
                out: Set[Value] = set(self._phi_uses_by_pred.get(block, set()))
                for succ in self.cfg.succs(block):
                    out |= self.live_in[succ]
                new_in = self._use[block] | (out - self._def[block])
                if out != self.live_out[block] or new_in != self.live_in[block]:
                    self.live_out[block] = out
                    self.live_in[block] = new_in
                    changed = True

    # -- queries --------------------------------------------------------------------
    def is_live_in(self, value: Value, block: BasicBlock) -> bool:
        return value in self.live_in.get(block, set())

    def is_live_out(self, value: Value, block: BasicBlock) -> bool:
        return value in self.live_out.get(block, set())

    def live_at(self, point: Instruction) -> Set[Value]:
        """Values live immediately *before* instruction ``point``.

        Computed by walking the containing block backwards from its end.
        """
        block = point.parent
        if block is None:
            raise ValueError("instruction is not attached to a block")
        live: Set[Value] = set(self.live_out[block])
        instructions = block.instructions
        index = instructions.index(point)
        for inst in reversed(instructions[index:]):
            if inst.produces_value():
                live.discard(inst)
            if isinstance(inst, Phi):
                continue
            for operand in inst.operands:
                if _is_tracked(operand):
                    live.add(operand)
        # Arguments are live from the function entry; a definition earlier in
        # this block that has uses after `point` is already captured above.
        return live

    def definition_block(self, value: Value) -> BasicBlock:
        if isinstance(value, Argument):
            entry = self.function.entry_block
            if entry is None:
                raise ValueError("function has no entry block")
            return entry
        if isinstance(value, Instruction) and value.parent is not None:
            return value.parent
        raise ValueError("value {} has no definition block".format(value))

    def simultaneously_live(self, a: Value, b: Value) -> bool:
        """Conservative interference test for two SSA values.

        In strict SSA form two variables interfere iff one is live at the
        definition point of the other (Budimlic et al.).  Constants never
        interfere.
        """
        if not _is_tracked(a) or not _is_tracked(b):
            return False
        if a is b:
            return True
        for first, second in ((a, b), (b, a)):
            if isinstance(second, Instruction) and second.parent is not None:
                if first in self.live_at(second):
                    return True
            elif isinstance(second, Argument):
                # Arguments are defined at the entry; anything live at entry
                # together with them interferes.
                entry = self.function.entry_block
                if entry is not None and entry.instructions:
                    if first in self.live_at(entry.instructions[0]):
                        return True
        return False

    def live_values(self) -> Set[Value]:
        """Every value that is live-in or live-out of some block."""
        result: Set[Value] = set()
        for block in self.function.blocks:
            result |= self.live_in[block]
            result |= self.live_out[block]
        return result
