"""SSA construction (mem2reg).

The mini-C frontend lowers local variables to ``alloca`` slots accessed with
``load``/``store``.  This pass promotes those slots to SSA registers using
the classic Cytron et al. algorithm: φ-functions are inserted at the
iterated dominance frontier of the blocks that store to a slot, then a
renaming walk over the dominator tree replaces loads with the reaching
definition.

Only promotable allocas are touched: scalar-typed slots whose address is
used exclusively by loads and stores (never stored itself, never passed to a
call, never offset with ``gep``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.basicblock import BasicBlock
from repro.ir.dominators import DominatorTree
from repro.ir.function import Function
from repro.ir.instructions import Alloca, Instruction, Load, Phi, Store
from repro.ir.values import Undef, Value
from repro.obs import TRACER


def promotable_allocas(function: Function) -> List[Alloca]:
    """Return the allocas of ``function`` that can be promoted to SSA values."""
    result: List[Alloca] = []
    for inst in function.instructions():
        if not isinstance(inst, Alloca):
            continue
        if inst.array_size is not None:
            continue
        if not inst.allocated_type.is_scalar():
            continue
        promotable = True
        for use in inst.uses:
            user = use.user
            if isinstance(user, Load):
                continue
            if isinstance(user, Store) and user.pointer is inst and user.value is not inst:
                continue
            promotable = False
            break
        if promotable:
            result.append(inst)
    return result


def promote_memory_to_registers(function: Function) -> int:
    """Run mem2reg on ``function``; return the number of promoted allocas."""
    if function.is_declaration():
        return 0
    allocas = promotable_allocas(function)
    if not allocas:
        return 0
    with TRACER.span("ir.mem2reg", fn=function.name, allocas=len(allocas)):
        domtree = DominatorTree(function)
        for alloca in allocas:
            _promote_single(function, alloca, domtree)
    return len(allocas)


def _promote_single(function: Function, alloca: Alloca, domtree: DominatorTree) -> None:
    value_type = alloca.allocated_type
    defining_blocks: Set[BasicBlock] = set()
    for use in alloca.uses:
        user = use.user
        if isinstance(user, Store) and user.parent is not None:
            defining_blocks.add(user.parent)

    # Sets of blocks hash by identity, so their iteration order varies from
    # run to run; ordering by position in the function keeps φ insertion (and
    # hence value numbering and all downstream analyses) deterministic.
    block_order = {block: index for index, block in enumerate(function.blocks)}

    # 1. Insert φ-functions at the iterated dominance frontier.
    phi_blocks: Set[BasicBlock] = set()
    worklist = sorted(defining_blocks, key=block_order.get)
    inserted: Dict[BasicBlock, Phi] = {}
    while worklist:
        block = worklist.pop()
        for frontier_block in sorted(domtree.dominance_frontier(block),
                                     key=block_order.get):
            if frontier_block in phi_blocks:
                continue
            phi_blocks.add(frontier_block)
            phi = Phi(value_type, "")
            frontier_block.insert(0, phi)
            inserted[frontier_block] = phi
            if frontier_block not in defining_blocks:
                worklist.append(frontier_block)

    # 2. Rename along the dominator tree.
    def rename(block: BasicBlock, incoming: Optional[Value]) -> None:
        current = incoming
        if block in inserted:
            current = inserted[block]
        for inst in list(block.instructions):
            if isinstance(inst, Load) and inst.pointer is alloca:
                replacement = current if current is not None else Undef(value_type)
                inst.replace_all_uses_with(replacement)
                inst.erase_from_parent()
            elif isinstance(inst, Store) and inst.pointer is alloca:
                current = inst.value
                inst.erase_from_parent()
        for succ in block.successors():
            phi = inserted.get(succ)
            if phi is not None:
                phi.add_incoming(current if current is not None else Undef(value_type), block)
        for child in domtree.children.get(block, []):
            rename(child, current)

    entry = function.entry_block
    assert entry is not None
    rename(entry, None)

    # 3. The alloca itself is now dead.
    alloca.erase_from_parent()

    # 4. Prune φ-functions whose incoming list misses some predecessors
    #    (possible when a predecessor was unreachable) by filling with Undef.
    for block, phi in inserted.items():
        preds = block.predecessors()
        covered = {id(b) for b in phi.incoming_blocks}
        for pred in preds:
            if id(pred) not in covered:
                phi.add_incoming(Undef(value_type), pred)
