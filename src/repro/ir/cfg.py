"""Control-flow graph utilities.

Blocks compute successors from their terminators; this module adds the
derived views that analyses want: cached predecessor maps, reverse postorder,
reachability and simple CFG edits (edge splitting), which the e-SSA transform
uses to place σ-copies on critical edges.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Branch, Jump, Phi


class ControlFlowGraph:
    """A snapshot of the CFG of a function with cached adjacency."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self.successors: Dict[BasicBlock, List[BasicBlock]] = {}
        self.predecessors: Dict[BasicBlock, List[BasicBlock]] = {}
        for block in function.blocks:
            self.successors[block] = list(block.successors())
            self.predecessors.setdefault(block, [])
        for block in function.blocks:
            for succ in self.successors[block]:
                self.predecessors.setdefault(succ, []).append(block)

    def preds(self, block: BasicBlock) -> List[BasicBlock]:
        return self.predecessors.get(block, [])

    def succs(self, block: BasicBlock) -> List[BasicBlock]:
        return self.successors.get(block, [])

    def edges(self) -> List[tuple]:
        return [(b, s) for b in self.function.blocks for s in self.succs(b)]


def reverse_postorder(function: Function) -> List[BasicBlock]:
    """Blocks in reverse postorder of a DFS from the entry block.

    Unreachable blocks are appended at the end in their textual order so that
    analyses still visit every block.
    """
    entry = function.entry_block
    if entry is None:
        return []
    visited: Set[BasicBlock] = set()
    postorder: List[BasicBlock] = []

    def dfs(block: BasicBlock) -> None:
        visited.add(block)
        for succ in block.successors():
            if succ not in visited:
                dfs(succ)
        postorder.append(block)

    dfs(entry)
    order = list(reversed(postorder))
    for block in function.blocks:
        if block not in visited:
            order.append(block)
    return order


def postorder(function: Function) -> List[BasicBlock]:
    return list(reversed(reverse_postorder(function)))


def reachable_blocks(function: Function) -> Set[BasicBlock]:
    """The set of blocks reachable from the entry."""
    entry = function.entry_block
    if entry is None:
        return set()
    seen: Set[BasicBlock] = {entry}
    stack = [entry]
    while stack:
        block = stack.pop()
        for succ in block.successors():
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen


def remove_unreachable_blocks(function: Function) -> int:
    """Delete blocks not reachable from the entry.  Returns how many."""
    reachable = reachable_blocks(function)
    dead = [b for b in function.blocks if b not in reachable]
    for block in dead:
        # Fix up phis of reachable successors.
        for succ in block.successors():
            if succ in reachable:
                for phi in succ.phis():
                    phi.remove_incoming(block)
        for inst in list(block.instructions):
            inst.erase_from_parent()
        function.remove_block(block)
    return len(dead)


def split_critical_edge(pred: BasicBlock, succ: BasicBlock) -> Optional[BasicBlock]:
    """Insert a new block on the edge ``pred -> succ`` if it is critical.

    An edge is critical when ``pred`` has several successors and ``succ`` has
    several predecessors.  Returns the inserted block, or ``None`` when the
    edge was not critical (in which case nothing is changed).
    """
    if len(pred.successors()) < 2 or len(succ.predecessors()) < 2:
        return None
    function = pred.parent
    if function is None:
        raise ValueError("cannot split an edge of a detached block")
    middle = function.append_block(name=function.next_block_name("split"))
    middle.append(Jump(succ))
    terminator = pred.terminator
    if isinstance(terminator, (Branch, Jump)):
        terminator.replace_successor(succ, middle)
    for phi in succ.phis():
        for i, incoming in enumerate(phi.incoming_blocks):
            if incoming is pred:
                phi.incoming_blocks[i] = middle
    return middle


def has_single_predecessor(block: BasicBlock) -> bool:
    return len(block.predecessors()) == 1
