"""Values: the SSA entities that instructions consume and produce.

Every operand of an instruction is a :class:`Value`.  Values track their
uses, which gives the analyses cheap access to def-use chains and lets
transformation passes (e-SSA construction, SSA destruction) rewrite operands
with ``replace_all_uses_with``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

from repro.ir.types import IntType, PointerType, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.ir.instructions import Instruction


class Use:
    """A single (user, operand index) pair recording one use of a value."""

    __slots__ = ("user", "index")

    def __init__(self, user: "Instruction", index: int) -> None:
        self.user = user
        self.index = index

    def __repr__(self) -> str:
        return "Use({!r}, {})".format(getattr(self.user, "name", self.user), self.index)


class Value:
    """Base class for everything that can appear as an operand.

    Parameters
    ----------
    ty:
        The type of the value.
    name:
        An optional textual name.  Instructions get unique names when they
        are inserted into a function.
    """

    def __init__(self, ty: Type, name: str = "") -> None:
        self.type = ty
        self.name = name
        self.uses: List[Use] = []

    # -- use bookkeeping ----------------------------------------------------
    def add_use(self, user: "Instruction", index: int) -> None:
        self.uses.append(Use(user, index))

    def remove_use(self, user: "Instruction", index: int) -> None:
        for i, use in enumerate(self.uses):
            if use.user is user and use.index == index:
                del self.uses[i]
                return

    def users(self) -> Iterator["Instruction"]:
        """Iterate over the instructions that use this value (with repeats)."""
        for use in self.uses:
            yield use.user

    def replace_all_uses_with(self, other: "Value") -> None:
        """Rewrite every use of ``self`` to use ``other`` instead."""
        if other is self:
            return
        for use in list(self.uses):
            use.user.set_operand(use.index, other)

    # -- classification helpers ---------------------------------------------
    def is_constant(self) -> bool:
        return isinstance(self, Constant)

    def is_pointer(self) -> bool:
        return self.type.is_pointer()

    def is_integer(self) -> bool:
        return self.type.is_int()

    def short_name(self) -> str:
        return self.name if self.name else "<unnamed>"

    def __repr__(self) -> str:
        return "<{} {}:{}>".format(type(self).__name__, self.short_name(), self.type)


class Constant(Value):
    """Base class for compile-time constants."""


class ConstantInt(Constant):
    """An integer literal."""

    def __init__(self, value: int, ty: Optional[Type] = None) -> None:
        super().__init__(ty if ty is not None else IntType(64), name=str(value))
        self.value = int(value)

    def __repr__(self) -> str:
        return "<ConstantInt {}>".format(self.value)


class NullPointer(Constant):
    """The null pointer constant of a given pointer type."""

    def __init__(self, ty: PointerType) -> None:
        super().__init__(ty, name="null")


class Undef(Constant):
    """An undefined value, used by SSA construction for uninitialised reads."""

    def __init__(self, ty: Type) -> None:
        super().__init__(ty, name="undef")


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, ty: Type, name: str, index: int) -> None:
        super().__init__(ty, name)
        self.index = index
        self.function = None  # set by Function

    def __repr__(self) -> str:
        return "<Argument %{}:{}>".format(self.name, self.type)


class GlobalVariable(Value):
    """A module-level variable.  Its value is the *address* of the storage.

    ``value_type`` is the type of the stored object; the type of the global
    as a value is a pointer to it, matching LLVM semantics.
    """

    def __init__(self, value_type: Type, name: str, initializer: Optional[Constant] = None) -> None:
        super().__init__(PointerType(value_type), name)
        self.value_type = value_type
        self.initializer = initializer
        self.module = None  # set by Module

    def __repr__(self) -> str:
        return "<GlobalVariable @{}:{}>".format(self.name, self.type)


def constant_int_value(value: Value) -> Optional[int]:
    """Return the integer payload if ``value`` is a ``ConstantInt``, else None."""
    if isinstance(value, ConstantInt):
        return value.value
    return None


def operands_signature(values: Tuple[Value, ...]) -> str:
    """Human-readable rendering of a tuple of operands (used in error text)."""
    return ", ".join(v.short_name() for v in values)
