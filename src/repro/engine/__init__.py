"""The sharded cross-process evaluation engine.

The paper's evaluation methodology issues O(n²) alias queries over every
function of every benchmark program; PR 1 made per-function work cheap and
self-contained (:class:`~repro.passes.FunctionAnalysisCache`), and this
package scales it out:

* :mod:`repro.engine.workunit` — picklable :class:`WorkUnit` descriptions
  plus a deterministic LPT :class:`Scheduler` that shards a module's
  functions or whole workload program lists;
* :mod:`repro.engine.worker` — the per-process job runner (compile the
  unit's source deterministically, evaluate its shard, return picklable
  verdict/statistics payloads);
* :mod:`repro.engine.store` — the persistent :class:`AnalysisStore`
  (sqlite, pickle fallback) content-addressed by IR text hashes with
  versioned invalidation, so repeated runs skip analysis entirely;
* :mod:`repro.engine.driver` — the coordinator internals plus the legacy
  module-level entry points (:func:`run_workload`,
  :func:`evaluate_module_parallel`, :func:`evaluate_module`), kept as thin
  deprecation shims over :class:`repro.api.session.Session`; configuration
  resolves through :class:`repro.api.config.ReproConfig` (explicit argument
  > config field > ``REPRO_*`` environment variable > default), with a
  serial in-process fallback.

Every path — serial, sharded, store-warmed — produces bit-identical
per-pair verdicts; the engine records the verdict streams precisely so that
this can be asserted, not assumed.
"""

from repro.engine.store import (
    AnalysisStore,
    STORE_VERSION,
    default_store_max_bytes,
    function_key,
    text_hash,
)
from repro.engine.workunit import DEFAULT_SPECS, Scheduler, WorkUnit, spec_label
from repro.engine.worker import (
    build_analysis,
    evaluate_module_functions,
    run_work_unit,
)
from repro.engine.driver import (
    UnitResult,
    default_store_path,
    default_workers,
    evaluate_module,
    evaluate_module_parallel,
    run_workload,
)

__all__ = [
    "AnalysisStore",
    "STORE_VERSION",
    "default_store_max_bytes",
    "function_key",
    "text_hash",
    "DEFAULT_SPECS",
    "Scheduler",
    "WorkUnit",
    "spec_label",
    "build_analysis",
    "evaluate_module_functions",
    "run_work_unit",
    "UnitResult",
    "default_store_path",
    "default_workers",
    "evaluate_module",
    "evaluate_module_parallel",
    "run_workload",
]
