"""The persistent analysis store of the execution engine.

``aa-eval`` results are a pure function of the compiled IR: the frontend,
mem2reg and the e-SSA conversion are deterministic, so the same source text
always produces bit-identical IR and bit-identical verdicts.  The
:class:`AnalysisStore` exploits that to persist per-function evaluation
payloads *across processes and across runs*: entries are keyed by a content
hash of the function's (pre-conversion) IR text — plus a call-graph-aware
fingerprint of exactly the module slice the analysis can observe (see
:mod:`repro.ir.callgraph`), so editing one function leaves every unrelated
function's entries warm — and a warm store lets repeated benchmark runs
skip the analysis pipeline entirely.

Two backends provide the same mapping interface:

* **sqlite** (the default) — one file, safe concurrent readers, single
  writer (the coordinator); schema::

      meta(key TEXT PRIMARY KEY, value TEXT)        -- 'version' row
      entries(key TEXT PRIMARY KEY, payload BLOB)   -- pickled payload

* **pickle** — a plain pickled dict, for environments without ``sqlite3``
  (or when the store path ends in ``.pkl`` /
  ``REPRO_STORE_BACKEND=pickle``); written atomically via ``os.replace``.

Invalidation is versioned: the store records a version string
(:data:`STORE_VERSION`, bumped whenever analysis semantics change) and
clears itself on mismatch, so stale results can never leak into a run of
newer code.  Workers open the store read-only; freshly computed payloads
travel back to the coordinator inside the shard result and are written by
the coordinator alone, which keeps the writer count at one.

Growth is managed: every entry records its pickled size and the store
*generation* it was written in (the generation counter advances on each
writable open), so long-lived stores can be swept with
:meth:`AnalysisStore.evict` — oldest generations go first, deterministically
— down to a byte budget.  Set ``REPRO_STORE_MAX_MB`` to have every write
batch enforce the budget automatically.

Eviction approximates **LRU**, not FIFO: a lookup that hits *touches* the
entry, promoting it to the store's current generation, so hot entries
survive sweeps that reclaim cold ones.  A writable store touches directly
(buffered, flushed before any sweep or at close); a read-only store — the
worker side of the engine's single-writer protocol — records the hit keys
in :attr:`AnalysisStore.touched_keys`, which travel back to the
coordinator inside the shard payload and are applied there with
:meth:`AnalysisStore.touch_many`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.api.config import resolved_store_backend, resolved_store_max_bytes

try:  # pragma: no cover - sqlite3 is in the stdlib virtually everywhere
    import sqlite3
except ImportError:  # pragma: no cover
    sqlite3 = None

#: bump when the analysis pipeline's semantics or the key derivation change
#: in a way that makes previously persisted entries stale or unreachable.
#: v2: function-level keys encode the interprocedural mode.
#: v3: entries carry generation and size columns (growth management).
#: v4: persisted statistics payloads carry solver (SolverInfo) counters.
#: v5: function-level keys fold a call-graph-aware *fingerprint* (dependency
#:     or reachable-region, see repro.ir.callgraph) instead of the whole
#:     module's text hash, and unit keys NUL-separate each label.  Migration:
#:     ``aaeval-4`` stores are cleared on the first writable open (their
#:     entries are unreachable under the new derivation anyway); read-only
#:     opens of an old store miss cleanly on every lookup, no crash.
STORE_VERSION = "aaeval-5"


def default_store_max_bytes() -> Optional[int]:
    """The configured byte budget (``None`` = unbounded).

    Resolution — active :class:`~repro.api.config.ReproConfig` first, the
    ``REPRO_STORE_MAX_MB`` environment variable second — lives in
    :mod:`repro.api.config`; invalid values raise
    :class:`~repro.api.config.ConfigError` there.
    """
    return resolved_store_max_bytes()


def function_key(label: str, function_text: str, fingerprint: str = "") -> str:
    """Content-address one ``(analysis label, function)`` evaluation.

    ``fingerprint`` ties the entry to exactly the slice of the module the
    analysis can observe (see :mod:`repro.ir.callgraph`): the reachable-region
    fingerprint for interprocedural less-than specs (facts flow caller →
    callee, so only the function and its transitive callers matter), the
    dependency fingerprint for intraprocedural specs, or the whole module's
    :func:`text_hash` for module-global analyses (Andersen/Steensgaard unify
    state across every function).  Editing a function now misses only the
    entries whose fingerprint actually covers it.
    """
    digest = hashlib.sha256()
    digest.update(label.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(function_text.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(fingerprint.encode("utf-8"))
    return digest.hexdigest()


def text_hash(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def unit_key(kind: str, name: str, source: str, labels: Sequence[str],
             interprocedural: bool) -> str:
    """Content-address a whole work unit's payload by its *source text*.

    The frontend is deterministic, so the source uniquely determines the IR
    and hence every verdict.  Unit-level entries sit on top of the
    function-level ones as a memo of the merged payload: a fully warm unit
    is answered before compilation even starts, which is what lets repeated
    benchmark runs skip the analysis pipeline entirely.  Function-level
    entries (keyed by IR text via :func:`function_key`) remain the ground
    truth and are what partial warm runs draw from.
    """
    digest = hashlib.sha256()
    # Each label is digested separately (NUL-terminated, like function_key)
    # rather than pre-joined with a printable separator: a joined string
    # cannot distinguish ["a|b"] from ["a", "b"] once a label contains the
    # separator character.
    parts: List[str] = [kind, name, source]
    parts.extend(labels)
    parts.append("ip" if interprocedural else "fn")
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return "unit-" + digest.hexdigest()


class _SqliteBackend:
    """One sqlite file; readers may be concurrent, the writer is single."""

    name = "sqlite"

    def __init__(self, path: str, readonly: bool = False) -> None:
        self.path = path
        self.readonly = readonly
        if readonly:
            # Missing file in read-only mode: behave as an empty store
            # instead of creating one (workers race benchmark start-up).
            if not os.path.exists(path):
                self._connection = None
                return
            uri = "file:{}?mode=ro".format(path.replace("?", "%3f").replace("#", "%23"))
            self._connection = sqlite3.connect(uri, uri=True)
            return
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._connection = sqlite3.connect(path)
        self._connection.execute(
            "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)")
        # Pre-v3 stores lack the generation/size columns; the version bump
        # would clear them anyway, so the old table is simply dropped.
        columns = [row[1] for row in
                   self._connection.execute("PRAGMA table_info(entries)")]
        if columns and "generation" not in columns:
            self._connection.execute("DROP TABLE entries")
        self._connection.execute(
            "CREATE TABLE IF NOT EXISTS entries ("
            "key TEXT PRIMARY KEY, payload BLOB, "
            "generation INTEGER NOT NULL DEFAULT 0, "
            "size INTEGER NOT NULL DEFAULT 0)")
        self._connection.commit()

    def get_meta(self, key: str) -> Optional[str]:
        if self._connection is None:
            return None
        try:
            row = self._connection.execute(
                "SELECT value FROM meta WHERE key = ?", (key,)).fetchone()
        except sqlite3.OperationalError:  # read-only store without schema
            return None
        return row[0] if row else None

    def set_meta(self, key: str, value: str) -> None:
        self._connection.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)", (key, value))
        self._connection.commit()

    def get(self, key: str) -> Optional[bytes]:
        if self._connection is None:
            return None
        try:
            row = self._connection.execute(
                "SELECT payload FROM entries WHERE key = ?", (key,)).fetchone()
        except sqlite3.OperationalError:
            return None
        return bytes(row[0]) if row else None

    def put_many(self, items: Iterable[Tuple[str, bytes, int]]) -> None:
        self._connection.executemany(
            "INSERT OR REPLACE INTO entries (key, payload, generation, size) "
            "VALUES (?, ?, ?, ?)",
            [(key, blob, generation, len(blob))
             for key, blob, generation in items])
        self._connection.commit()

    def keys(self) -> List[str]:
        if self._connection is None:
            return []
        try:
            return [row[0] for row in
                    self._connection.execute("SELECT key FROM entries")]
        except sqlite3.OperationalError:
            return []

    def size_bytes(self) -> int:
        if self._connection is None:
            return 0
        try:
            row = self._connection.execute(
                "SELECT COALESCE(SUM(size), 0) FROM entries").fetchone()
        except sqlite3.OperationalError:
            return 0
        return int(row[0])

    def entry_info(self) -> List[Tuple[str, int, int]]:
        """``(key, generation, size)`` triples, oldest generation first."""
        if self._connection is None:
            return []
        try:
            return [(row[0], int(row[1]), int(row[2])) for row in
                    self._connection.execute(
                        "SELECT key, generation, size FROM entries "
                        "ORDER BY generation, key")]
        except sqlite3.OperationalError:
            return []

    def delete_many(self, keys: Sequence[str]) -> None:
        self._connection.executemany(
            "DELETE FROM entries WHERE key = ?", [(key,) for key in keys])
        self._connection.commit()

    def touch_many(self, keys: Sequence[str], generation: int) -> None:
        """Promote ``keys`` to ``generation`` (missing keys are no-ops)."""
        self._connection.executemany(
            "UPDATE entries SET generation = ? WHERE key = ?",
            [(generation, key) for key in keys])
        self._connection.commit()

    def clear(self) -> None:
        self._connection.execute("DELETE FROM entries")
        self._connection.commit()

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None


class _PickleBackend:
    """A pickled ``{meta: ..., entries: ...}`` dict, replaced atomically.

    Entry values are ``(blob, generation)`` pairs; pre-v3 files holding bare
    blobs are coerced to generation 0 on load (the version bump clears them
    anyway).
    """

    name = "pickle"

    def __init__(self, path: str, readonly: bool = False) -> None:
        self.path = path
        self.readonly = readonly
        self._dirty = False
        self._meta: Dict[str, str] = {}
        self._entries: Dict[str, Tuple[bytes, int]] = {}
        # A zero-byte file (touch(1), an interrupted first write) is a fresh
        # store, not a corrupt one — loading it would raise EOFError.
        if os.path.exists(path) and os.path.getsize(path) > 0:
            with open(path, "rb") as handle:
                data = pickle.load(handle)
            self._meta = dict(data.get("meta", {}))
            self._entries = {
                key: value if isinstance(value, tuple) else (value, 0)
                for key, value in dict(data.get("entries", {})).items()}
        elif not readonly:
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)

    def _flush(self) -> None:
        self._dirty = False
        tmp_path = "{}.tmp.{}".format(self.path, os.getpid())
        with open(tmp_path, "wb") as handle:
            pickle.dump({"meta": self._meta, "entries": self._entries}, handle,
                        protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_path, self.path)

    def get_meta(self, key: str) -> Optional[str]:
        return self._meta.get(key)

    def set_meta(self, key: str, value: str) -> None:
        self._meta[key] = value
        self._flush()

    def get(self, key: str) -> Optional[bytes]:
        entry = self._entries.get(key)
        return entry[0] if entry is not None else None

    def put_many(self, items: Iterable[Tuple[str, bytes, int]]) -> None:
        # Serialising the whole dict per batch would make the streaming
        # driver's per-unit write-back O(units x store size); entry writes
        # are therefore deferred and flushed once on close.
        self._entries.update(
            (key, (blob, generation)) for key, blob, generation in items)
        self._dirty = True

    def keys(self) -> List[str]:
        return list(self._entries)

    def size_bytes(self) -> int:
        return sum(len(blob) for blob, _generation in self._entries.values())

    def entry_info(self) -> List[Tuple[str, int, int]]:
        """``(key, generation, size)`` triples, oldest generation first."""
        return sorted(
            ((key, generation, len(blob))
             for key, (blob, generation) in self._entries.items()),
            key=lambda item: (item[1], item[0]))

    def delete_many(self, keys: Sequence[str]) -> None:
        for key in keys:
            self._entries.pop(key, None)
        self._dirty = True

    def touch_many(self, keys: Sequence[str], generation: int) -> None:
        """Promote ``keys`` to ``generation`` (missing keys are no-ops)."""
        for key in keys:
            entry = self._entries.get(key)
            if entry is not None and entry[1] != generation:
                self._entries[key] = (entry[0], generation)
                self._dirty = True

    def clear(self) -> None:
        self._entries.clear()
        self._flush()

    def close(self) -> None:
        if self._dirty and not self.readonly:
            self._flush()


def _pick_backend(path: str) -> str:
    explicit = resolved_store_backend()  # active config / REPRO_STORE_BACKEND
    if explicit is not None:
        return explicit
    if path.endswith(".pkl") or path.endswith(".pickle"):
        return "pickle"
    return "sqlite" if sqlite3 is not None else "pickle"


class AnalysisStore:
    """Persistent, content-addressed map ``key -> evaluation payload``.

    ``version`` guards against stale results: on open, a writable store
    whose recorded version differs is cleared and restamped; a read-only
    store with a mismatched version answers every lookup with a miss.

    ``max_bytes`` bounds the store's payload footprint: whenever a write
    batch pushes the total past the budget, the oldest *generations* of
    entries (a generation = one writable open) are swept first, in
    deterministic key order within a generation.  ``None`` defers to the
    ``REPRO_STORE_MAX_MB`` environment switch; ``0`` disables the budget.
    """

    def __init__(self, path: str, version: str = STORE_VERSION,
                 backend: Optional[str] = None, readonly: bool = False,
                 max_bytes: Optional[int] = None) -> None:
        self.path = path
        self.version = version
        self.readonly = readonly
        if max_bytes is None:
            self.max_bytes = default_store_max_bytes()
        else:
            self.max_bytes = max_bytes if max_bytes > 0 else None
        backend_name = backend or _pick_backend(path)
        if backend_name == "pickle" or sqlite3 is None:
            self._backend = _PickleBackend(path, readonly=readonly)
        else:
            self._backend = _SqliteBackend(path, readonly=readonly)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: hit keys recorded by a *read-only* store (the engine ships them
        #: back to the coordinator, which applies :meth:`touch_many`).
        self.touched_keys: List[str] = []
        # Writable stores buffer their own touches and flush them before
        # anything reads generations (eviction) or the store closes.
        self._pending_touches: Set[str] = set()
        stored = self._backend.get_meta("version")
        self._version_ok = stored == version
        if not self._version_ok and not readonly:
            if stored is not None:
                self._backend.clear()
            self._backend.set_meta("version", version)
            self._version_ok = True
        self.generation = int(self._backend.get_meta("generation") or 0)
        if not readonly:
            self.generation += 1
            self._backend.set_meta("generation", str(self.generation))

    @property
    def backend_name(self) -> str:
        return self._backend.name

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the store (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def get(self, key: str) -> Optional[object]:
        """The payload stored under ``key``, or ``None`` on a miss.

        A hit *touches* the entry (LRU approximation): writable stores
        promote it to the current generation, read-only stores record the
        key in :attr:`touched_keys` for the coordinator to apply.
        """
        if not self._version_ok:
            self.misses += 1
            return None
        blob = self._backend.get(key)
        if blob is None:
            self.misses += 1
            return None
        self.hits += 1
        if self.readonly:
            self.touched_keys.append(key)
        else:
            self._pending_touches.add(key)
        return pickle.loads(blob)

    def _flush_touches(self) -> None:
        if self._pending_touches:
            self._backend.touch_many(sorted(self._pending_touches),
                                     self.generation)
            self._pending_touches.clear()

    def touch_many(self, keys: Sequence[str]) -> None:
        """Promote ``keys`` to the current generation (the LRU "use" mark).

        Missing keys are ignored.  This is the writable half of the
        reader-touch protocol: workers read the store read-only, accumulate
        hit keys, and the coordinator — the single writer — applies them.
        """
        if self.readonly:
            raise RuntimeError("analysis store opened read-only")
        if keys:
            self._backend.touch_many(list(keys), self.generation)

    def put(self, key: str, payload: object) -> None:
        self.put_many([(key, payload)])

    def put_many(self, items: Iterable[Tuple[str, object]]) -> None:
        if self.readonly:
            raise RuntimeError("analysis store opened read-only")
        # Piggyback buffered touches on every write batch so recorded hits
        # survive even when the caller never reaches close().
        self._flush_touches()
        encoded = [(key, pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
                    self.generation)
                   for key, payload in items]
        if encoded:
            self._backend.put_many(encoded)
            if self.max_bytes is not None:
                self.evict(self.max_bytes)

    def size_bytes(self) -> int:
        """Total pickled payload bytes currently stored."""
        return self._backend.size_bytes()

    def evict(self, max_bytes: Optional[int] = None) -> int:
        """Sweep oldest-generation entries until the payload footprint fits.

        Entries written in older store generations go first; within a
        generation the sweep is deterministic (key order).  Returns the
        number of entries evicted.  With no explicit ``max_bytes`` the
        store's configured budget applies (no budget — no eviction).
        """
        if self.readonly:
            raise RuntimeError("analysis store opened read-only")
        if max_bytes is None:
            budget = self.max_bytes
        else:
            # Same contract as the constructor: 0 means "no budget".
            budget = max_bytes if max_bytes > 0 else None
        if budget is None:
            return 0
        self._flush_touches()  # generations must be current before the sweep
        total = self._backend.size_bytes()
        if total <= budget:
            return 0
        victims: List[str] = []
        for key, _generation, size in self._backend.entry_info():
            if total <= budget:
                break
            victims.append(key)
            total -= size
        if victims:
            self._backend.delete_many(victims)
            self.evictions += len(victims)
        return len(victims)

    def keys(self) -> List[str]:
        return self._backend.keys() if self._version_ok else []

    def __len__(self) -> int:
        return len(self.keys())

    def __contains__(self, key: str) -> bool:
        return self._version_ok and self._backend.get(key) is not None

    def clear(self) -> None:
        if self.readonly:
            raise RuntimeError("analysis store opened read-only")
        self._backend.clear()

    def info(self) -> Dict[str, object]:
        """A summary of the store's state (the CLI's ``store info`` view)."""
        if not self.readonly:
            self._flush_touches()
        generations: Dict[int, int] = {}
        for _key, generation, _size in self._backend.entry_info():
            generations[generation] = generations.get(generation, 0) + 1
        return {
            "path": self.path,
            "backend": self.backend_name,
            "version": self._backend.get_meta("version"),
            "version_ok": self._version_ok,
            "generation": self.generation,
            "entries": len(self._backend.keys()),
            "size_bytes": self._backend.size_bytes(),
            "max_bytes": self.max_bytes,
            "entries_per_generation": generations,
        }

    def close(self) -> None:
        if not self.readonly:
            self._flush_touches()
        self._backend.close()

    def __enter__(self) -> "AnalysisStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return "<AnalysisStore {} backend={} hits={} misses={}>".format(
            self.path, self.backend_name, self.hits, self.misses)
