"""The coordinator: sharding, worker pools, merging and the store life cycle.

Public API:

* :func:`run_workload` — evaluate a list of benchmark programs, one work
  unit per program, fanned out over ``multiprocessing`` workers (or run
  in-process when ``workers <= 1`` — the serial fallback needs no
  subprocesses, which keeps the tier-1 test suite self-contained).  The
  pooled path is a *streaming* driver: shard payloads are consumed with
  ``imap_unordered`` as they land, store write-back overlaps with
  still-running shards, an optional ``on_result`` observer sees every
  result immediately, and a post-merge sort on the input index restores
  deterministic output order.
* :func:`evaluate_module_parallel` — shard *one* module's functions across
  workers; every worker compiles the same source (bit-identical IR, since
  the frontend and mem2reg are deterministic) and evaluates only its shard.
* :func:`evaluate_module` — the in-process entry point for an already
  compiled module, sharing its :class:`FunctionAnalysisCache` with the
  caller.

The public functions above are deprecation shims over the
:class:`repro.api.session.Session` facade; defaults resolve through
:class:`repro.api.config.ReproConfig` (explicit argument > config field >
``REPRO_*`` environment variable > default):

* ``workers`` / ``REPRO_WORKERS`` — worker-process count (``0`` = serial).
* ``store_path`` / ``REPRO_STORE`` — path of the persistent analysis store
  (unset = no persistence); ``store_backend`` / ``REPRO_STORE_BACKEND`` may
  force ``sqlite`` or ``pickle``; ``store_max_mb`` / ``REPRO_STORE_MAX_MB``
  bounds the store's payload footprint (least-recently-used entries are
  swept after each write batch).

Workers only ever *read* the store; freshly computed entries return to the
coordinator inside each payload and are written back here, keeping the
writer count at one regardless of the worker count.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Dict, List, Optional, Sequence, Tuple, Union

import repro
from repro.api import config as api_config
from repro.alias.aaeval import AliasEvaluation
from repro.core.disambiguation import DisambiguationStatistics
from repro.engine import worker as worker_module
from repro.engine.store import AnalysisStore
from repro.engine.workunit import DEFAULT_SPECS, WorkUnit
from repro.ir.module import Module
from repro.obs import TRACER
from repro.passes.analysis_cache import FunctionAnalysisCache


def default_workers() -> int:
    """The configured worker count (0 = serial).

    Resolution — active :class:`~repro.api.config.ReproConfig` first, the
    ``REPRO_WORKERS`` environment variable second — lives in
    :mod:`repro.api.config`; invalid values raise
    :class:`~repro.api.config.ConfigError` there instead of silently
    falling back to serial.
    """
    return api_config.resolved_workers()


def default_store_path() -> Optional[str]:
    """The configured persistent-store path (active config, then
    ``REPRO_STORE``)."""
    return api_config.resolved_store_path()


def _start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


def _source_root() -> str:
    # Where this process imported ``repro`` from; spawned workers get it
    # prepended to sys.path so they can import the package too.
    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


class UnitResult:
    """A merged, coordinator-side view of one work unit's payload."""

    def __init__(self, payload: Dict[str, object]) -> None:
        self.payload = payload

    @property
    def name(self) -> str:
        return self.payload["name"]

    @property
    def kind(self) -> str:
        return self.payload.get("kind", "aaeval")

    @property
    def instructions(self) -> int:
        return int(self.payload.get("instructions", 0))

    # -- aaeval payloads ----------------------------------------------------------
    def evaluation(self, label: str) -> AliasEvaluation:
        counts = self.payload["labels"][label]["counts"]
        return AliasEvaluation.from_dict(counts)

    @property
    def labels(self) -> List[str]:
        return list(self.payload.get("labels", {}))

    def verdicts(self, label: str) -> Dict[str, str]:
        """Per-function verdict code strings (bit-identity comparisons)."""
        return dict(self.payload["labels"][label].get("verdicts", {}))

    @property
    def statistics(self) -> DisambiguationStatistics:
        return DisambiguationStatistics.from_dict(
            self.payload.get("statistics", {}))

    @property
    def store_hits(self) -> int:
        return int(self.payload.get("store_hits", 0))

    @property
    def store_misses(self) -> int:
        return int(self.payload.get("store_misses", 0))

    def __getitem__(self, key: str) -> object:
        return self.payload[key]

    def __repr__(self) -> str:
        return "<UnitResult {} kind={}>".format(self.name, self.kind)


UnitLike = Union[WorkUnit, Tuple[str, str], object]


def _normalize_units(units: Sequence[UnitLike], kind: str,
                     specs: Sequence[Sequence[str]],
                     interprocedural: bool) -> List[WorkUnit]:
    spec_tuple = tuple(tuple(spec) for spec in specs)
    normalized: List[WorkUnit] = []
    for unit in units:
        if isinstance(unit, WorkUnit):
            normalized.append(unit)
        elif isinstance(unit, tuple) and len(unit) == 2:
            name, source = unit
            normalized.append(WorkUnit(kind, name, source, None, spec_tuple,
                                       interprocedural))
        elif hasattr(unit, "name") and hasattr(unit, "source"):
            # WorkloadProgram and friends.
            normalized.append(WorkUnit(kind, unit.name, unit.source, None,
                                       spec_tuple, interprocedural))
        else:
            raise TypeError("cannot build a WorkUnit from {!r}".format(unit))
    return normalized


def _absorb_telemetry(payload: Dict[str, object]) -> None:
    """Merge a pool payload's shipped span buffer onto the coordinator tracer.

    Workers attach ``spans`` (their drained buffer) and ``span_epoch``
    (their wall-clock anchor) to every payload when tracing is on; the
    coordinator rebases the timestamps and files the spans under a
    ``worker-<pid>`` lane — the per-shard merge mirroring
    ``DisambiguationStatistics.merge``.  The fields are popped
    unconditionally so verdict output never carries timing data.
    """
    spans = payload.pop("spans", None)
    epoch = payload.pop("span_epoch", None)
    if spans:
        lane = "worker-{}".format(payload.get("pid", "?"))
        TRACER.absorb_shard(spans, lane, epoch)


def _absorb_verify(payload: Dict[str, object]) -> None:
    """Fold a pool payload's shipped verification report into the process.

    Under ``REPRO_VERIFY=paranoid`` every worker verifies its own shard and
    attaches the report to the payload (in-process runs raise right in the
    worker module instead).  The coordinator counts the shipped report into
    :data:`repro.verify.COUNTERS` and re-raises its error findings here, so
    paranoid failures surface identically whether the shard ran pooled or
    not.  The field is popped unconditionally so verdict output never
    carries verification data.
    """
    shipped = payload.pop("verify", None)
    if not shipped:
        return
    from repro.verify import COUNTERS, VerificationReport

    report = VerificationReport.from_dict(shipped)
    COUNTERS.record(report)
    report.raise_if_failed(
        "REPRO_VERIFY=paranoid (worker pid {})".format(
            payload.get("pid", "?")))


def _write_back(store: Optional[AnalysisStore],
                payload: Dict[str, object]) -> None:
    """Persist one payload's freshly computed entries (coordinator-side).

    Also applies the payload's *touched keys* — store hits recorded by a
    read-only worker-side store — promoting those entries to the current
    generation so eviction approximates LRU rather than FIFO.
    """
    entries = payload.pop("new_entries", None)
    touched = payload.pop("touched_keys", None)
    if store is None or store.readonly:
        return
    if touched:
        store.touch_many(touched)
    if entries:
        store.put_many(entries)


def _run_units(units: List[WorkUnit], workers: int,
               store: Optional[AnalysisStore],
               max_tasks_per_child: Optional[int] = None,
               on_payload=None) -> List[Dict[str, object]]:
    """Execute ``units`` (serial or streamed over a pool).

    The pooled path streams: results are consumed with ``imap_unordered``
    as workers finish, so store write-back (and the caller's ``on_payload``
    observer) overlaps with still-in-flight shards instead of waiting for
    the slowest one.  Each task carries its input index and the collected
    results are sorted by it afterwards, so the returned payload order is
    deterministic — identical to the serial path — regardless of worker
    scheduling.
    """
    if workers <= 1 or len(units) <= 1:
        payloads = []
        for unit in units:
            payload = worker_module.run_work_unit(unit, store=store)
            _write_back(store, payload)
            payloads.append(payload)
            if on_payload is not None:
                on_payload(payload)
        return payloads
    store_spec = None
    if store is not None:
        store_spec = (store.path, store.version, store.backend_name)
    context = multiprocessing.get_context(_start_method())
    # Ship the active config (if any) into every worker so that solver
    # selection and class truncation resolve exactly as on the coordinator.
    pool = context.Pool(processes=workers,
                        initializer=worker_module.initialize_worker,
                        initargs=(_source_root(), api_config.active_config()),
                        maxtasksperchild=max_tasks_per_child)
    arrived: List[Tuple[int, Dict[str, object]]] = []
    try:
        tasks = [(index, unit, store_spec)
                 for index, unit in enumerate(units)]
        for index, payload in pool.imap_unordered(
                worker_module.execute_indexed, tasks, chunksize=1):
            _absorb_telemetry(payload)
            _absorb_verify(payload)
            _write_back(store, payload)
            arrived.append((index, payload))
            if on_payload is not None:
                on_payload(payload)
    finally:
        pool.close()
        pool.join()
    arrived.sort(key=lambda item: item[0])
    return [payload for _index, payload in arrived]


def run_workload(units: Sequence[UnitLike], kind: str = "aaeval",
                 specs: Sequence[Sequence[str]] = DEFAULT_SPECS,
                 workers: Optional[int] = None,
                 store: Union[None, bool, str, AnalysisStore] = None,
                 interprocedural: bool = True,
                 max_tasks_per_child: Optional[int] = None,
                 on_result=None) -> List[UnitResult]:
    """Evaluate one work unit per benchmark program, possibly in parallel.

    .. deprecated::
        Thin shim over :meth:`repro.api.session.Session.run_workload`; it
        constructs a default (environment-configured) session per call.
        New code should hold a :class:`~repro.api.session.Session` so
        repeated workloads share one cache and one store handle.

    ``units`` may be ``WorkUnit`` objects, ``(name, source)`` tuples or
    anything with ``name``/``source`` attributes (``WorkloadProgram``).
    Results come back in input order regardless of worker scheduling.
    ``store=None`` defers to the configured store path; pass ``store=False``
    to force a persistence-free run (e.g. a timing baseline).  ``on_result``
    streams: it observes each :class:`UnitResult` as the unit lands.
    """
    from repro.api.session import Session

    with Session() as session:
        return session.run_workload(
            units, kind=kind, specs=specs, workers=workers, store=store,
            interprocedural=interprocedural,
            max_tasks_per_child=max_tasks_per_child, on_result=on_result)


def _merge_aaeval_payloads(name: str,
                           payloads: List[Dict[str, object]]) -> Dict[str, object]:
    """Merge per-shard ``aaeval`` payloads losslessly on the coordinator."""
    merged_labels: Dict[str, Dict[str, object]] = {}
    statistics = DisambiguationStatistics()
    functions: List[str] = []
    store_hits = store_misses = 0
    for payload in payloads:
        functions.extend(payload["functions"])
        statistics = statistics.merge(
            DisambiguationStatistics.from_dict(payload.get("statistics", {})))
        store_hits += payload.get("store_hits", 0)
        store_misses += payload.get("store_misses", 0)
        for label, data in payload["labels"].items():
            slot = merged_labels.setdefault(
                label, {"counts": AliasEvaluation().as_dict(), "verdicts": {}})
            merged = AliasEvaluation.from_dict(slot["counts"]).merge(
                AliasEvaluation.from_dict(data["counts"]))
            slot["counts"] = merged.as_dict()
            slot["verdicts"].update(data.get("verdicts", {}))
    return {
        "kind": "aaeval",
        "name": name,
        "functions": functions,
        "instructions": payloads[0]["instructions"] if payloads else 0,
        "module_hash": payloads[0].get("module_hash", "") if payloads else "",
        "labels": merged_labels,
        "statistics": statistics.as_dict(),
        "store_hits": store_hits,
        "store_misses": store_misses,
    }


def evaluate_module_parallel(name: str, source: str,
                             specs: Sequence[Sequence[str]] = DEFAULT_SPECS,
                             workers: Optional[int] = None,
                             store: Union[None, bool, str, AnalysisStore] = None,
                             interprocedural: bool = True) -> UnitResult:
    """Shard one module's functions across worker processes and merge.

    The coordinator compiles the module once to discover function names and
    weights (pointer count squared — the query loop is quadratic); each
    worker recompiles the identical source and evaluates only its shard.
    With ``workers <= 1`` the whole module is evaluated in-process.

    .. deprecated::
        Thin shim over :meth:`repro.api.session.Session.evaluate_source`.
    """
    from repro.api.session import Session

    with Session() as session:
        return session.evaluate_source(name, source, specs=specs,
                                       workers=workers, store=store,
                                       interprocedural=interprocedural)


def evaluate_module(module: Module,
                    specs: Sequence[Sequence[str]] = DEFAULT_SPECS,
                    cache: Optional[FunctionAnalysisCache] = None,
                    store: Union[None, bool, str, AnalysisStore] = None,
                    interprocedural: bool = True,
                    record_verdicts: bool = True,
                    memoize_evaluations: bool = True) -> UnitResult:
    """Evaluate an already compiled module in-process.

    Shares ``cache`` with the caller so repeated evaluation hits memoized
    analyses; with a store, results are warm-loaded/persisted exactly like
    the worker path.  Store keys content-address the *pre-conversion* IR, so
    a module that has already been e-SSA-converted outside the engine cannot
    be addressed canonically any more — persistence is skipped for it rather
    than growing an incompatible second key family.

    .. deprecated::
        Thin shim over :meth:`repro.api.session.Session.evaluate`.  A held
        session additionally shares its cache across calls automatically.
    """
    from repro.api.session import Session

    with Session() as session:
        return session.evaluate(module, specs=specs, cache=cache, store=store,
                                interprocedural=interprocedural,
                                record_verdicts=record_verdicts,
                                memoize_evaluations=memoize_evaluations)
