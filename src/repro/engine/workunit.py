"""Work units and deterministic shard scheduling.

A :class:`WorkUnit` is the picklable unit of work the engine ships to a
worker process: a job kind, a program name, the program's *source text* (the
worker compiles it itself — the compiled IR is full of identity-keyed object
graphs that do not survive pickling, while the frontend and mem2reg are
deterministic, so recompiling yields bit-identical IR in every process) and
optionally the subset of function names the shard covers.

The :class:`Scheduler` partitions work deterministically.  It implements
longest-processing-time (LPT) greedy balancing: items are placed heaviest
first onto the currently lightest shard, with ties broken by original
position and shard index, so the same inputs always produce the same shards
— a prerequisite for reproducible benchmark runs and for comparing sharded
against serial verdicts bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

#: the default analysis configurations of the paper's tables: BA alone, LT
#: alone, and the BA + LT chain.
DEFAULT_SPECS: Tuple[Tuple[str, ...], ...] = (
    ("basicaa",),
    ("lt",),
    ("basicaa", "lt"),
)

T = TypeVar("T")


def spec_label(spec: Sequence[str]) -> str:
    """The display/storage label of an analysis spec: ``("basicaa", "lt")``
    becomes ``"basicaa+lt"``, mirroring the paper's ``BA + LT`` notation."""
    return "+".join(spec)


#: analyses whose facts unify state across *every* function (globals flow
#: through one shared points-to graph), so no call-graph slice bounds what
#: an edit can change — their entries must stay keyed by the module hash.
MODULE_GLOBAL_MEMBERS = frozenset(["andersen", "steensgaard"])


def spec_fingerprint_scope(spec: Sequence[str], interprocedural: bool) -> str:
    """Which module slice ``spec``'s per-function facts can depend on.

    ``"module"`` — any member is module-global (Andersen/Steensgaard).
    ``"region"`` — the interprocedural less-than analysis: pseudo-φ
    constraints flow facts caller → callee, so a function's facts are a pure
    function of itself plus its transitive callers.
    ``"dependency"`` — everything else (basicaa/tbaa/intraprocedural lt)
    reads at most the function and its callees.

    The store folds the matching fingerprint from
    :class:`repro.ir.callgraph.ModuleFingerprints` into
    :func:`repro.engine.store.function_key`, and
    :meth:`repro.passes.analysis_cache.FunctionAnalysisCache.refresh` uses
    the same rule to decide which in-process payloads survive an edit.
    """
    if any(member in MODULE_GLOBAL_MEMBERS for member in spec):
        return "module"
    if interprocedural and "lt" in spec:
        return "region"
    return "dependency"


def label_fingerprint_scope(cache_label: str) -> str:
    """:func:`spec_fingerprint_scope` for an engine cache label — a
    :func:`spec_label` optionally suffixed ``#intra`` (the intraprocedural
    marker the engine appends to memoization keys)."""
    interprocedural = not cache_label.endswith("#intra")
    base = cache_label if interprocedural else cache_label[:-len("#intra")]
    return spec_fingerprint_scope(base.split("+"), interprocedural)


@dataclass(frozen=True)
class WorkUnit:
    """One self-contained, picklable unit of evaluation work."""

    #: job kind — a key of :data:`repro.engine.worker.JOBS`.
    kind: str
    #: program name (module name, benchmark row label).
    name: str
    #: mini-C source text; compiled by whichever process runs the unit.
    source: str
    #: function names this shard evaluates; ``None`` means every defined
    #: function of the module.
    functions: Optional[Tuple[str, ...]] = None
    #: analysis configurations to evaluate (``aaeval`` jobs).
    specs: Tuple[Tuple[str, ...], ...] = DEFAULT_SPECS
    #: whether less-than analyses run interprocedurally.
    interprocedural: bool = True

    def with_functions(self, functions: Sequence[str]) -> "WorkUnit":
        return replace(self, functions=tuple(functions))

    def labels(self) -> List[str]:
        return [spec_label(spec) for spec in self.specs]


class Scheduler:
    """Deterministic LPT partitioning of weighted work items into shards."""

    def __init__(self, shard_count: int) -> None:
        if shard_count < 1:
            raise ValueError("need at least one shard, got {}".format(shard_count))
        self.shard_count = shard_count

    def partition(self, items: Sequence[T],
                  weight: Optional[Callable[[T], float]] = None) -> List[List[T]]:
        """Split ``items`` into at most ``shard_count`` balanced shards.

        Every item lands in exactly one shard; empty shards are dropped, so
        fewer items than shards yields one singleton shard per item.  The
        result is a pure function of ``(items, weights, shard_count)``.
        """
        if not items:
            return []
        weigh = weight or (lambda _item: 1.0)
        indexed = sorted(
            ((weigh(item), position, item) for position, item in enumerate(items)),
            key=lambda entry: (-entry[0], entry[1]))
        shard_count = min(self.shard_count, len(indexed))
        loads = [0.0] * shard_count
        shards: List[List[Tuple[int, T]]] = [[] for _ in range(shard_count)]
        for item_weight, position, item in indexed:
            lightest = min(range(shard_count), key=lambda index: (loads[index], index))
            loads[lightest] += item_weight
            shards[lightest].append((position, item))
        # Present each shard's items in their original order: downstream code
        # (and the bit-identity checks) reason about input order, not weight
        # order.
        return [[item for _position, item in sorted(shard)] for shard in shards]

    def shard_unit(self, unit: WorkUnit, function_names: Sequence[str],
                   weights: Optional[Sequence[float]] = None) -> List[WorkUnit]:
        """Shard one module-level unit by its functions.

        ``weights`` (one per function, typically pointer-count²: the query
        loop is quadratic in the number of pointers) balance the shards; each
        returned unit carries a disjoint subset of ``function_names``.
        """
        if weights is not None and len(weights) != len(function_names):
            raise ValueError("need one weight per function")
        table = (dict(zip(function_names, weights)) if weights is not None else {})
        shards = self.partition(list(function_names),
                                weight=(lambda name: table[name]) if table else None)
        return [unit.with_functions(shard) for shard in shards]
