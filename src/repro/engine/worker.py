"""Work-unit execution: what runs inside every worker process.

A worker receives a :class:`~repro.engine.workunit.WorkUnit`, compiles the
unit's source text with the (deterministic) frontend, runs the requested job
over its shard of functions and returns a plain-dict payload built from
picklable primitives only — verdict counters, per-pair verdict code strings,
statistics dicts — which the coordinator merges.

The ``aaeval`` job implements the engine's caching discipline:

1. hash every function's printed IR (*before* the e-SSA conversion mutates
   it) together with a call-graph-aware fingerprint of the module slice the
   spec can observe (:mod:`repro.ir.callgraph`): the reachable-region
   fingerprint for interprocedural less-than specs, the dependency
   fingerprint for function-scoped specs, the whole module's hash only for
   module-global analyses (Andersen/Steensgaard),
2. warm-load any persisted payloads from the analysis store into the
   :class:`~repro.passes.analysis_cache.FunctionAnalysisCache`,
3. for cache misses only: convert the module to e-SSA form and evaluate with
   the requested analysis configurations (so a fully warm run never builds a
   range analysis, never solves constraints and never issues a query),
4. ship freshly computed payloads back to the coordinator, which alone
   writes to the store.

Every evaluation path — serial, sharded, store-warmed — follows the same
pipeline convention (evaluate on the e-SSA-converted module), so per-pair
verdict streams are bit-identical across all of them.
"""

from __future__ import annotations

import os
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.config import ReproConfig, install_config, resolved_verify
from repro.alias.aaeval import (
    AliasEvaluation,
    evaluate_function,
    evaluate_function_verdicts,
)
from repro.alias.basicaa import BasicAliasAnalysis
from repro.alias.andersen import AndersenAliasAnalysis
from repro.alias.interface import AliasAnalysis, AliasAnalysisChain
from repro.alias.steensgaard import SteensgaardAliasAnalysis
from repro.alias.tbaa import TypeBasedAliasAnalysis
from repro.core.disambiguation import DisambiguationStatistics
from repro.core.sraa import StrictInequalityAliasAnalysis
from repro.engine.store import AnalysisStore, function_key, text_hash, unit_key
from repro.engine.workunit import WorkUnit, spec_fingerprint_scope, spec_label
from repro.frontend import compile_source
from repro.ir.callgraph import ModuleFingerprints, module_fingerprints
from repro.ir.module import Module
from repro.ir.printer import print_function, print_module
from repro.obs import TRACER
from repro.passes.analysis_cache import FunctionAnalysisCache
from repro.verify import VerificationReport, verify_alias_analysis

#: True inside a multiprocessing pool worker (set by :func:`initialize_worker`).
#: The self-check hook consults it: in-process runs verify under ``post`` and
#: ``paranoid`` and raise on failure; pool workers verify under ``paranoid``
#: only and ship the report back through the payload for the coordinator to
#: judge (raising inside the pool would surface as an opaque pool error).
_IN_POOL_WORKER = False


def initialize_worker(src_path: Optional[str],
                      config: Optional[ReproConfig] = None) -> None:
    """Pool initializer: make ``repro`` importable under the spawn method.

    Forked workers inherit the parent's ``sys.path``; spawned ones re-import
    from scratch and only see ``PYTHONPATH``, so the coordinator passes the
    source root it imported ``repro`` from.

    ``config`` is the coordinator's active :class:`ReproConfig`, installed
    as this process's base config so that solver selection and
    equivalence-class truncation resolve identically in every worker —
    under ``spawn`` as well as ``fork`` (environment variables alone would
    miss a session whose config differs from the environment).  When that
    config carries a trace path, this worker's tracer starts recording too;
    the span buffer ships back with each payload (see :func:`execute`).
    """
    global _IN_POOL_WORKER
    _IN_POOL_WORKER = True
    if src_path and src_path not in sys.path:
        sys.path.insert(0, src_path)
    if config is not None:
        install_config(config)
        if config.trace:
            TRACER.enable()


def _member_analysis(member: str, module: Module, cache: FunctionAnalysisCache,
                     interprocedural: bool) -> AliasAnalysis:
    if member == "basicaa":
        return BasicAliasAnalysis()
    if member == "lt":
        return StrictInequalityAliasAnalysis(module, interprocedural=interprocedural,
                                             cache=cache)
    if member == "andersen":
        return AndersenAliasAnalysis(module)
    if member == "steensgaard":
        return SteensgaardAliasAnalysis(module)
    if member == "tbaa":
        return TypeBasedAliasAnalysis()
    raise KeyError("unknown analysis spec member {!r}".format(member))


def build_analysis(spec: Sequence[str], module: Module,
                   cache: FunctionAnalysisCache,
                   interprocedural: bool = True) -> AliasAnalysis:
    """Instantiate one analysis configuration (a member or a chain)."""
    members = [_member_analysis(member, module, cache, interprocedural)
               for member in spec]
    if len(members) == 1:
        return members[0]
    return AliasAnalysisChain(members, name=spec_label(spec))


def module_content_text(module: Module) -> str:
    """The module's printed IR minus its name line.

    ``print_module`` leads with a ``; module <name>`` comment; hashing must
    ignore it so that two units with identical content but different program
    names share function-level store entries.
    """
    text = print_module(module)
    if text.startswith("; module "):
        _header, _sep, rest = text.partition("\n")
        return rest
    return text


def scope_fingerprint(scope: str, function_name: str, module_hash: str,
                      prints: ModuleFingerprints) -> str:
    """The fingerprint :func:`function_key` folds for one (scope, function)."""
    if scope == "module":
        return module_hash
    if scope == "region":
        return prints.region[function_name]
    return prints.fingerprint[function_name]


def _shard_functions(module: Module, names: Optional[Sequence[str]]):
    functions = list(module.defined_functions())
    if names is None:
        return functions
    wanted = set(names)
    return [function for function in functions if function.name in wanted]


def evaluate_module_functions(module: Module,
                              function_names: Optional[Sequence[str]] = None,
                              specs: Sequence[Sequence[str]] = (("lt",),),
                              cache: Optional[FunctionAnalysisCache] = None,
                              store: Optional[AnalysisStore] = None,
                              interprocedural: bool = True,
                              record_verdicts: bool = True,
                              memoize_evaluations: bool = True,
                              name: Optional[str] = None) -> Dict[str, object]:
    """Evaluate ``specs`` over (a shard of) ``module``'s functions.

    This is the core of the ``aaeval`` job, also callable in-process on an
    already compiled module (the serial fallback needs no pickling and no
    subprocesses).  Returns the payload described in the module docstring.

    ``memoize_evaluations=False`` disables the per-(function, label) payload
    memo on the cache, so repeated calls re-run the query loop over the
    (still memoized) analyses — what a throughput measurement of the query
    engine itself wants.  With a store the memo is always on: warm-loading
    is what the store is for.
    """
    if store is not None:
        memoize_evaluations = True
    cache = cache if cache is not None else FunctionAnalysisCache()
    functions = _shard_functions(module, function_names)
    if store is not None:
        record_verdicts = True  # store entries must carry the verdict stream
    labels = [spec_label(spec) for spec in specs]
    # Interprocedural and intraprocedural LT runs produce different facts for
    # the same IR, so the mode must be part of every memoization key — both
    # the persistent one (function_key below) and the in-process cache's.
    # User-facing payload labels stay undecorated.
    mode_suffix = "" if interprocedural else "#intra"

    # Content addresses, computed before any conversion mutates the IR.
    keys: Dict[Tuple[str, str], str] = {}
    touched_before = 0
    if store is not None:
        # The counters are cumulative on the store object (which serial runs
        # share across units), so report this unit's delta.
        hits_before, misses_before = store.hits, store.misses
        # Read-only stores record hit keys (the LRU touch protocol); the
        # coordinator applies this unit's delta via ``touch_many``.
        # Writable stores touch directly inside ``get``.
        touched_before = len(store.touched_keys)
        module_hash = text_hash(module_content_text(module))
        prints = module_fingerprints(module)
        scopes = {label: spec_fingerprint_scope(spec, interprocedural)
                  for spec, label in zip(specs, labels)}
        for function in functions:
            function_text = print_function(function)
            for label in labels:
                fingerprint = scope_fingerprint(
                    scopes[label], function.name, module_hash, prints)
                key = function_key(label + mode_suffix, function_text, fingerprint)
                keys[(function.name, label)] = key
                payload = store.get(key)
                # Per-kind hit accounting: the "fingerprint" row of the
                # cache statistics is the warm-hit rate of fingerprint-keyed
                # store lookups — what the churn benchmark gates on.
                cache.statistics.record("fingerprint", payload is not None)
                if payload is not None:
                    cache.put_evaluation(function, label + mode_suffix, payload)
        store_hits = store.hits - hits_before
        store_misses = store.misses - misses_before
    else:
        module_hash = ""
        store_hits = store_misses = 0

    analyses: Dict[str, AliasAnalysis] = {}
    prepared = False
    new_entries: List[Tuple[str, object]] = []
    label_payloads: Dict[str, Dict[str, object]] = {}
    for spec in specs:
        label = spec_label(spec)
        cache_label = label + mode_suffix
        merged = AliasEvaluation()
        verdicts: Dict[str, str] = {}
        for function in functions:
            record = (cache.get_evaluation(function, cache_label)
                      if memoize_evaluations else None)
            if record is None:
                if not prepared:
                    # Pipeline convention: every path evaluates the
                    # e-SSA-converted module (RangeAnalysis -> vSSA -> queries,
                    # like the original artifact), so verdicts do not depend
                    # on which specs run or hit.
                    for defined in module.defined_functions():
                        cache.ensure_essa(defined)
                    prepared = True
                if label not in analyses:
                    analyses[label] = build_analysis(spec, module, cache,
                                                     interprocedural)
                analysis = analyses[label]
                if record_verdicts:
                    evaluation, codes = evaluate_function_verdicts(function, analysis)
                    record = {"counts": evaluation.as_dict(), "codes": codes}
                else:
                    evaluation = evaluate_function(function, analysis)
                    record = {"counts": evaluation.as_dict()}
                if memoize_evaluations:
                    cache.put_evaluation(function, cache_label, record)
                if store is not None:
                    new_entries.append((keys[(function.name, label)], record))
            merged = merged.merge(AliasEvaluation.from_dict(record["counts"]))
            if "codes" in record:
                verdicts[function.name] = record["codes"]
        label_payloads[label] = {"counts": merged.as_dict(), "verdicts": verdicts}

    statistics = DisambiguationStatistics()
    seen_disambiguators = set()
    for analysis in analyses.values():
        members = (analysis.analyses if isinstance(analysis, AliasAnalysisChain)
                   else [analysis])
        for member in members:
            if not isinstance(member, StrictInequalityAliasAnalysis):
                continue
            for disambiguator in member.disambiguators():
                if id(disambiguator) in seen_disambiguators:
                    continue
                seen_disambiguators.add(id(disambiguator))
                statistics = statistics.merge(disambiguator.statistics)

    touched_keys: List[str] = []
    if store is not None and store.readonly:
        touched_keys = list(store.touched_keys[touched_before:])

    # Self-check hook (REPRO_VERIFY): after the statistics snapshot — the
    # audit restores the disambiguator counters it touches, so verified and
    # unverified runs produce byte-identical payloads — and only when this
    # call actually solved something (warm runs re-check nothing).
    verify_report = None
    verify_mode = resolved_verify()
    if (verify_mode != "off" and prepared
            and (verify_mode == "paranoid" or not _IN_POOL_WORKER)):
        verify_report = _verify_prepared_analyses(analyses)
        if verify_report is not None and not _IN_POOL_WORKER:
            verify_report.raise_if_failed(
                "REPRO_VERIFY={}".format(verify_mode))

    payload: Dict[str, object] = {
        "kind": "aaeval",
        "name": name if name is not None else module.name,
        "functions": [function.name for function in functions],
        "instructions": module.instruction_count(),
        "module_hash": module_hash,
        "labels": label_payloads,
        "statistics": statistics.as_dict(),
        "store_hits": store_hits,
        "store_misses": store_misses,
        "new_entries": new_entries,
        "touched_keys": touched_keys,
        "pid": os.getpid(),
    }
    if verify_report is not None and _IN_POOL_WORKER:
        # Ship the report like tracing spans: the coordinator pops the field
        # (never persisted — _PERSISTED_FIELDS excludes it), folds the
        # counters into its own totals and raises on error findings.
        payload["verify"] = verify_report.as_dict()
    return payload


def _verify_prepared_analyses(
        analyses: Dict[str, AliasAnalysis]) -> Optional[VerificationReport]:
    """Run the self-check suite over every freshly solved LT analysis.

    Chained specs share cached underlying analyses, so runs are deduplicated
    by the identity of the prepared analysis object, mirroring the
    disambiguator-statistics loop above.
    """
    report: Optional[VerificationReport] = None
    seen = set()
    for analysis in analyses.values():
        members = (analysis.analyses if isinstance(analysis, AliasAnalysisChain)
                   else [analysis])
        for member in members:
            if not isinstance(member, StrictInequalityAliasAnalysis):
                continue
            underlying = member.analysis
            marker = id(underlying) if underlying is not None else id(member)
            if marker in seen:
                continue
            seen.add(marker)
            sub = verify_alias_analysis(member)
            report = sub if report is None else report.merge(sub)
    return report


# ---------------------------------------------------------------------------
# Jobs
# ---------------------------------------------------------------------------

def _job_aaeval(unit: WorkUnit, module: Module, cache: FunctionAnalysisCache,
                store: Optional[AnalysisStore]) -> Dict[str, object]:
    return evaluate_module_functions(
        module, unit.functions, unit.specs, cache, store,
        interprocedural=unit.interprocedural, name=unit.name)


def _job_lessthan_stats(unit: WorkUnit, module: Module,
                        cache: FunctionAnalysisCache,
                        _store: Optional[AnalysisStore]) -> Dict[str, object]:
    """Constraint-generation/solving metrics (the Figure 11 measurement)."""
    analysis = cache.module_lessthan(module, unit.interprocedural)
    statistics = analysis.statistics
    return {
        "kind": "lessthan-stats",
        "name": unit.name,
        "instructions": module.instruction_count(),
        "constraints": statistics.constraint_count,
        "worklist_pops": statistics.worklist_pops,
        "pops_per_constraint": statistics.pops_per_constraint,
        "solve_seconds": statistics.solve_time_seconds,
        "pid": os.getpid(),
    }


def _job_print_ir(unit: WorkUnit, module: Module,
                  _cache: FunctionAnalysisCache,
                  _store: Optional[AnalysisStore]) -> Dict[str, object]:
    """The compiled module's printed IR (cross-process determinism checks)."""
    return {
        "kind": "print-ir",
        "name": unit.name,
        "ir": print_module(module),
        "pid": os.getpid(),
    }


JOBS = {
    "aaeval": _job_aaeval,
    "lessthan-stats": _job_lessthan_stats,
    "print-ir": _job_print_ir,
}

#: jobs whose payload is a pure function of the unit (no timing fields) and
#: may therefore be memoized whole at the unit level.
CACHEABLE_KINDS = frozenset(["aaeval"])

#: payload fields that describe the evaluation itself (persisted); the rest
#: (pid, store counters, write-back entries) describe one particular run.
_PERSISTED_FIELDS = ("kind", "name", "functions", "instructions",
                     "module_hash", "labels", "statistics")


def run_work_unit(unit: WorkUnit,
                  store: Optional[AnalysisStore] = None) -> Dict[str, object]:
    """Compile ``unit.source`` and run its job; the single worker entry point.

    With a store, ``aaeval`` units are first looked up whole by source-text
    hash (:func:`~repro.engine.store.unit_key`): a hit skips compilation and
    analysis outright.  On a miss the job runs normally — drawing any
    function-level entries that do exist — and the merged payload is handed
    back for the coordinator to persist at both granularities.
    """
    with TRACER.span("engine.unit", unit=unit.name, kind=unit.kind):
        return _run_work_unit(unit, store)


def _run_work_unit(unit: WorkUnit,
                   store: Optional[AnalysisStore]) -> Dict[str, object]:
    if unit.kind not in JOBS:
        raise KeyError("unknown work-unit kind {!r}".format(unit.kind))
    memo_key = None
    # Only whole-module units are memoized at the unit level: a shard
    # (unit.functions set) evaluates a subset of the module, and persisting
    # its payload under the unit's source key would let a later whole-module
    # warm run pick up partial results.  Shards still share the
    # function-level entries.
    if store is not None and unit.kind in CACHEABLE_KINDS and unit.functions is None:
        memo_key = unit_key(unit.kind, unit.name, unit.source, unit.labels(),
                            unit.interprocedural)
        cached = store.get(memo_key)
        if cached is not None:
            payload = dict(cached)
            payload["store_hits"] = 1  # the one unit-level lookup that hit
            payload["store_misses"] = 0
            payload["new_entries"] = []
            # LRU touch: a read-only (worker-side) store ships the hit key
            # back for the coordinator to promote; a writable store already
            # touched it inside ``get``.
            payload["touched_keys"] = [memo_key] if store.readonly else []
            payload["pid"] = os.getpid()
            return payload
    module = compile_source(unit.source, module_name=unit.name)
    cache = FunctionAnalysisCache()
    payload = JOBS[unit.kind](unit, module, cache, store)
    if memo_key is not None:
        persisted = {field: payload[field] for field in _PERSISTED_FIELDS
                     if field in payload}
        payload.setdefault("new_entries", []).append((memo_key, persisted))
    return payload


#: read-only stores opened by this worker process, one per spec.  Reused
#: across the units a pool worker handles — the pickle backend deserializes
#: its whole file on open, so opening per unit would cost O(units x entries).
#: Process-local by construction; closed implicitly at worker exit.
_OPEN_STORES: Dict[Tuple[str, str, str], AnalysisStore] = {}


def _readonly_store(store_spec: Tuple[str, str, str]) -> AnalysisStore:
    store = _OPEN_STORES.get(store_spec)
    if store is None:
        path, version, backend = store_spec
        store = AnalysisStore(path, version=version, backend=backend,
                              readonly=True)
        _OPEN_STORES[store_spec] = store
    return store


def execute(task: Tuple[WorkUnit, Optional[Tuple[str, str, str]]]) -> Dict[str, object]:
    """Pool entry point: ``(unit, store_spec)`` with the store opened
    read-only inside the worker (the coordinator is the only writer)."""
    unit, store_spec = task
    if store_spec is None:
        return _ship_telemetry(run_work_unit(unit, store=None))
    store = _readonly_store(store_spec)
    try:
        return _ship_telemetry(run_work_unit(unit, store=store))
    finally:
        # Each unit's payload carries its own touched-key delta; dropping
        # the consumed log keeps long-lived pool workers from accumulating
        # one entry per store hit forever.
        store.touched_keys.clear()


def _ship_telemetry(payload: Dict[str, object]) -> Dict[str, object]:
    """Attach this worker's drained span buffer to a pool payload.

    The coordinator pops these fields, rebases the timestamps with the
    shipped clock epoch and merges the spans onto its own timeline under a
    ``worker-<pid>`` lane.  They never reach verdict output or the store
    (``_PERSISTED_FIELDS`` excludes them), so traced and untraced runs stay
    byte-identical.
    """
    if TRACER.enabled:
        payload["spans"] = TRACER.drain()
        payload["span_epoch"] = TRACER.clock_epoch()
    return payload


def execute_indexed(task: Tuple[int, WorkUnit, Optional[Tuple[str, str, str]]]) \
        -> Tuple[int, Dict[str, object]]:
    """``imap_unordered`` entry point: tags the payload with its input index
    so the streaming coordinator can restore deterministic output order."""
    index, unit, store_spec = task
    return index, execute((unit, store_spec))
