"""Abstract syntax tree of the mini-C language.

Nodes are plain data classes with positional fields; the parser builds them
and the lowering pass consumes them.  Every node records the source line it
came from so that error messages can point back at the program text.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


class Node:
    """Base class for AST nodes."""

    def __init__(self, line: int = 0) -> None:
        self.line = line

    def __repr__(self) -> str:
        return "<{}>".format(type(self).__name__)


# ---------------------------------------------------------------------------
# Types (syntactic)
# ---------------------------------------------------------------------------

class TypeSpec(Node):
    """A type as written in the source: base name plus pointer depth."""

    def __init__(self, base: str, pointer_depth: int = 0, line: int = 0) -> None:
        super().__init__(line)
        self.base = base                  # "int" or "void"
        self.pointer_depth = pointer_depth

    def __repr__(self) -> str:
        return "<TypeSpec {}{}>".format(self.base, "*" * self.pointer_depth)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expression(Node):
    pass


class IntLiteral(Expression):
    def __init__(self, value: int, line: int = 0) -> None:
        super().__init__(line)
        self.value = value


class VariableRef(Expression):
    def __init__(self, name: str, line: int = 0) -> None:
        super().__init__(line)
        self.name = name


class BinaryExpr(Expression):
    """Arithmetic, comparison or logical binary expression."""

    def __init__(self, op: str, lhs: Expression, rhs: Expression, line: int = 0) -> None:
        super().__init__(line)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class UnaryExpr(Expression):
    """Unary minus, logical not, pointer dereference."""

    def __init__(self, op: str, operand: Expression, line: int = 0) -> None:
        super().__init__(line)
        self.op = op                      # "-", "!", "*"
        self.operand = operand


class IndexExpr(Expression):
    """Array or pointer indexing: ``base[index]``."""

    def __init__(self, base: Expression, index: Expression, line: int = 0) -> None:
        super().__init__(line)
        self.base = base
        self.index = index


class CallExpr(Expression):
    def __init__(self, callee: str, arguments: Sequence[Expression], line: int = 0) -> None:
        super().__init__(line)
        self.callee = callee
        self.arguments = list(arguments)


class AssignExpr(Expression):
    """Assignment (possibly compound): ``target op= value``."""

    def __init__(self, target: Expression, value: Expression, op: str = "=", line: int = 0) -> None:
        super().__init__(line)
        self.target = target
        self.value = value
        self.op = op                      # "=", "+=", "-=", "*=", "/="


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Statement(Node):
    pass


class Declarator(Node):
    """One declared name: optional array size and optional initialiser."""

    def __init__(self, name: str, array_size: Optional[int] = None,
                 initializer: Optional[Expression] = None, pointer_depth: int = 0,
                 line: int = 0) -> None:
        super().__init__(line)
        self.name = name
        self.array_size = array_size
        self.initializer = initializer
        self.pointer_depth = pointer_depth


class DeclarationStmt(Statement):
    """``int i, j = 0, *p;``"""

    def __init__(self, type_spec: TypeSpec, declarators: Sequence[Declarator], line: int = 0) -> None:
        super().__init__(line)
        self.type_spec = type_spec
        self.declarators = list(declarators)


class ExpressionStmt(Statement):
    def __init__(self, expression: Expression, line: int = 0) -> None:
        super().__init__(line)
        self.expression = expression


class BlockStmt(Statement):
    def __init__(self, statements: Sequence[Statement], line: int = 0) -> None:
        super().__init__(line)
        self.statements = list(statements)


class IfStmt(Statement):
    def __init__(self, condition: Expression, then_branch: Statement,
                 else_branch: Optional[Statement] = None, line: int = 0) -> None:
        super().__init__(line)
        self.condition = condition
        self.then_branch = then_branch
        self.else_branch = else_branch


class WhileStmt(Statement):
    def __init__(self, condition: Expression, body: Statement, line: int = 0) -> None:
        super().__init__(line)
        self.condition = condition
        self.body = body


class ForStmt(Statement):
    """``for (init; condition; step) body`` — every header part optional."""

    def __init__(self, init: Optional[Statement], condition: Optional[Expression],
                 step: Optional[Expression], body: Statement, line: int = 0) -> None:
        super().__init__(line)
        self.init = init
        self.condition = condition
        self.step = step
        self.body = body


class ReturnStmt(Statement):
    def __init__(self, value: Optional[Expression], line: int = 0) -> None:
        super().__init__(line)
        self.value = value


class BreakStmt(Statement):
    pass


class ContinueStmt(Statement):
    pass


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------

class Parameter(Node):
    def __init__(self, type_spec: TypeSpec, name: str, line: int = 0) -> None:
        super().__init__(line)
        self.type_spec = type_spec
        self.name = name


class FunctionDef(Node):
    def __init__(self, return_type: TypeSpec, name: str,
                 parameters: Sequence[Parameter], body: BlockStmt, line: int = 0) -> None:
        super().__init__(line)
        self.return_type = return_type
        self.name = name
        self.parameters = list(parameters)
        self.body = body


class Program(Node):
    def __init__(self, functions: Sequence[FunctionDef], line: int = 0) -> None:
        super().__init__(line)
        self.functions = list(functions)

    def function(self, name: str) -> Optional[FunctionDef]:
        for function in self.functions:
            if function.name == name:
                return function
        return None
