"""Recursive-descent parser for the mini-C language."""

from __future__ import annotations

from typing import List, Optional

from repro.frontend import ast
from repro.frontend.lexer import Token, tokenize


class ParseError(Exception):
    """Raised when the token stream does not form a valid program."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__("{} at line {}, column {} (near {!r})".format(
            message, token.line, token.column, token.text or "<eof>"))
        self.token = token


#: binary operator precedence (larger binds tighter); assignment is handled
#: separately because it is right-associative and restricted to lvalues.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3, "!=": 3,
    "<": 4, "<=": 4, ">": 4, ">=": 4,
    "+": 5, "-": 5,
    "*": 6, "/": 6, "%": 6,
}

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=")


class Parser:
    """Parses a token list into an :class:`repro.frontend.ast.Program`."""

    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    # -- token helpers ----------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.position += 1
        return token

    def check_op(self, text: str) -> bool:
        return self.current.is_op(text)

    def accept_op(self, text: str) -> bool:
        if self.check_op(text):
            self.advance()
            return True
        return False

    def expect_op(self, text: str) -> Token:
        if not self.check_op(text):
            raise ParseError("expected {!r}".format(text), self.current)
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind != "ident":
            raise ParseError("expected an identifier", self.current)
        return self.advance()

    def at_type_keyword(self) -> bool:
        return self.current.is_keyword("int") or self.current.is_keyword("void")

    # -- top level --------------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        functions: List[ast.FunctionDef] = []
        while self.current.kind != "eof":
            functions.append(self.parse_function())
        return ast.Program(functions)

    def parse_type_spec(self) -> ast.TypeSpec:
        token = self.current
        if not self.at_type_keyword():
            raise ParseError("expected a type name", token)
        self.advance()
        depth = 0
        while self.accept_op("*"):
            depth += 1
        return ast.TypeSpec(token.text, depth, token.line)

    def parse_function(self) -> ast.FunctionDef:
        return_type = self.parse_type_spec()
        name = self.expect_ident()
        self.expect_op("(")
        parameters: List[ast.Parameter] = []
        if not self.check_op(")"):
            while True:
                if self.current.is_keyword("void") and self.tokens[self.position + 1].is_op(")"):
                    self.advance()
                    break
                param_type = self.parse_type_spec()
                param_name = self.expect_ident()
                parameters.append(ast.Parameter(param_type, param_name.text, param_name.line))
                if not self.accept_op(","):
                    break
        self.expect_op(")")
        body = self.parse_block()
        return ast.FunctionDef(return_type, name.text, parameters, body, name.line)

    # -- statements ----------------------------------------------------------------------
    def parse_block(self) -> ast.BlockStmt:
        open_brace = self.expect_op("{")
        statements: List[ast.Statement] = []
        while not self.check_op("}"):
            if self.current.kind == "eof":
                raise ParseError("unterminated block", self.current)
            statements.append(self.parse_statement())
        self.expect_op("}")
        return ast.BlockStmt(statements, open_brace.line)

    def parse_statement(self) -> ast.Statement:
        token = self.current
        if token.is_op("{"):
            return self.parse_block()
        if self.at_type_keyword():
            return self.parse_declaration()
        if token.is_keyword("if"):
            return self.parse_if()
        if token.is_keyword("while"):
            return self.parse_while()
        if token.is_keyword("for"):
            return self.parse_for()
        if token.is_keyword("return"):
            self.advance()
            value: Optional[ast.Expression] = None
            if not self.check_op(";"):
                value = self.parse_expression()
            self.expect_op(";")
            return ast.ReturnStmt(value, token.line)
        if token.is_keyword("break"):
            self.advance()
            self.expect_op(";")
            return ast.BreakStmt(token.line)
        if token.is_keyword("continue"):
            self.advance()
            self.expect_op(";")
            return ast.ContinueStmt(token.line)
        if token.is_op(";"):
            self.advance()
            return ast.BlockStmt([], token.line)
        expression = self.parse_expression()
        self.expect_op(";")
        return ast.ExpressionStmt(expression, token.line)

    def parse_declaration(self) -> ast.DeclarationStmt:
        type_spec = self.parse_type_spec()
        declarators: List[ast.Declarator] = []
        while True:
            depth = 0
            while self.accept_op("*"):
                depth += 1
            name = self.expect_ident()
            array_size: Optional[int] = None
            if self.accept_op("["):
                size_token = self.current
                if size_token.kind != "int":
                    raise ParseError("array sizes must be integer literals", size_token)
                self.advance()
                array_size = int(size_token.text)
                self.expect_op("]")
            initializer: Optional[ast.Expression] = None
            if self.accept_op("="):
                initializer = self.parse_expression()
            declarators.append(ast.Declarator(name.text, array_size, initializer, depth, name.line))
            if not self.accept_op(","):
                break
        self.expect_op(";")
        return ast.DeclarationStmt(type_spec, declarators, type_spec.line)

    def parse_if(self) -> ast.IfStmt:
        token = self.advance()
        self.expect_op("(")
        condition = self.parse_expression()
        self.expect_op(")")
        then_branch = self.parse_statement()
        else_branch: Optional[ast.Statement] = None
        if self.current.is_keyword("else"):
            self.advance()
            else_branch = self.parse_statement()
        return ast.IfStmt(condition, then_branch, else_branch, token.line)

    def parse_while(self) -> ast.WhileStmt:
        token = self.advance()
        self.expect_op("(")
        condition = self.parse_expression()
        self.expect_op(")")
        body = self.parse_statement()
        return ast.WhileStmt(condition, body, token.line)

    def parse_for(self) -> ast.ForStmt:
        token = self.advance()
        self.expect_op("(")
        init: Optional[ast.Statement] = None
        if not self.check_op(";"):
            if self.at_type_keyword():
                init = self.parse_declaration()
            else:
                expression = self.parse_comma_expression()
                self.expect_op(";")
                init = ast.ExpressionStmt(expression, token.line)
        else:
            self.expect_op(";")
        condition: Optional[ast.Expression] = None
        if not self.check_op(";"):
            condition = self.parse_expression()
        self.expect_op(";")
        step: Optional[ast.Expression] = None
        if not self.check_op(")"):
            step = self.parse_comma_expression()
        self.expect_op(")")
        body = self.parse_statement()
        return ast.ForStmt(init, condition, step, body, token.line)

    # -- expressions -----------------------------------------------------------------------
    def parse_comma_expression(self) -> ast.Expression:
        """Comma-separated expressions (used in for-headers); evaluates left
        to right, value of the last one."""
        expression = self.parse_expression()
        while self.accept_op(","):
            right = self.parse_expression()
            # Represent the sequence as a right-leaning "," binary node so the
            # lowering can emit both sides for their side effects.
            expression = ast.BinaryExpr(",", expression, right, right.line)
        return expression

    def parse_expression(self) -> ast.Expression:
        return self.parse_assignment()

    def parse_assignment(self) -> ast.Expression:
        left = self.parse_binary(0)
        token = self.current
        if token.kind == "op" and token.text in _ASSIGN_OPS:
            self.advance()
            value = self.parse_assignment()
            return ast.AssignExpr(left, value, token.text, token.line)
        return left

    def parse_binary(self, min_precedence: int) -> ast.Expression:
        left = self.parse_unary()
        while True:
            token = self.current
            if token.kind != "op" or token.text not in _PRECEDENCE:
                return left
            precedence = _PRECEDENCE[token.text]
            if precedence < min_precedence:
                return left
            self.advance()
            right = self.parse_binary(precedence + 1)
            left = ast.BinaryExpr(token.text, left, right, token.line)

    def parse_unary(self) -> ast.Expression:
        token = self.current
        if token.is_op("-"):
            self.advance()
            return ast.UnaryExpr("-", self.parse_unary(), token.line)
        if token.is_op("!"):
            self.advance()
            return ast.UnaryExpr("!", self.parse_unary(), token.line)
        if token.is_op("*"):
            self.advance()
            return ast.UnaryExpr("*", self.parse_unary(), token.line)
        if token.is_op("&"):
            self.advance()
            return ast.UnaryExpr("&", self.parse_unary(), token.line)
        if token.is_op("++") or token.is_op("--"):
            # Pre-increment / pre-decrement sugar: ++x  =>  x += 1.
            self.advance()
            operand = self.parse_unary()
            op = "+=" if token.text == "++" else "-="
            return ast.AssignExpr(operand, ast.IntLiteral(1, token.line), op, token.line)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expression:
        expression = self.parse_primary()
        while True:
            token = self.current
            if token.is_op("["):
                self.advance()
                index = self.parse_expression()
                self.expect_op("]")
                expression = ast.IndexExpr(expression, index, token.line)
            elif token.is_op("++") or token.is_op("--"):
                # Post-increment in statement position behaves like the
                # pre-form for our purposes (the value is not used).
                self.advance()
                op = "+=" if token.text == "++" else "-="
                expression = ast.AssignExpr(expression, ast.IntLiteral(1, token.line), op, token.line)
            else:
                return expression

    def parse_primary(self) -> ast.Expression:
        token = self.current
        if token.kind == "int":
            self.advance()
            return ast.IntLiteral(int(token.text), token.line)
        if token.kind == "ident":
            self.advance()
            if self.check_op("("):
                self.advance()
                arguments: List[ast.Expression] = []
                if not self.check_op(")"):
                    while True:
                        arguments.append(self.parse_expression())
                        if not self.accept_op(","):
                            break
                self.expect_op(")")
                return ast.CallExpr(token.text, arguments, token.line)
            return ast.VariableRef(token.text, token.line)
        if token.is_op("("):
            self.advance()
            expression = self.parse_expression()
            self.expect_op(")")
            return expression
        raise ParseError("expected an expression", token)


def parse_program(source: str) -> ast.Program:
    """Parse mini-C ``source`` text into an AST."""
    return Parser(tokenize(source)).parse_program()
