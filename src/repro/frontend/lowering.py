"""Lowering mini-C ASTs to the SSA IR.

The translation is the textbook one: every local variable becomes an
``alloca`` slot accessed through loads and stores, control flow becomes
explicit basic blocks, and a final mem2reg pass promotes the scalar slots to
SSA registers so that the analyses see the same shape of code Clang + LLVM
``-mem2reg`` would produce for the paper's C programs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.frontend import ast
from repro.frontend.parser import parse_program
from repro.ir import (
    BasicBlock,
    Function,
    INT,
    IRBuilder,
    Module,
    VOID,
    pointer_to,
)
from repro.ir.cfg import remove_unreachable_blocks
from repro.ir.instructions import Jump, Return
from repro.ir.ssa import promote_memory_to_registers
from repro.ir.types import Type
from repro.ir.values import ConstantInt, Value
from repro.ir.verifier import verify_module
from repro.obs import TRACER

_COMPARISONS = {"<": "slt", "<=": "sle", ">": "sgt", ">=": "sge", "==": "eq", "!=": "ne"}
_ARITHMETIC = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem"}


class LoweringError(Exception):
    """Raised when the program uses a construct outside the supported subset."""


def _lower_type(spec: ast.TypeSpec, extra_depth: int = 0) -> Type:
    depth = spec.pointer_depth + extra_depth
    if spec.base == "void":
        if depth == 0:
            return VOID
        return pointer_to(INT, depth)
    if spec.base == "int":
        if depth == 0:
            return INT
        return pointer_to(INT, depth)
    raise LoweringError("unknown type name {!r}".format(spec.base))


class _Scope:
    """A lexical scope mapping names to their alloca slot and element type."""

    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.parent = parent
        self.slots: Dict[str, Tuple[Value, Type, bool]] = {}

    def declare(self, name: str, slot: Value, value_type: Type, is_array: bool) -> None:
        self.slots[name] = (slot, value_type, is_array)

    def lookup(self, name: str) -> Optional[Tuple[Value, Type, bool]]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.slots:
                return scope.slots[name]
            scope = scope.parent
        return None


class _FunctionLowering:
    """Lowers the body of one function."""

    def __init__(self, module: Module, function: Function, definition: ast.FunctionDef) -> None:
        self.module = module
        self.function = function
        self.definition = definition
        self.builder = IRBuilder()
        self.scope = _Scope()
        self.loop_stack: List[Tuple[BasicBlock, BasicBlock]] = []  # (continue, break)
        self._name_counts: Dict[str, int] = {}

    def _fresh(self, hint: str) -> str:
        """Readable value names, made unique per function."""
        count = self._name_counts.get(hint, 0)
        self._name_counts[hint] = count + 1
        return hint if count == 0 else "{}.{}".format(hint, count)

    # -- plumbing --------------------------------------------------------------------
    def _new_block(self, hint: str) -> BasicBlock:
        return self.function.append_block(name=self.function.next_block_name(hint))

    def _current_block_terminated(self) -> bool:
        block = self.builder.block
        return block is not None and block.terminator is not None

    def _ensure_open_block(self, hint: str = "dead") -> None:
        """Statements after a return/break land in a fresh (unreachable) block."""
        if self._current_block_terminated():
            self.builder.set_insert_point(self._new_block(hint))

    # -- entry point -------------------------------------------------------------------
    def run(self) -> None:
        entry = self._new_block("entry")
        self.builder.set_insert_point(entry)
        for argument, parameter in zip(self.function.arguments, self.definition.parameters):
            slot = self.builder.alloca(argument.type, self._fresh(parameter.name + ".addr"))
            self.builder.store(argument, slot)
            self.scope.declare(parameter.name, slot, argument.type, is_array=False)
        self.lower_block(self.definition.body, _Scope(self.scope))
        if not self._current_block_terminated():
            if self.function.return_type.is_void():
                self.builder.ret(None)
            else:
                self.builder.ret(self.builder.const(0))

    # -- statements ------------------------------------------------------------------------
    def lower_statement(self, statement: ast.Statement, scope: _Scope) -> None:
        self._ensure_open_block()
        if isinstance(statement, ast.BlockStmt):
            self.lower_block(statement, _Scope(scope))
        elif isinstance(statement, ast.DeclarationStmt):
            self.lower_declaration(statement, scope)
        elif isinstance(statement, ast.ExpressionStmt):
            self.lower_expression(statement.expression, scope)
        elif isinstance(statement, ast.IfStmt):
            self.lower_if(statement, scope)
        elif isinstance(statement, ast.WhileStmt):
            self.lower_while(statement, scope)
        elif isinstance(statement, ast.ForStmt):
            self.lower_for(statement, scope)
        elif isinstance(statement, ast.ReturnStmt):
            value = None
            if statement.value is not None:
                value = self.lower_expression(statement.value, scope)
            self.builder.ret(value)
        elif isinstance(statement, ast.BreakStmt):
            if not self.loop_stack:
                raise LoweringError("break outside of a loop (line {})".format(statement.line))
            self.builder.jump(self.loop_stack[-1][1])
        elif isinstance(statement, ast.ContinueStmt):
            if not self.loop_stack:
                raise LoweringError("continue outside of a loop (line {})".format(statement.line))
            self.builder.jump(self.loop_stack[-1][0])
        else:
            raise LoweringError("unsupported statement {!r}".format(statement))

    def lower_block(self, block: ast.BlockStmt, scope: _Scope) -> None:
        for statement in block.statements:
            self.lower_statement(statement, scope)

    def lower_declaration(self, declaration: ast.DeclarationStmt, scope: _Scope) -> None:
        for declarator in declaration.declarators:
            value_type = _lower_type(declaration.type_spec, declarator.pointer_depth)
            if value_type.is_void():
                raise LoweringError("cannot declare a void variable (line {})".format(declarator.line))
            if declarator.array_size is not None:
                slot = self.builder.alloca(value_type, self._fresh(declarator.name),
                                           array_size=self.builder.const(declarator.array_size))
                scope.declare(declarator.name, slot, value_type, is_array=True)
            else:
                slot = self.builder.alloca(value_type, self._fresh(declarator.name))
                scope.declare(declarator.name, slot, value_type, is_array=False)
                if declarator.initializer is not None:
                    value = self.lower_expression(declarator.initializer, scope)
                    self.builder.store(value, slot)

    def lower_if(self, statement: ast.IfStmt, scope: _Scope) -> None:
        then_block = self._new_block("if.then")
        merge_block = self._new_block("if.end")
        else_block = self._new_block("if.else") if statement.else_branch is not None else merge_block
        self.lower_condition(statement.condition, then_block, else_block, scope)
        self.builder.set_insert_point(then_block)
        self.lower_statement(statement.then_branch, _Scope(scope))
        if not self._current_block_terminated():
            self.builder.jump(merge_block)
        if statement.else_branch is not None:
            self.builder.set_insert_point(else_block)
            self.lower_statement(statement.else_branch, _Scope(scope))
            if not self._current_block_terminated():
                self.builder.jump(merge_block)
        self.builder.set_insert_point(merge_block)

    def lower_while(self, statement: ast.WhileStmt, scope: _Scope) -> None:
        header = self._new_block("while.cond")
        body = self._new_block("while.body")
        exit_block = self._new_block("while.end")
        self.builder.jump(header)
        self.builder.set_insert_point(header)
        self.lower_condition(statement.condition, body, exit_block, scope)
        self.builder.set_insert_point(body)
        self.loop_stack.append((header, exit_block))
        self.lower_statement(statement.body, _Scope(scope))
        self.loop_stack.pop()
        if not self._current_block_terminated():
            self.builder.jump(header)
        self.builder.set_insert_point(exit_block)

    def lower_for(self, statement: ast.ForStmt, scope: _Scope) -> None:
        for_scope = _Scope(scope)
        if statement.init is not None:
            self.lower_statement(statement.init, for_scope)
        header = self._new_block("for.cond")
        body = self._new_block("for.body")
        step_block = self._new_block("for.step")
        exit_block = self._new_block("for.end")
        self.builder.jump(header)
        self.builder.set_insert_point(header)
        if statement.condition is not None:
            self.lower_condition(statement.condition, body, exit_block, for_scope)
        else:
            self.builder.jump(body)
        self.builder.set_insert_point(body)
        self.loop_stack.append((step_block, exit_block))
        self.lower_statement(statement.body, _Scope(for_scope))
        self.loop_stack.pop()
        if not self._current_block_terminated():
            self.builder.jump(step_block)
        self.builder.set_insert_point(step_block)
        if statement.step is not None:
            self.lower_expression(statement.step, for_scope)
        self.builder.jump(header)
        self.builder.set_insert_point(exit_block)

    # -- conditions ----------------------------------------------------------------------------
    def lower_condition(self, expression: ast.Expression, true_block: BasicBlock,
                        false_block: BasicBlock, scope: _Scope) -> None:
        if isinstance(expression, ast.BinaryExpr) and expression.op == "&&":
            middle = self._new_block("land")
            self.lower_condition(expression.lhs, middle, false_block, scope)
            self.builder.set_insert_point(middle)
            self.lower_condition(expression.rhs, true_block, false_block, scope)
            return
        if isinstance(expression, ast.BinaryExpr) and expression.op == "||":
            middle = self._new_block("lor")
            self.lower_condition(expression.lhs, true_block, middle, scope)
            self.builder.set_insert_point(middle)
            self.lower_condition(expression.rhs, true_block, false_block, scope)
            return
        if isinstance(expression, ast.UnaryExpr) and expression.op == "!":
            self.lower_condition(expression.operand, false_block, true_block, scope)
            return
        if isinstance(expression, ast.BinaryExpr) and expression.op in _COMPARISONS:
            lhs = self.lower_expression(expression.lhs, scope)
            rhs = self.lower_expression(expression.rhs, scope)
            condition = self.builder.icmp(_COMPARISONS[expression.op], lhs, rhs)
            self.builder.branch(condition, true_block, false_block)
            return
        if isinstance(expression, ast.IntLiteral):
            self.builder.jump(true_block if expression.value != 0 else false_block)
            return
        value = self.lower_expression(expression, scope)
        condition = self.builder.icmp_ne(value, self.builder.const(0))
        self.builder.branch(condition, true_block, false_block)

    # -- expressions -----------------------------------------------------------------------------
    def lower_expression(self, expression: ast.Expression, scope: _Scope) -> Value:
        if isinstance(expression, ast.IntLiteral):
            return self.builder.const(expression.value)
        if isinstance(expression, ast.VariableRef):
            return self._load_variable(expression, scope)
        if isinstance(expression, ast.AssignExpr):
            return self.lower_assignment(expression, scope)
        if isinstance(expression, ast.BinaryExpr):
            return self.lower_binary(expression, scope)
        if isinstance(expression, ast.UnaryExpr):
            return self.lower_unary(expression, scope)
        if isinstance(expression, ast.IndexExpr):
            address = self.lower_address(expression, scope)
            return self.builder.load(address)
        if isinstance(expression, ast.CallExpr):
            return self.lower_call(expression, scope)
        raise LoweringError("unsupported expression {!r}".format(expression))

    def _load_variable(self, reference: ast.VariableRef, scope: _Scope) -> Value:
        entry = scope.lookup(reference.name)
        if entry is None:
            raise LoweringError("use of undeclared variable {!r} (line {})".format(
                reference.name, reference.line))
        slot, value_type, is_array = entry
        if is_array:
            # Arrays decay to a pointer to their first element.
            return slot
        return self.builder.load(slot, self._fresh(reference.name + ".val"))

    def lower_address(self, expression: ast.Expression, scope: _Scope) -> Value:
        """Lower an lvalue expression to the address it designates."""
        if isinstance(expression, ast.VariableRef):
            entry = scope.lookup(expression.name)
            if entry is None:
                raise LoweringError("use of undeclared variable {!r} (line {})".format(
                    expression.name, expression.line))
            slot, _value_type, is_array = entry
            if is_array:
                raise LoweringError("cannot assign to an array name (line {})".format(expression.line))
            return slot
        if isinstance(expression, ast.IndexExpr):
            base = self.lower_expression(expression.base, scope)
            if not base.type.is_pointer():
                raise LoweringError("indexing a non-pointer value (line {})".format(expression.line))
            index = self.lower_expression(expression.index, scope)
            return self.builder.gep(base, index)
        if isinstance(expression, ast.UnaryExpr) and expression.op == "*":
            pointer = self.lower_expression(expression.operand, scope)
            if not pointer.type.is_pointer():
                raise LoweringError("dereferencing a non-pointer value (line {})".format(expression.line))
            return pointer
        raise LoweringError("expression is not assignable (line {})".format(expression.line))

    def lower_assignment(self, assignment: ast.AssignExpr, scope: _Scope) -> Value:
        address = self.lower_address(assignment.target, scope)
        value = self.lower_expression(assignment.value, scope)
        if assignment.op != "=":
            current = self.builder.load(address)
            op = _ARITHMETIC[assignment.op[0]]
            value = self._arith(op, current, value)
        self.builder.store(value, address)
        return value

    def lower_binary(self, expression: ast.BinaryExpr, scope: _Scope) -> Value:
        if expression.op == ",":
            self.lower_expression(expression.lhs, scope)
            return self.lower_expression(expression.rhs, scope)
        if expression.op in ("&&", "||"):
            raise LoweringError(
                "logical operators are only supported in conditions (line {})".format(expression.line))
        lhs = self.lower_expression(expression.lhs, scope)
        rhs = self.lower_expression(expression.rhs, scope)
        if expression.op in _COMPARISONS:
            return self.builder.icmp(_COMPARISONS[expression.op], lhs, rhs)
        if expression.op in _ARITHMETIC:
            return self._arith(_ARITHMETIC[expression.op], lhs, rhs)
        raise LoweringError("unsupported binary operator {!r} (line {})".format(
            expression.op, expression.line))

    def _arith(self, op: str, lhs: Value, rhs: Value) -> Value:
        # Pointer arithmetic becomes gep; everything else is plain arithmetic.
        if lhs.type.is_pointer() and rhs.type.is_int():
            if op == "add":
                return self.builder.gep(lhs, rhs)
            if op == "sub":
                negated = self.builder.sub(self.builder.const(0), rhs)
                return self.builder.gep(lhs, negated)
            raise LoweringError("unsupported pointer arithmetic {!r}".format(op))
        if rhs.type.is_pointer() and lhs.type.is_int() and op == "add":
            return self.builder.gep(rhs, lhs)
        return self.builder.binary(op, lhs, rhs)

    def lower_unary(self, expression: ast.UnaryExpr, scope: _Scope) -> Value:
        if expression.op == "-":
            operand = self.lower_expression(expression.operand, scope)
            return self.builder.sub(self.builder.const(0), operand)
        if expression.op == "*":
            pointer = self.lower_expression(expression.operand, scope)
            if not pointer.type.is_pointer():
                raise LoweringError("dereferencing a non-pointer value (line {})".format(expression.line))
            return self.builder.load(pointer)
        if expression.op == "!":
            operand = self.lower_expression(expression.operand, scope)
            return self.builder.icmp_eq(operand, self.builder.const(0))
        if expression.op == "&":
            # Address-of: the operand's slot/element address becomes a value.
            # The touched alloca is no longer promotable, which is exactly
            # what a C compiler does when a local's address escapes.
            return self.lower_address(expression.operand, scope)
        raise LoweringError("unsupported unary operator {!r}".format(expression.op))

    def lower_call(self, call: ast.CallExpr, scope: _Scope) -> Value:
        if call.callee == "malloc":
            if len(call.arguments) != 1:
                raise LoweringError("malloc takes exactly one argument (line {})".format(call.line))
            size = self.lower_expression(call.arguments[0], scope)
            return self.builder.malloc(INT, size)
        callee = self.module.get_function(call.callee)
        if callee is None:
            raise LoweringError("call to undefined function {!r} (line {})".format(
                call.callee, call.line))
        arguments = [self.lower_expression(argument, scope) for argument in call.arguments]
        if len(arguments) != len(callee.arguments):
            raise LoweringError("wrong number of arguments in call to {!r} (line {})".format(
                call.callee, call.line))
        return self.builder.call(callee, arguments)


def lower_program(program: ast.Program, module_name: str = "program",
                  promote: bool = True, verify: bool = True) -> Module:
    """Lower a parsed program to an IR module.

    ``promote`` runs mem2reg after lowering (recommended: the analyses expect
    SSA scalars).  ``verify`` runs the IR verifier on the result.
    """
    module = Module(module_name)
    # First pass: declare every function so calls can be resolved.
    for definition in program.functions:
        return_type = _lower_type(definition.return_type)
        arg_types = [_lower_type(p.type_spec) for p in definition.parameters]
        arg_names = [p.name for p in definition.parameters]
        module.create_function(definition.name, return_type, arg_types, arg_names)
    # Second pass: lower bodies.
    for definition in program.functions:
        function = module.get_function(definition.name)
        assert function is not None
        _FunctionLowering(module, function, definition).run()
        remove_unreachable_blocks(function)
        if promote:
            promote_memory_to_registers(function)
    if verify:
        verify_module(module)
    return module


def compile_source(source: str, module_name: str = "program",
                   promote: bool = True, verify: bool = True) -> Module:
    """Parse and lower mini-C ``source`` text to an IR module."""
    with TRACER.span("frontend.parse", module=module_name):
        program = parse_program(source)
    with TRACER.span("frontend.lower", module=module_name,
                     functions=len(program.functions)):
        return lower_program(program, module_name, promote, verify)
