"""A mini-C frontend.

The paper's motivating programs (Figure 1) and its Csmith-generated
workloads are C code.  This package provides a small C-like language — just
enough to express those programs — together with a lexer, a recursive
descent parser, and a lowering pass that produces our SSA IR (local scalars
are first lowered to ``alloca`` slots and then promoted by mem2reg).

Supported subset: ``int``/``void`` types with arbitrary pointer depth,
function definitions and calls, local declarations (including fixed-size
arrays), assignments and compound assignments, arithmetic / comparison /
logical operators, array indexing, pointer dereference, ``if``/``else``,
``while``, ``for``, ``break``, ``continue``, ``return`` and a built-in
``malloc``.
"""

from repro.frontend.lexer import LexerError, Token, tokenize
from repro.frontend.parser import ParseError, parse_program
from repro.frontend.lowering import LoweringError, compile_source, lower_program
from repro.frontend import ast

__all__ = [
    "LexerError",
    "Token",
    "tokenize",
    "ParseError",
    "parse_program",
    "LoweringError",
    "compile_source",
    "lower_program",
    "ast",
]
