"""Tokenizer for the mini-C language."""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Optional

KEYWORDS = {
    "int", "void", "if", "else", "while", "for", "return", "break", "continue",
}

# Multi-character operators must be listed before their prefixes.
OPERATORS = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=",
    "++", "--",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",",
]


class LexerError(Exception):
    """Raised on malformed input text."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__("{} (line {}, column {})".format(message, line, column))
        self.line = line
        self.column = column


class Token(NamedTuple):
    """One lexical token."""

    kind: str        # "int", "ident", "keyword", "op", "eof"
    text: str
    line: int
    column: int

    def is_op(self, text: str) -> bool:
        return self.kind == "op" and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind == "keyword" and self.text == text


def tokenize(source: str) -> List[Token]:
    """Convert ``source`` into a token list terminated by an ``eof`` token."""
    tokens: List[Token] = []
    line, column = 1, 1
    index = 0
    length = len(source)

    def error(message: str) -> LexerError:
        return LexerError(message, line, column)

    while index < length:
        ch = source[index]
        # Whitespace.
        if ch in " \t\r":
            index += 1
            column += 1
            continue
        if ch == "\n":
            index += 1
            line += 1
            column = 1
            continue
        # Comments.
        if source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end == -1:
                raise error("unterminated block comment")
            skipped = source[index:end + 2]
            line += skipped.count("\n")
            index = end + 2
            column = 1
            continue
        # Numbers.
        if ch.isdigit():
            start = index
            while index < length and source[index].isdigit():
                index += 1
            text = source[start:index]
            tokens.append(Token("int", text, line, column))
            column += len(text)
            continue
        # Identifiers and keywords.
        if ch.isalpha() or ch == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            text = source[start:index]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, column))
            column += len(text)
            continue
        # Operators and punctuation.
        matched: Optional[str] = None
        for op in OPERATORS:
            if source.startswith(op, index):
                matched = op
                break
        if matched is None:
            raise error("unexpected character {!r}".format(ch))
        tokens.append(Token("op", matched, line, column))
        index += len(matched)
        column += len(matched)
    tokens.append(Token("eof", "", line, column))
    return tokens
