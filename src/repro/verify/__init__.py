"""Self-checking analyzer: IR lint + fixpoint certificates + verdict audit.

The pipeline's artifacts (e-SSA IR, interval fixpoints, less-than sets,
NoAlias verdicts) are produced by heavily optimized machinery; this package
independently re-validates each of them with deliberately naive checkers,
so a bug shared by every fast implementation still gets caught.

Entry points:

* ``python -m repro check`` — lint + certify source files or synthetic
  workloads, with per-function diagnostics (``--json`` for machines);
* ``REPRO_VERIFY=off|post|paranoid`` / ``ReproConfig.verify`` — run the
  suite automatically after every solve (``paranoid`` also inside pool
  workers, shipping reports back through the shard payload);
* :meth:`repro.api.session.Session.verify` — verify everything a session
  has compiled, returning the merged :class:`VerificationReport`.
"""

from repro.verify.diagnostics import (
    CATEGORIES,
    Diagnostic,
    SEVERITIES,
    VerificationReport,
    VerifyError,
)
from repro.verify.runner import (
    COUNTERS,
    VerifyCounters,
    verify_alias_analysis,
    verify_analysis,
)

__all__ = [
    "CATEGORIES",
    "COUNTERS",
    "Diagnostic",
    "SEVERITIES",
    "VerificationReport",
    "VerifyCounters",
    "VerifyError",
    "verify_alias_analysis",
    "verify_analysis",
]
