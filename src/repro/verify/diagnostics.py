"""Diagnostics and reports of the self-check suite.

A :class:`Diagnostic` is one finding of one checker: which category of
checker produced it (``ir``, ``essa``, ``range``, ``lt``, ``verdict``), how
severe it is (``error`` — the artifact is wrong; ``warning`` — suspicious
but not provably unsound), and which function/value it anchors to.

A :class:`VerificationReport` aggregates the findings of a verification run
together with counters of the checks that *passed* (so "0 problems" is
distinguishable from "0 checks ran").  Reports are plain-data and picklable:
under ``REPRO_VERIFY=paranoid`` pool workers ship them back to the
coordinator through the shard payload (``as_dict``/``from_dict``/``merge``),
exactly like tracing spans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

#: checker categories, in report order.
CATEGORIES = ("ir", "essa", "range", "lt", "verdict")
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one checker."""

    category: str        # one of CATEGORIES
    severity: str        # one of SEVERITIES
    function: str        # name of the function, or "" for module-level findings
    value: str           # name of the offending SSA value, or ""
    message: str

    def format(self) -> str:
        location = "@{}".format(self.function) if self.function else "<module>"
        if self.value:
            location += " %{}".format(self.value)
        return "{} [{}] {}: {}".format(self.severity, self.category,
                                       location, self.message)

    def as_dict(self) -> Dict[str, str]:
        return {
            "category": self.category,
            "severity": self.severity,
            "function": self.function,
            "value": self.value,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, str]) -> "Diagnostic":
        return cls(category=str(data.get("category", "")),
                   severity=str(data.get("severity", "error")),
                   function=str(data.get("function", "")),
                   value=str(data.get("value", "")),
                   message=str(data.get("message", "")))


class VerificationReport:
    """The findings and check counts of one verification run."""

    def __init__(self) -> None:
        self.diagnostics: List[Diagnostic] = []
        #: checks that ran, per category (functions linted, values certified,
        #: LT constraints re-evaluated, verdicts audited).
        self.checked: Dict[str, int] = {category: 0 for category in CATEGORIES}
        #: functions covered by this report.
        self.functions = 0

    # -- recording ---------------------------------------------------------------
    def add(self, category: str, severity: str, function: str, value: str,
            message: str) -> None:
        self.diagnostics.append(Diagnostic(category, severity, function,
                                           value, message))

    def bump(self, category: str, count: int = 1) -> None:
        self.checked[category] = self.checked.get(category, 0) + count

    # -- queries -----------------------------------------------------------------
    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def checks_run(self) -> int:
        return sum(self.checked.values())

    def summary(self) -> str:
        return "{} checks, {} errors, {} warnings over {} functions".format(
            self.checks_run(), len(self.errors), len(self.warnings),
            self.functions)

    # -- aggregation and transport -------------------------------------------------
    def merge(self, other: "VerificationReport") -> "VerificationReport":
        merged = VerificationReport()
        merged.diagnostics = list(self.diagnostics) + list(other.diagnostics)
        for source in (self.checked, other.checked):
            for category, count in source.items():
                merged.checked[category] = merged.checked.get(category, 0) + count
        merged.functions = self.functions + other.functions
        return merged

    def as_dict(self) -> Dict[str, object]:
        return {
            "diagnostics": [d.as_dict() for d in self.diagnostics],
            "checked": dict(self.checked),
            "functions": self.functions,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "VerificationReport":
        report = cls()
        for entry in data.get("diagnostics", []) or []:
            report.diagnostics.append(Diagnostic.from_dict(entry))
        for category, count in (data.get("checked", {}) or {}).items():
            report.checked[str(category)] = int(count)
        report.functions = int(data.get("functions", 0))
        return report

    def raise_if_failed(self, context: str = "") -> "VerificationReport":
        """Raise :class:`VerifyError` when any error-severity finding exists."""
        if not self.ok:
            raise VerifyError(self, context)
        return self

    def __repr__(self) -> str:
        return "<VerificationReport {}>".format(self.summary())


class VerifyError(Exception):
    """A verification run found error-severity problems.

    The full :class:`VerificationReport` rides on ``.report`` so callers
    (the engine hook, ``Session.verify``, tests) can inspect every finding.
    """

    def __init__(self, report: VerificationReport, context: str = "") -> None:
        self.report = report
        head = [d.format() for d in report.errors[:5]]
        more = len(report.errors) - len(head)
        if more > 0:
            head.append("... and {} more".format(more))
        prefix = "{}: ".format(context) if context else ""
        super().__init__("{}verification failed ({}):\n  {}".format(
            prefix, report.summary(), "\n  ".join(head)))
