"""The verification runner: one call validates a whole solved pipeline.

:func:`verify_analysis` runs every checker category over one
:class:`~repro.core.lessthan.analysis.LessThanAnalysis` (which owns the
functions, their range analyses, the constraint system and the solved LT
sets):

1. ``ir``      — structural/SSA lint (:func:`repro.ir.verifier.function_problems`);
2. ``essa``    — σ-placement and σ-completeness lint (:mod:`repro.essa.lint`);
3. ``range``   — the interval post-fixpoint certificate;
4. ``lt``      — the less-than constraint certificate;
5. ``verdict`` — the NoAlias witness audit.

:func:`verify_alias_analysis` adapts the same suite to a prepared
:class:`~repro.core.sraa.StrictInequalityAliasAnalysis` (the engine hook's
entry point), and the module-level :data:`COUNTERS` accumulate run totals
for the ``[verify]`` section of ``python -m repro stats``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.disambiguation import PointerDisambiguator
from repro.core.lessthan.analysis import LessThanAnalysis
from repro.obs import TRACER
from repro.verify.certificate import (
    audit_verdicts,
    check_lt_certificate,
    check_range_certificate,
)
from repro.verify.diagnostics import VerificationReport, VerifyError


class VerifyCounters:
    """Process-wide accumulation of verification work, for ``stats``."""

    def __init__(self) -> None:
        self.runs = 0
        self.functions = 0
        self.checks = 0
        self.errors = 0
        self.warnings = 0

    def record(self, report: VerificationReport) -> None:
        self.runs += 1
        self.functions += report.functions
        self.checks += report.checks_run()
        self.errors += len(report.errors)
        self.warnings += len(report.warnings)

    def absorb(self, data: Dict[str, int]) -> None:
        """Fold a shipped report summary in (the coordinator's merge path)."""
        self.runs += 1
        self.functions += int(data.get("functions", 0))
        self.checks += sum(int(c) for c in (data.get("checked", {}) or {}).values())
        for entry in data.get("diagnostics", []) or []:
            if entry.get("severity") == "warning":
                self.warnings += 1
            else:
                self.errors += 1

    def reset(self) -> None:
        self.__init__()

    def as_dict(self) -> Dict[str, int]:
        return {
            "runs": self.runs,
            "functions": self.functions,
            "checks": self.checks,
            "errors": self.errors,
            "warnings": self.warnings,
        }


#: totals of every verification run in this process.
COUNTERS = VerifyCounters()


def verify_analysis(analysis: LessThanAnalysis,
                    disambiguator: Optional[PointerDisambiguator] = None,
                    audit: bool = True) -> VerificationReport:
    """Run the full checker suite over one solved analysis.

    ``disambiguator`` should be the production disambiguator whose verdicts
    are in use (its claims are what the audit re-justifies); when omitted a
    fresh one is built over ``analysis``.
    """
    from repro.essa.lint import sigma_problems
    from repro.ir.verifier import function_problems

    report = VerificationReport()
    with TRACER.span("verify.run", functions=len(analysis.functions)):
        for function in analysis.functions:
            report.functions += 1
            with TRACER.span("verify.function", fn=function.name):
                report.bump("ir")
                for problem in function_problems(function):
                    report.add("ir", "error", function.name, "", problem)
                report.bump("essa")
                for value, message in sigma_problems(function):
                    report.add("essa", "error", function.name, value, message)
                ranges = analysis.ranges.get(function)
                if ranges is not None:
                    check_range_certificate(function, ranges, report)
        with TRACER.span("verify.lt", constraints=len(analysis.constraints)):
            check_lt_certificate(analysis.constraints, analysis.lt_sets, report)
        if audit:
            if disambiguator is None:
                disambiguator = PointerDisambiguator(analysis)
            with TRACER.span("verify.verdicts"):
                for function in analysis.functions:
                    audit_verdicts(function, disambiguator, analysis.lt_sets,
                                   report)
    COUNTERS.record(report)
    return report


def verify_alias_analysis(sraa: object) -> VerificationReport:
    """Verify a prepared ``StrictInequalityAliasAnalysis``.

    Covers both preparation shapes: one module-level analysis (the engine's
    shape) or several per-function analyses (ad-hoc API use).  Returns the
    merged report; each underlying run is recorded in :data:`COUNTERS`.
    """
    analysis = getattr(sraa, "analysis", None)
    disambiguators = list(sraa.disambiguators())
    if analysis is not None:
        return verify_analysis(
            analysis, disambiguators[0] if disambiguators else None)
    merged = VerificationReport()
    for disambiguator in disambiguators:
        merged = merged.merge(
            verify_analysis(disambiguator.analysis, disambiguator))
    return merged


__all__ = [
    "COUNTERS",
    "VerifyCounters",
    "VerifyError",
    "VerificationReport",
    "verify_alias_analysis",
    "verify_analysis",
]
