"""Fixpoint certificate checkers and the NoAlias verdict audit.

The solvers are fast because they are clever (sparse worklists, SCC
condensation, batched kernels, incremental re-solve); the checkers here are
trustworthy because they are dumb.  Each one re-derives an artifact with the
most naive machinery available and compares:

* **range certificate** — the solved interval state is a *post-fixpoint*:
  re-applying every transfer function once, using only the plain
  :class:`~repro.rangeanalysis.interval.Interval` methods (no kernels, no
  tables, no worklists), must produce a result the stored interval
  ``includes``.  A sound over-approximating fixpoint is inductive in exactly
  this sense, whichever solver/kernel/order produced it.

* **less-than certificate** — the final LT sets satisfy every constraint:
  ``LT(target) ⊆ constraint.evaluate(lt_sets)`` for each generated
  constraint (the descending-meet fixpoint property), and no variable owns a
  non-empty LT set without a generating constraint.  Together with induction
  over the constraint system this justifies every reported ``x < y`` edge by
  a constraint or a transitive chain of them.

* **verdict audit** — every pair the production disambiguator reports as
  NoAlias is re-justified from first principles: the copy-equivalence
  classes are re-walked without memoization or truncation
  (``equivalent_names(limit=None)``) and the strict-inequality witness is
  looked up directly in the certified LT sets.  The production
  disambiguator's statistics are snapshotted around the audit so verified
  and unverified runs stay byte-identical in every report.

All checkers append :class:`~repro.verify.diagnostics.Diagnostic`s naming
the offending function and value; none of them mutate analysis state.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

from repro.alias.aaeval import collect_pointer_values
from repro.core.disambiguation import (
    DisambiguationReason,
    PointerDisambiguator,
    _is_variable,
    canonical_value,
    decompose_pointer,
    equivalent_names,
)
from repro.core.lessthan.constraints import Constraint, TOP
from repro.ir.function import Function
from repro.ir.instructions import BinaryOp, Copy, GetElementPtr, ICmp, Load, Phi
from repro.ir.values import Argument, ConstantInt, Undef, Value
from repro.obs import TRACER
from repro.rangeanalysis.analysis import RangeAnalysis
from repro.rangeanalysis.interval import Interval
from repro.verify.diagnostics import VerificationReport


def _value_name(value: Value) -> str:
    return getattr(value, "name", "") or ""


def _short(value: Value) -> str:
    try:
        return value.short_name()
    except Exception:
        return repr(value)


def _function_name(value: Value) -> str:
    function = getattr(value, "function", None)
    return getattr(function, "name", "") or ""


# ---------------------------------------------------------------------------
# Range certificate
# ---------------------------------------------------------------------------

def _operand_range(value: Value, ranges: Dict[Value, Interval]) -> Interval:
    if isinstance(value, ConstantInt):
        return Interval.constant(value.value)
    if isinstance(value, Undef):
        return Interval.top()
    return ranges.get(value, Interval.top())


def _refine_sigma(copy: Copy, source_range: Interval,
                  ranges: Dict[Value, Interval]) -> Interval:
    condition = getattr(copy, "sigma_condition", None)
    if not isinstance(condition, ICmp):
        return source_range
    side = getattr(copy, "sigma_operand_side", None)
    on_true = getattr(copy, "sigma_on_true_branch", True)
    lhs_range = _operand_range(condition.lhs, ranges)
    rhs_range = _operand_range(condition.rhs, ranges)
    predicate = condition.predicate
    if not on_true:
        predicate = ICmp.NEGATED[predicate]
    if side == "lhs":
        mine, other = source_range, rhs_range
    elif side == "rhs":
        mine, other = source_range, lhs_range
        predicate = ICmp.SWAPPED[predicate]
    else:
        return source_range
    if predicate == "slt":
        return mine.refine_less_than(other)
    if predicate == "sle":
        return mine.refine_less_equal(other)
    if predicate == "sgt":
        return mine.refine_greater_than(other)
    if predicate == "sge":
        return mine.refine_greater_equal(other)
    if predicate == "eq":
        return mine.refine_equal(other)
    return mine


def recompute_transfer(value: Value, ranges: Dict[Value, Interval],
                       argument_ranges: Dict[Argument, Interval]) -> Interval:
    """One application of ``value``'s transfer function over ``ranges``.

    Semantically identical to ``RangeAnalysis._evaluate`` but independent of
    it: plain ``Interval`` methods over a plain dict, with no statistics,
    tables, or kernels involved — the reference the solved state is checked
    against.
    """
    if isinstance(value, Argument):
        return argument_ranges.get(value, Interval.top())
    if isinstance(value, ConstantInt):
        return Interval.constant(value.value)
    if isinstance(value, BinaryOp):
        lhs = _operand_range(value.lhs, ranges)
        rhs = _operand_range(value.rhs, ranges)
        if value.op == "add":
            return lhs.add(rhs)
        if value.op == "sub":
            return lhs.sub(rhs)
        if value.op == "mul":
            return lhs.mul(rhs)
        if value.op == "div":
            return lhs.div(rhs)
        if value.op == "rem":
            return lhs.rem(rhs)
        return Interval.top()
    if isinstance(value, Phi):
        result = Interval.bottom()
        for incoming, _block in value.incoming():
            result = result.join(_operand_range(incoming, ranges))
        return result
    if isinstance(value, Copy):
        return _refine_sigma(value, _operand_range(value.source, ranges), ranges)
    return Interval.top()


def check_range_certificate(function: Function, analysis: RangeAnalysis,
                            report: VerificationReport) -> None:
    """Assert the solved interval state of ``function`` is inductive."""
    ranges = analysis.ranges
    argument_ranges = analysis.argument_ranges
    for value, interval in ranges.items():
        report.bump("range")
        recomputed = recompute_transfer(value, ranges, argument_ranges)
        if not interval.includes(recomputed):
            report.add(
                "range", "error", function.name, _value_name(value),
                "stored range {} of {} does not include its recomputed "
                "transfer result {} — the fixpoint is not inductive".format(
                    interval, _short(value), recomputed))


# ---------------------------------------------------------------------------
# Less-than certificate
# ---------------------------------------------------------------------------

def check_lt_certificate(constraints: Sequence[Constraint],
                         lt_sets: Dict[Value, FrozenSet[Value]],
                         report: VerificationReport) -> None:
    """Assert the final LT sets satisfy every generated constraint."""
    targets: Set[Value] = set()
    for constraint in constraints:
        targets.add(constraint.target)
        report.bump("lt")
        evaluated = constraint.evaluate(lt_sets)
        if evaluated is TOP:
            # Only reachable through a residual-TOP source, which the solver
            # projects to the empty set; the orphan check below still guards
            # the target's own entries.
            continue
        actual = lt_sets.get(constraint.target, frozenset())
        unjustified = actual - evaluated  # type: ignore[operator]
        if not unjustified:
            continue
        shown = sorted(unjustified, key=_value_name)[:3]
        for member in shown:
            report.add(
                "lt", "error", _function_name(constraint.target),
                _value_name(constraint.target),
                "LT({}) claims {} < {} but its constraint [{}] does not "
                "justify it".format(
                    _short(constraint.target), _short(member),
                    _short(constraint.target), constraint.describe()))
        if len(unjustified) > len(shown):
            report.add(
                "lt", "error", _function_name(constraint.target),
                _value_name(constraint.target),
                "LT({}) holds {} more unjustified members".format(
                    _short(constraint.target), len(unjustified) - len(shown)))
    for value, lt_set in lt_sets.items():
        if lt_set and value not in targets:
            report.add(
                "lt", "error", _function_name(value), _value_name(value),
                "LT({}) is non-empty but no constraint targets it".format(
                    _short(value)))


# ---------------------------------------------------------------------------
# NoAlias verdict audit
# ---------------------------------------------------------------------------

def _ordered_witness(a: Value, b: Value,
                     lt_sets: Dict[Value, FrozenSet[Value]]) -> bool:
    """``∃ na ∈ names(a), nb ∈ names(b): na < nb or nb < na`` — from scratch.

    Classes are re-walked with no memoization and no truncation limit:
    truncation can only lose legitimate witnesses, never invent one, so the
    unlimited walk accepts everything the production tables could justify.
    """
    names_a = set(equivalent_names(a, limit=None))
    names_b = set(equivalent_names(b, limit=None))
    lt_a: Set[Value] = set()
    for name in names_a:
        lt_a.update(lt_sets.get(name, ()))
    if not names_b.isdisjoint(lt_a):
        return True
    lt_b: Set[Value] = set()
    for name in names_b:
        lt_b.update(lt_sets.get(name, ()))
    return not names_a.isdisjoint(lt_b)


def audit_verdicts(function: Function, disambiguator: PointerDisambiguator,
                   lt_sets: Dict[Value, FrozenSet[Value]],
                   report: VerificationReport) -> None:
    """Re-justify every NoAlias verdict of ``function`` from first principles."""
    pointers = collect_pointer_values(function)
    if len(pointers) < 2:
        return
    # The production disambiguator is queried as an oracle only: snapshot
    # its statistics and suppress tracing so a verified run stays
    # byte-identical to an unverified one in every report and timeline.
    statistics = disambiguator.statistics
    snapshot = (statistics.queries, statistics.truncated_classes,
                statistics.largest_class, statistics.memoized_values)
    try:
        with TRACER.suppress():
            claims = list(disambiguator.disambiguate_pairs(pointers))
    finally:
        (statistics.queries, statistics.truncated_classes,
         statistics.largest_class, statistics.memoized_values) = snapshot
    for i, j, reason in claims:
        if reason is DisambiguationReason.NONE:
            continue
        report.bump("verdict")
        p_a, p_b = pointers[i], pointers[j]
        if canonical_value(p_a) is canonical_value(p_b):
            report.add(
                "verdict", "error", function.name, _value_name(p_a),
                "NoAlias claimed for {} and {} although both name the same "
                "canonical pointer".format(_short(p_a), _short(p_b)))
            continue
        if reason is DisambiguationReason.POINTERS_ORDERED:
            if not _ordered_witness(p_a, p_b, lt_sets):
                report.add(
                    "verdict", "error", function.name, _value_name(p_a),
                    "NoAlias({}, {}) claims the pointers are strictly "
                    "ordered but no LT witness exists in any equivalence "
                    "class".format(_short(p_a), _short(p_b)))
            continue
        # INDICES_ORDERED: same base, strictly ordered variable indices.
        base_a, index_a = decompose_pointer(p_a)
        base_b, index_b = decompose_pointer(p_b)
        if index_a is None or index_b is None:
            report.add(
                "verdict", "error", function.name, _value_name(p_a),
                "NoAlias({}, {}) claims ordered indices but at least one "
                "pointer has no index".format(_short(p_a), _short(p_b)))
            continue
        if canonical_value(base_a) is not canonical_value(base_b):
            report.add(
                "verdict", "error", function.name, _value_name(p_a),
                "NoAlias({}, {}) claims ordered indices over different base "
                "pointers".format(_short(p_a), _short(p_b)))
            continue
        if not (_is_variable(index_a) and _is_variable(index_b)):
            report.add(
                "verdict", "error", function.name, _value_name(p_a),
                "NoAlias({}, {}) claims ordered indices but an index is not "
                "a variable".format(_short(p_a), _short(p_b)))
            continue
        if not _ordered_witness(index_a, index_b, lt_sets):
            report.add(
                "verdict", "error", function.name, _value_name(index_a),
                "NoAlias({}, {}) claims indices {} and {} are strictly "
                "ordered but no LT witness exists".format(
                    _short(p_a), _short(p_b), _short(index_a),
                    _short(index_b)))
