"""The ``python -m repro`` command line, built on the :class:`Session` facade.

Subcommands:

* ``eval`` — ``aa-eval`` one or more mini-C source files (or a synthetic
  workload) through the execution engine; prints a per-program table,
  optionally writes CSV/JSON.
* ``print-ir`` — compile a source file and print its SSA IR.
* ``check`` — run the self-check suite (IR/e-SSA lint, fixpoint
  certificates, NoAlias verdict audit) over source files or a synthetic
  workload; exit 1 when any error-severity diagnostic is found.
* ``stats`` — solver/disambiguation/cache statistics for one source file.
* ``store`` — inspect or maintain a persistent analysis store
  (``info`` / ``evict`` / ``clear``).

Every subcommand accepts the configuration flags (``--workers``,
``--store``, ``--range-solver``, ...), which become *explicit arguments*
of a :class:`~repro.api.config.ReproConfig` — the top of the precedence
chain, above the ``REPRO_*`` environment.  Invalid values exit with code 2
and the config boundary's actionable message instead of a traceback.

The CLI goes through exactly the same :class:`~repro.api.session.Session`
code path as library callers, so its per-pair verdicts are bit-identical
to the in-process API (asserted by ``tests/api/test_cli.py``).
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.config import (
    ConfigError,
    INTERVAL_KERNELS,
    LT_SOLVERS,
    RANGE_SOLVERS,
    ReproConfig,
    STORE_BACKENDS,
    VERIFY_MODES,
    WORKLIST_ORDERS,
)
from repro.obs import TRACER

#: analysis members accepted inside an ``--specs`` item.
KNOWN_MEMBERS = ("basicaa", "lt", "andersen", "steensgaard", "tbaa")

DEFAULT_SPEC_STRING = "basicaa,lt,basicaa+lt"


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "configuration",
        "explicit values override REPRO_* environment variables")
    group.add_argument("--workers", type=int, default=None, metavar="N",
                       help="worker-process count (0 = serial)")
    group.add_argument("--store", default=None, metavar="PATH",
                       help="persistent analysis-store path")
    group.add_argument("--store-backend", default=None,
                       choices=STORE_BACKENDS, help="force a store backend")
    group.add_argument("--store-max-mb", type=float, default=None, metavar="MB",
                       help="store byte budget (0 = unbounded)")
    group.add_argument("--range-solver", default=None,
                       choices=RANGE_SOLVERS, help="range fixed-point solver")
    group.add_argument("--lt-solver", default=None,
                       choices=LT_SOLVERS,
                       help="less-than worklist strategy")
    group.add_argument("--worklist-order", default=None,
                       choices=WORKLIST_ORDERS,
                       help="sparse-solver worklist ordering policy")
    group.add_argument("--interval-kernel", default=None,
                       choices=INTERVAL_KERNELS,
                       help="interval-kernel backend of the ranked table "
                            "solver (numpy degrades to batch when numpy is "
                            "not installed)")
    group.add_argument("--class-limit", type=int, default=None, metavar="N",
                       help="equivalence-class truncation limit (0 = unlimited)")
    group.add_argument("--verify", default=None, choices=VERIFY_MODES,
                       help="self-check every solved pipeline (post = after "
                            "each in-process solve, paranoid = also inside "
                            "pool workers)")
    group.add_argument("--seed", type=int, default=None, metavar="N",
                       help="synthetic-workload base seed")
    group.add_argument("--trace", default=None, metavar="FILE",
                       help="write a Chrome trace-event JSON timeline "
                            "(open in about:tracing or Perfetto)")


def _config_from_arguments(args: argparse.Namespace) -> ReproConfig:
    """Build the ``ReproConfig`` from the flags the user actually passed."""
    overrides = {}
    for field, attribute in (
            ("workers", "workers"),
            ("store_path", "store"),
            ("store_backend", "store_backend"),
            ("store_max_mb", "store_max_mb"),
            ("range_solver", "range_solver"),
            ("lt_solver", "lt_solver"),
            ("worklist_order", "worklist_order"),
            ("interval_kernel", "interval_kernel"),
            ("class_limit", "class_limit"),
            ("verify", "verify"),
            ("synth_seed", "seed"),
            ("trace", "trace")):
        value = getattr(args, attribute, None)
        if value is not None:
            overrides[field] = value
    return ReproConfig(**overrides)


def _parse_specs(text: str) -> Tuple[Tuple[str, ...], ...]:
    """``"basicaa,lt,basicaa+lt"`` → ``(("basicaa",), ("lt",), ("basicaa", "lt"))``."""
    specs: List[Tuple[str, ...]] = []
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        members = tuple(member.strip() for member in item.split("+"))
        for member in members:
            if member not in KNOWN_MEMBERS:
                raise ConfigError(
                    "--specs member {!r} is not one of {}".format(
                        member, "/".join(KNOWN_MEMBERS)))
        specs.append(members)
    if not specs:
        raise ConfigError("--specs must name at least one analysis")
    return tuple(specs)


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _unit_name(path: str) -> str:
    if path == "-":
        return "stdin"
    base = os.path.basename(path)
    return os.path.splitext(base)[0] or base


def _print_table(rows: Sequence[Dict[str, object]]) -> None:
    if not rows:
        print("(no results)")
        return
    headers: List[str] = []
    for row in rows:
        for key in row:
            if key not in headers:
                headers.append(key)
    widths = {h: max(len(str(h)), max(len(str(r.get(h, ""))) for r in rows))
              for h in headers}
    print("  ".join(str(h).ljust(widths[h]) for h in headers))
    for row in rows:
        print("  ".join(str(row.get(h, "")).ljust(widths[h]) for h in headers))


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------

def _collect_units(args: argparse.Namespace,
                   command: str = "eval") -> List[Tuple[str, str]]:
    units: List[Tuple[str, str]] = [(_unit_name(path), _read_source(path))
                                    for path in args.sources]
    if args.synth is not None:
        from repro.synth import build_testsuite_sources, spec_sources

        if args.synth == "testsuite":
            units.extend(build_testsuite_sources(count=args.count))
        else:
            units.extend(spec_sources()[:args.count])
    if not units:
        raise ConfigError(
            "{} needs at least one source file or --synth testsuite|spec"
            .format(command))
    return units


def _cmd_eval(args: argparse.Namespace) -> int:
    from repro.api.session import Session

    if args.json and args.csv:
        raise ConfigError("--json and --csv are mutually exclusive; "
                          "run eval twice for both outputs")
    specs = _parse_specs(args.specs)
    labels = ["+".join(spec) for spec in specs]
    config = _config_from_arguments(args)
    with config.activate():
        # Inside the activation so --seed reaches the synthetic generators.
        units = _collect_units(args)
    with Session(config) as session:
        results = session.run_workload(
            units, specs=specs, interprocedural=not args.intraprocedural)
    if config.trace:
        # Session.close() wrote the timeline; note it on stderr so --json
        # stdout stays byte-identical to an untraced run.
        print("wrote trace {} ({} spans)".format(
            config.trace, len(TRACER.timeline())), file=sys.stderr)

    if args.json:
        payload = {
            "specs": labels,
            "units": [{
                "name": result.name,
                "instructions": result.instructions,
                "labels": {label: {
                    "counts": result.evaluation(label).as_dict(),
                    "verdicts": result.verdicts(label),
                } for label in result.labels},
            } for result in results],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    rows = []
    for result in results:
        row: Dict[str, object] = {
            "benchmark": result.name,
            "instructions": result.instructions,
            "queries": result.evaluation(labels[0]).total_queries,
        }
        for label in labels:
            evaluation = result.evaluation(label)
            row[label] = evaluation.no_alias
            row[label + "%"] = round(100.0 * evaluation.no_alias_ratio, 2)
        rows.append(row)
    if len(rows) > 1:
        total: Dict[str, object] = {
            "benchmark": "TOTAL",
            "instructions": sum(r["instructions"] for r in rows),
            "queries": sum(r["queries"] for r in rows),
        }
        for label in labels:
            no_alias = sum(r[label] for r in rows)
            total[label] = no_alias
            total[label + "%"] = round(
                100.0 * no_alias / max(total["queries"], 1), 2)
        rows.append(total)
    _print_table(rows)
    if args.csv:
        fieldnames = list(rows[0])
        with open(args.csv, "w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames, restval="")
            writer.writeheader()
            writer.writerows(rows)
        print("wrote {}".format(args.csv))
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    """Lint + certify: the self-check suite as a standalone subcommand.

    Exit status: 0 when every unit verifies clean, 1 when any
    error-severity diagnostic was found, 2 on usage errors — so CI can run
    ``repro check --json`` as a gate.
    """
    from repro.api.session import Session

    config = _config_from_arguments(args)
    with config.activate():
        units = _collect_units(args, command="check")
    interprocedural = not args.intraprocedural
    unit_reports = []
    with Session(config) as session:
        for name, source in units:
            compiled = session.compile(source, name=name)
            compiled.analyze(interprocedural)
            unit_reports.append((name, compiled.verify(interprocedural)))

    if args.json:
        payload = {
            "ok": all(report.ok for _name, report in unit_reports),
            "units": [{
                "name": name,
                "ok": report.ok,
                "summary": report.summary(),
                "report": report.as_dict(),
            } for name, report in unit_reports],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if payload["ok"] else 1

    failed = 0
    total_checks = total_errors = total_warnings = total_functions = 0
    for name, report in unit_reports:
        status = "ok" if report.ok else "FAILED"
        print("{}: {} ({})".format(name, status, report.summary()))
        for diagnostic in report.diagnostics:
            print("  {}".format(diagnostic.format()))
        failed += 0 if report.ok else 1
        total_checks += report.checks_run()
        total_errors += len(report.errors)
        total_warnings += len(report.warnings)
        total_functions += report.functions
    if len(unit_reports) > 1:
        print("TOTAL: {} checks, {} errors, {} warnings over {} functions "
              "in {} units".format(total_checks, total_errors, total_warnings,
                                   total_functions, len(unit_reports)))
    return 1 if failed else 0


def _cmd_print_ir(args: argparse.Namespace) -> int:
    from repro.api.session import Session

    source = _read_source(args.source)
    name = args.name or _unit_name(args.source)
    with Session(_config_from_arguments(args)) as session:
        unit = session.compile(source, name=name)
        if args.essa:
            unit.analyze()
        print(unit.print_ir(), end="")
    return 0


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return "{:.3f}s".format(seconds)
    return "{:.3f}ms".format(seconds * 1e3)


def _print_timings() -> None:
    """The ``stats --timings`` tables, read off the tracer's timeline."""
    timeline = TRACER.timeline()
    print("[timings]")
    if not len(timeline):
        print("  (no spans recorded)")
        return
    rows = [{
        "phase": row["phase"],
        "calls": row["count"],
        "total": _format_seconds(row["total"]),
        "self": _format_seconds(row["self"]),
        "p50": _format_seconds(row["p50"]),
        "p99": _format_seconds(row["p99"]),
    } for row in timeline.timing_rows()]
    _print_table(rows)
    lanes = timeline.lane_summary()
    if len(lanes) > 1:
        print("[lanes]")
        _print_table([{
            "lane": lane,
            "spans": stats["spans"],
            "busy": _format_seconds(stats["busy"]),
            "min": _format_seconds(stats["min"]),
            "max": _format_seconds(stats["max"]),
            "skew": "{:.2f}".format(stats["skew"]),
        } for lane, stats in lanes.items()])


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.api.session import Session
    from repro.rangeanalysis.interval import Interval

    source = _read_source(args.source)
    name = _unit_name(args.source)
    interprocedural = not args.intraprocedural
    config = _config_from_arguments(args)
    # --timings needs spans even without a --trace file: start a capture
    # for the duration of the command.
    capture_here = args.timings and not config.trace
    if capture_here:
        TRACER.enable()
    with Session(config) as session:
        unit = session.compile(source, name=name)
        report = unit.analyze(interprocedural).disambiguate(interprocedural)
        if session.config.verify != "off":
            # stats analyzes through the session cache, not the engine, so
            # the post-solve hook never fires here; honor the knob directly.
            unit.verify(interprocedural).raise_if_failed(
                "REPRO_VERIFY={}".format(session.config.verify))
        lt_statistics = unit.lessthan(interprocedural).statistics
        range_totals: Dict[str, int] = {}
        with session.config.activate():
            for function in unit.module.defined_functions():
                for key, value in (session.cache.ranges(function)
                                   .statistics.as_dict().items()):
                    if isinstance(value, (int, float)):
                        range_totals[key] = range_totals.get(key, 0) + value

        print("module {}: {} instructions, {} functions".format(
            name, unit.module.instruction_count(),
            len(list(unit.module.defined_functions()))))
        print()
        print("[less-than solver]  strategy={}".format(session.config.lt_solver))
        for key, value in lt_statistics.as_dict().items():
            print("  {:24s} {}".format(key, value))
        print("[range analysis]    solver={}".format(session.config.range_solver))
        for key, value in range_totals.items():
            print("  {:24s} {}".format(key, value))
        print("[solver]            order={} kernel={}".format(
            session.config.worklist_order, session.config.interval_kernel))
        for key, value in report.statistics.solver.as_dict().items():
            if isinstance(value, dict):
                for subkey, count in value.items():
                    print("  {:24s} {}".format(
                        "{}[{}]".format(key, subkey), count))
            else:
                print("  {:24s} {}".format(key, value))
        intern = Interval.intern_info()
        print("[interval intern]   capacity={}".format(intern["capacity"]))
        for key in ("size", "hits", "misses"):
            print("  {:24s} {}".format(key, intern[key]))
        print("  {:24s} {:.3f}".format("hit_rate", intern["hit_rate"]))
        print("[disambiguation]    class_limit={}".format(
            session.config.class_limit))
        print("  {:24s} {}".format("queries", report.queries))
        print("  {:24s} {}".format("no_alias", report.no_alias_count))
        print("  {:24s} {:.2%}".format("no_alias_ratio", report.no_alias_ratio))
        for key, value in report.statistics.as_dict().items():
            if key not in ("queries", "solver"):
                print("  {:24s} {}".format(key, value))
        statistics = session.statistics()
        print("[cache]")
        cache_stats = session.cache.statistics
        for key, value in statistics["cache"].items():
            if key == "hit_ratio":
                print("  {:24s} {:.2%}".format("hit_rate", value))
            else:
                print("  {:24s} {}".format(key, value))
        for kind in sorted(cache_stats.by_kind):
            counters = cache_stats.by_kind[kind]
            lookups = counters["hits"] + counters["misses"]
            rate = counters["hits"] / lookups if lookups else 0.0
            print("  {:24s} {}/{} ({:.2%})".format(
                kind, counters["hits"], lookups, rate))
        print("[fingerprints]")
        from repro.ir.callgraph import module_fingerprints

        prints = module_fingerprints(unit.module)
        graph = prints.graph
        components = graph.components()
        recursive = sum(
            1 for component in components
            if len(component) > 1
            or component[0] in graph.callees.get(component[0], []))
        print("  {:24s} {}".format(
            "call_edges",
            sum(len(callees) for callees in graph.callees.values())))
        print("  {:24s} {}".format("call_graph_sccs", len(components)))
        print("  {:24s} {}".format("recursive_sccs", recursive))
        # Warm-hit rates of fingerprint-keyed store lookups and of refresh
        # classifications accumulate under the same by_kind counters printed
        # above whenever this session served churn (Session.update_source);
        # a one-shot stats run reports them empty.
        for kind in ("fingerprint", "refresh"):
            counters = cache_stats.by_kind.get(kind)
            if counters:
                lookups = counters["hits"] + counters["misses"]
                rate = counters["hits"] / lookups if lookups else 0.0
                print("  {:24s} {}/{} ({:.2%})".format(
                    kind + "_hit_rate", counters["hits"], lookups, rate))
            else:
                print("  {:24s} 0/0 (no churn in this run)".format(
                    kind + "_hit_rate"))
        verify_stats = statistics.get("verify", {})
        print("[verify]            mode={}".format(session.config.verify))
        if verify_stats.get("runs"):
            for key, value in verify_stats.items():
                print("  {:24s} {}".format(key, value))
        else:
            print("  (no verification runs — set REPRO_VERIFY=post|paranoid "
                  "or run 'repro check')")
        if "store" in statistics:
            print("[store]")
            for key, value in statistics["store"].items():
                if key == "hit_rate":
                    print("  {:24s} {:.2%}".format(key, value))
                else:
                    print("  {:24s} {}".format(key, value))
        elif session.config.store_path:
            # This command never evaluates through the engine, so the lazy
            # session store stays unopened; still give the user a [store]
            # section for the path they configured.  Missing and zero-byte
            # files are fresh stores, not errors — say "no data", exit 0.
            print("[store]             path={}".format(session.config.store_path))
            path = session.config.store_path
            if not os.path.exists(path) or os.path.getsize(path) == 0:
                print("  (no data — run an eval with this store to "
                      "populate it)")
            else:
                from repro.engine.store import AnalysisStore

                with AnalysisStore(path,
                                   backend=session.config.store_backend,
                                   readonly=True, max_bytes=0) as store_handle:
                    for key, value in store_handle.info().items():
                        print("  {:24s} {}".format(key, value))
        if args.timings:
            _print_timings()
    if capture_here:
        TRACER.disable()
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.engine.store import AnalysisStore

    backend = args.store_backend
    if not os.path.exists(args.path):
        # Opening a writable store would silently create a fresh file at a
        # mistyped path; fail loudly instead.
        raise ConfigError("no analysis store at {!r}".format(args.path))
    if args.action == "info":
        store = AnalysisStore(args.path, backend=backend, readonly=True,
                              max_bytes=0)
        try:
            info = store.info()
        finally:
            store.close()
        for key, value in info.items():
            print("{:24s} {}".format(key, value))
        return 0
    if args.action == "evict":
        if args.max_mb is None:
            raise ConfigError("store evict needs --max-mb")
        budget = int(args.max_mb * 1024 * 1024)
        with AnalysisStore(args.path, backend=backend, max_bytes=0) as store:
            evicted = store.evict(budget)
            remaining = store.size_bytes()
        print("evicted {} entries; {} bytes remain".format(evicted, remaining))
        return 0
    # clear
    with AnalysisStore(args.path, backend=backend, max_bytes=0) as store:
        entries = len(store)
        store.clear()
    print("cleared {} entries".format(entries))
    return 0


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Pointer disambiguation via strict inequalities "
                    "(CGO 2017 reproduction)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    eval_parser = subparsers.add_parser(
        "eval", help="aa-eval source files or a synthetic workload")
    eval_parser.add_argument("sources", nargs="*",
                             help="mini-C source files ('-' = stdin)")
    eval_parser.add_argument("--synth", choices=("testsuite", "spec"),
                             default=None,
                             help="add a synthetic workload collection")
    eval_parser.add_argument("--count", type=int, default=8, metavar="N",
                             help="synthetic program count (default 8)")
    eval_parser.add_argument("--specs", default=DEFAULT_SPEC_STRING,
                             help="comma-separated analysis configurations "
                                  "(default {!r})".format(DEFAULT_SPEC_STRING))
    eval_parser.add_argument("--intraprocedural", action="store_true",
                             help="disable interprocedural pseudo-phi constraints")
    eval_parser.add_argument("--json", action="store_true",
                             help="emit JSON (counts + per-pair verdict codes)")
    eval_parser.add_argument("--csv", default=None, metavar="PATH",
                             help="also write the table as CSV")
    _add_config_arguments(eval_parser)
    eval_parser.set_defaults(handler=_cmd_eval)

    check_parser = subparsers.add_parser(
        "check", help="self-check: IR lint, fixpoint certificates, "
                      "NoAlias verdict audit")
    check_parser.add_argument("sources", nargs="*",
                              help="mini-C source files ('-' = stdin)")
    check_parser.add_argument("--synth", choices=("testsuite", "spec"),
                              default=None,
                              help="also check a synthetic workload collection")
    check_parser.add_argument("--count", type=int, default=8, metavar="N",
                              help="synthetic program count (default 8)")
    check_parser.add_argument("--intraprocedural", action="store_true",
                              help="disable interprocedural pseudo-phi "
                                   "constraints")
    check_parser.add_argument("--json", action="store_true",
                              help="emit the full diagnostic report as JSON")
    _add_config_arguments(check_parser)
    check_parser.set_defaults(handler=_cmd_check)

    ir_parser = subparsers.add_parser(
        "print-ir", help="compile one source file and print its SSA IR")
    ir_parser.add_argument("source", help="mini-C source file ('-' = stdin)")
    ir_parser.add_argument("--name", default=None, help="module name")
    ir_parser.add_argument("--essa", action="store_true",
                           help="print the e-SSA form (after live-range splitting)")
    _add_config_arguments(ir_parser)
    ir_parser.set_defaults(handler=_cmd_print_ir)

    stats_parser = subparsers.add_parser(
        "stats", help="solver/disambiguation/cache statistics for one source")
    stats_parser.add_argument("source", help="mini-C source file ('-' = stdin)")
    stats_parser.add_argument("--intraprocedural", action="store_true",
                              help="disable interprocedural pseudo-phi constraints")
    stats_parser.add_argument("--timings", action="store_true",
                              help="per-phase timing table (total/self time, "
                                   "call counts, p50/p99, per-lane skew)")
    _add_config_arguments(stats_parser)
    stats_parser.set_defaults(handler=_cmd_stats)

    store_parser = subparsers.add_parser(
        "store", help="inspect or maintain a persistent analysis store")
    store_parser.add_argument("action", choices=("info", "evict", "clear"))
    store_parser.add_argument("path", help="store path")
    store_parser.add_argument("--max-mb", type=float, default=None,
                              metavar="MB", help="evict down to this budget")
    store_parser.add_argument("--store-backend", default=None,
                              choices=("sqlite", "pickle"),
                              help="force a store backend")
    store_parser.set_defaults(handler=_cmd_store)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ConfigError as error:
        print("error: {}".format(error), file=sys.stderr)
        return 2
    except OSError as error:
        print("error: {}".format(error), file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
