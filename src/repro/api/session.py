"""The fluent ``Session`` facade — one coherent entry point to the system.

A :class:`Session` binds together the pieces every driver used to wire by
hand: a validated :class:`~repro.api.config.ReproConfig`, exactly one
:class:`~repro.passes.analysis_cache.FunctionAnalysisCache` (so repeated
work over the same modules hits memoized analyses), exactly one
:class:`~repro.engine.store.AnalysisStore` handle (opened lazily from the
config, shared across every call, closed once with the session), and the
execution engine's coordinator.

The three call shapes::

    from repro.api import ReproConfig, Session

    # fluent, single-module pipeline
    report = Session().compile(source).analyze().disambiguate()

    # aa-eval over one module, in-process, sharing the session cache/store
    result = session.evaluate(module, specs=(("basicaa",), ("lt",)))

    # a whole workload, fanned out over worker processes per the config
    with Session(ReproConfig(workers=4, store_path="warm.sqlite")) as session:
        results = session.run_workload(sources)

Every operation runs with the session's config *active*
(:meth:`ReproConfig.activate`), so solver selection, class truncation and
store parameters resolve from the config deep inside the pipeline — and
are re-installed inside worker processes by the engine's pool initializer.

The pre-existing module-level entry points
(:func:`repro.engine.run_workload`, :func:`repro.engine.evaluate_module`,
:func:`repro.engine.evaluate_module_parallel`) remain as thin deprecation
shims that construct a default ``Session``; verdicts are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.api.config import ReproConfig
from repro.alias.aaeval import collect_pointer_values
from repro.core.disambiguation import (
    DisambiguationReason,
    DisambiguationStatistics,
    PointerDisambiguator,
)
from repro.core.lessthan.analysis import LessThanAnalysis
from repro.engine import driver as _driver
from repro.engine.driver import UnitLike, UnitResult
from repro.engine.store import AnalysisStore
from repro.engine.workunit import DEFAULT_SPECS, Scheduler, WorkUnit
from repro.frontend import compile_source
from repro.ir.module import Module
from repro.ir.printer import print_module
from repro.obs import TRACER, write_chrome_trace
from repro.passes.analysis_cache import FunctionAnalysisCache, RefreshResult
from repro.verify import COUNTERS as _VERIFY_COUNTERS
from repro.verify import VerificationReport, verify_analysis


class _Unopened:
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<unopened>"


_UNOPENED = _Unopened()


@dataclass(frozen=True)
class PairVerdict:
    """One disambiguated pointer pair of a :class:`DisambiguationReport`."""

    function: str
    pointer_a: str
    pointer_b: str
    reason: DisambiguationReason

    @property
    def no_alias(self) -> bool:
        return bool(self.reason)


class DisambiguationReport:
    """The result of :meth:`CompiledUnit.disambiguate`: every unordered
    pointer pair of every defined function, with the criterion (if any)
    that proved it disjoint."""

    def __init__(self, pairs: List[PairVerdict],
                 statistics: DisambiguationStatistics) -> None:
        self.pairs = pairs
        self.statistics = statistics

    @property
    def queries(self) -> int:
        return len(self.pairs)

    @property
    def no_alias_count(self) -> int:
        return sum(1 for pair in self.pairs if pair.no_alias)

    @property
    def no_alias_ratio(self) -> float:
        return self.no_alias_count / self.queries if self.pairs else 0.0

    def resolved(self) -> List[PairVerdict]:
        """The pairs proven disjoint."""
        return [pair for pair in self.pairs if pair.no_alias]

    def __iter__(self):
        return iter(self.pairs)

    def __repr__(self) -> str:
        return "<DisambiguationReport {}/{} no-alias ({:.1%})>".format(
            self.no_alias_count, self.queries, self.no_alias_ratio)


class CompiledUnit:
    """One compiled module inside a session — the fluent pipeline stage.

    ``session.compile(src)`` returns one of these; :meth:`analyze` runs the
    strict-inequality pipeline (range analysis → e-SSA → constraint solve)
    through the session cache and returns ``self`` for chaining;
    :meth:`disambiguate` answers every pointer-pair query.  The e-SSA
    conversion mutates the module in place (exactly like the original LLVM
    artifact's pass pipeline), so :meth:`print_ir` shows the pre-conversion
    form until the first analysis runs.
    """

    def __init__(self, session: "Session", name: str, source: str,
                 module: Module) -> None:
        self.session = session
        self.name = name
        self.source = source
        self.module = module

    # -- pipeline ----------------------------------------------------------------
    def analyze(self, interprocedural: bool = True) -> "CompiledUnit":
        """Run (or hit) the less-than analysis; returns ``self`` to chain."""
        with self.session.config.activate():
            self.session.cache.module_lessthan(self.module, interprocedural)
        return self

    def lessthan(self, interprocedural: bool = True) -> LessThanAnalysis:
        """The (memoized) module-level less-than analysis."""
        with self.session.config.activate():
            return self.session.cache.module_lessthan(self.module,
                                                      interprocedural)

    def disambiguator(self, interprocedural: bool = True) -> PointerDisambiguator:
        """The session-cached disambiguator over :meth:`lessthan`."""
        with self.session.config.activate():
            return self.session.cache.module_disambiguator(self.module,
                                                           interprocedural)

    def disambiguate(self, interprocedural: bool = True) -> DisambiguationReport:
        """Query every unordered pointer pair of every defined function."""
        with self.session.config.activate():
            disambiguator = self.session.cache.module_disambiguator(
                self.module, interprocedural)
            pairs: List[PairVerdict] = []
            for function in self.module.defined_functions():
                pointers = collect_pointer_values(function)
                for i, j, reason in disambiguator.disambiguate_pairs(pointers):
                    pairs.append(PairVerdict(
                        function.name,
                        getattr(pointers[i], "name", str(pointers[i])),
                        getattr(pointers[j], "name", str(pointers[j])),
                        reason))
            # Snapshot the counters: the session-cached disambiguator keeps
            # accumulating across later queries, and a report must describe
            # the state at the time it was produced.
            statistics = DisambiguationStatistics.from_dict(
                disambiguator.statistics.as_dict())
            return DisambiguationReport(pairs, statistics)

    def evaluate(self, specs: Sequence[Sequence[str]] = DEFAULT_SPECS,
                 **kwargs: object) -> UnitResult:
        """``aa-eval`` this module in-process through the session."""
        return self.session.evaluate(self.module, specs=specs, **kwargs)

    def verify(self, interprocedural: bool = True) -> "VerificationReport":
        """Run the self-check suite over this module's solved pipeline.

        Analyzes first if the unit has not been analyzed yet (the checkers
        need a solved state to certify), then validates the IR/e-SSA form,
        the interval and less-than fixpoint certificates, and every NoAlias
        verdict of the session-cached disambiguator.  Returns the
        :class:`~repro.verify.VerificationReport`; inspect ``.ok`` or call
        ``.raise_if_failed()``.
        """
        with self.session.config.activate():
            analysis = self.session.cache.module_lessthan(self.module,
                                                          interprocedural)
            disambiguator = self.session.cache.module_disambiguator(
                self.module, interprocedural)
            return verify_analysis(analysis, disambiguator)

    # -- views -------------------------------------------------------------------
    def print_ir(self) -> str:
        """The module's printed IR in its *current* form."""
        return print_module(self.module)

    def __repr__(self) -> str:
        return "<CompiledUnit {} ({} instructions)>".format(
            self.name, self.module.instruction_count())


class UpdateResult:
    """What :meth:`Session.update_source` produced for one edit.

    ``result`` is the full :class:`UnitResult` — verdicts bit-identical to a
    cold evaluation of the same source; ``refresh`` records what the
    fingerprint diff actually recomputed (dirty/clean function names,
    migrated payload count).
    """

    def __init__(self, result: UnitResult, refresh: RefreshResult) -> None:
        self.result = result
        self.refresh = refresh

    def __repr__(self) -> str:
        return "<UpdateResult dirty={} clean={} migrated={}>".format(
            len(self.refresh.dirty), len(self.refresh.clean),
            self.refresh.migrated)


class Session:
    """The facade owning one config, one analysis cache and one store handle.

    ``config`` defaults to ``ReproConfig()`` (i.e. whatever the ``REPRO_*``
    environment requests); keyword overrides construct or derive one, so
    ``Session(workers=4)`` and ``Session(config, store_path=None)`` both
    work.  Sessions are context managers — leaving the block closes the
    store handle (sessions without a configured store need no cleanup).
    """

    def __init__(self, config: Optional[ReproConfig] = None,
                 **overrides: object) -> None:
        if config is None:
            config = ReproConfig(**overrides)  # type: ignore[arg-type]
        elif overrides:
            config = config.replace(**overrides)
        self.config = config
        self.cache = FunctionAnalysisCache()
        self._compiled: List[CompiledUnit] = []
        self._store: Union[_Unopened, Optional[AnalysisStore]] = _UNOPENED
        # A configured trace path makes this session the tracer's owner: it
        # starts the capture here and writes the Chrome trace on close().
        self._trace_started = False
        if config.trace:
            TRACER.enable()
            self._trace_started = True

    # -- the store handle --------------------------------------------------------
    @property
    def store(self) -> Optional[AnalysisStore]:
        """The session's persistent store, opened lazily from the config
        (``None`` when no ``store_path`` is configured)."""
        if isinstance(self._store, _Unopened):
            path = self.config.store_path
            self._store = self._open_store(path) if path else None
        return self._store

    def _open_store(self, path: str) -> AnalysisStore:
        return AnalysisStore(
            path,
            backend=self.config.store_backend,
            max_bytes=(self.config.store_max_bytes
                       if self.config.store_max_bytes is not None else 0))

    def _resolve_store_arg(self, store: object):
        """``(store object, caller owns/closes it)`` under the precedence
        chain: explicit argument > session store (from the config/env).

        ``None`` (the default) uses the session's store; ``False`` forces a
        persistence-free call; a path opens a store for this call only; an
        :class:`AnalysisStore` is used as-is.
        """
        if store is False:
            return None, False
        if store is None:
            return self.store, False
        if isinstance(store, AnalysisStore):
            return store, False
        return self._open_store(str(store)), True

    # -- lifecycle ----------------------------------------------------------------
    def close(self) -> None:
        """Close the session's store handle and flush any owned trace
        (idempotent)."""
        if isinstance(self._store, AnalysisStore):
            self._store.close()
        self._store = _UNOPENED
        if self._trace_started:
            self._trace_started = False
            write_chrome_trace(self.config.trace, TRACER.timeline())
            # Stop recording but keep the buffer: metrics() stays readable
            # after close, and tests inspect the captured timeline.
            TRACER.disable()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- the fluent pipeline -------------------------------------------------------
    def compile(self, source: str, name: str = "module") -> CompiledUnit:
        """Compile mini-C ``source`` into a session-bound pipeline stage."""
        with self.config.activate():
            module = compile_source(source, module_name=name)
        unit = CompiledUnit(self, name, source, module)
        self._compiled.append(unit)
        return unit

    def verify(self, interprocedural: bool = True) -> VerificationReport:
        """Self-check every module this session has compiled.

        Runs the full suite (IR lint, σ lint, interval and LT fixpoint
        certificates, NoAlias verdict audit) over each
        :meth:`compile`-produced unit, analyzing through the session cache
        where needed, and returns the merged report.  An un-analyzed unit
        is analyzed on the spot — verification is only meaningful against a
        solved state.
        """
        merged = VerificationReport()
        for unit in self._compiled:
            merged = merged.merge(unit.verify(interprocedural))
        return merged

    # -- evaluation ----------------------------------------------------------------
    def evaluate(self, module: Module,
                 specs: Sequence[Sequence[str]] = DEFAULT_SPECS,
                 *, cache: Optional[FunctionAnalysisCache] = None,
                 store: object = None,
                 interprocedural: bool = True,
                 record_verdicts: bool = True,
                 memoize_evaluations: bool = True) -> UnitResult:
        """``aa-eval`` an already compiled module in-process.

        Shares the session cache (pass ``cache=`` to substitute one) and the
        session store.  Store keys content-address the *pre-conversion* IR,
        so a module already converted to e-SSA outside the engine is
        evaluated without persistence rather than growing a second,
        incompatible key family.
        """
        with self.config.activate():
            store_obj, owned = self._resolve_store_arg(store)
            if store_obj is not None and any(
                    getattr(function, "essa_form", False)
                    for function in module.defined_functions()):
                if owned:
                    store_obj.close()
                store_obj, owned = None, False
            try:
                payload = _driver.worker_module.evaluate_module_functions(
                    module, None, specs,
                    cache if cache is not None else self.cache, store_obj,
                    interprocedural=interprocedural,
                    record_verdicts=record_verdicts,
                    memoize_evaluations=memoize_evaluations)
                _driver._write_back(store_obj, payload)
            finally:
                if owned and store_obj is not None:
                    store_obj.close()
            return UnitResult(payload)

    def update_source(self, name: str, source: str,
                      specs: Sequence[Sequence[str]] = DEFAULT_SPECS,
                      *, store: object = None,
                      interprocedural: bool = True) -> "UpdateResult":
        """Re-evaluate module ``name`` after an edit, incrementally.

        The churn entry point: recompiles ``source``, diffs call-graph-aware
        fingerprints against the previous ``update_source``/baseline call
        for the same name (:meth:`FunctionAnalysisCache.refresh`), migrates
        every still-valid evaluation payload onto the new compile, seeds the
        range solver with the previous analyses for incremental re-solves,
        then evaluates in-process exactly like :meth:`evaluate` — so
        verdicts are bit-identical to a cold solve, only the edit's blast
        radius is recomputed, and with a session store the untouched
        functions hit their fingerprint-keyed entries warm.  The first call
        for a name is the cold baseline (everything dirty).
        """
        with self.config.activate():
            module = compile_source(source, module_name=name)
            refresh = self.cache.refresh(module)
        result = self.evaluate(module, specs, store=store,
                               interprocedural=interprocedural)
        return UpdateResult(result, refresh)

    def evaluate_source(self, name: str, source: str,
                        specs: Sequence[Sequence[str]] = DEFAULT_SPECS,
                        *, workers: Optional[int] = None,
                        store: object = None,
                        interprocedural: bool = True) -> UnitResult:
        """``aa-eval`` one module from source, sharding its functions across
        worker processes when the (explicit or configured) worker count
        asks for them."""
        with self.config.activate():
            worker_count = self._worker_count(workers)
            spec_tuple = tuple(tuple(spec) for spec in specs)
            unit = WorkUnit("aaeval", name, source, None, spec_tuple,
                            interprocedural)
            if worker_count > 1:
                module = compile_source(source, module_name=name)
                names = [function.name
                         for function in module.defined_functions()]
                weights = [float(len(collect_pointer_values(function)) ** 2 + 1)
                           for function in module.defined_functions()]
                shards = Scheduler(worker_count).shard_unit(unit, names, weights)
            else:
                shards = [unit]
            store_obj, owned = self._resolve_store_arg(store)
            try:
                payloads = _driver._run_units(shards, worker_count, store_obj)
            finally:
                if owned and store_obj is not None:
                    store_obj.close()
            return UnitResult(_driver._merge_aaeval_payloads(name, payloads))

    def run_workload(self, units: Sequence[UnitLike], kind: str = "aaeval",
                     specs: Sequence[Sequence[str]] = DEFAULT_SPECS,
                     *, workers: Optional[int] = None,
                     store: object = None,
                     interprocedural: bool = True,
                     max_tasks_per_child: Optional[int] = None,
                     on_result=None) -> List[UnitResult]:
        """Evaluate one work unit per program, possibly over a worker pool.

        ``units`` may be :class:`WorkUnit` objects, ``(name, source)``
        tuples or anything with ``name``/``source`` attributes.  The
        returned list is input-ordered regardless of worker scheduling;
        ``on_result`` observes each :class:`UnitResult` as it lands.
        """
        with self.config.activate():
            work = _driver._normalize_units(units, kind, specs, interprocedural)
            worker_count = self._worker_count(workers)
            store_obj, owned = self._resolve_store_arg(store)
            on_payload = None
            if on_result is not None:
                on_payload = lambda payload: on_result(UnitResult(payload))
            try:
                payloads = _driver._run_units(work, worker_count, store_obj,
                                              max_tasks_per_child,
                                              on_payload=on_payload)
            finally:
                if owned and store_obj is not None:
                    store_obj.close()
            return [UnitResult(payload) for payload in payloads]

    def _worker_count(self, workers: Optional[int]) -> int:
        if workers is None:
            return self.config.workers
        # Route the explicit argument through the config's validation so a
        # bad value fails with the same actionable message everywhere.
        return self.config.replace(workers=workers).workers

    # -- introspection ---------------------------------------------------------------
    def statistics(self) -> Dict[str, object]:
        """Cache and store counters for dashboards/tests."""
        stats: Dict[str, object] = {"cache": self.cache.statistics.as_dict()}
        stats["verify"] = _VERIFY_COUNTERS.as_dict()
        store = self._store if isinstance(self._store, AnalysisStore) else None
        if store is not None:
            stats["store"] = {
                "hits": store.hits,
                "misses": store.misses,
                "hit_rate": store.hit_rate,
                "evictions": store.evictions,
                "entries": len(store),
                "size_bytes": store.size_bytes(),
            }
        return stats

    def metrics(self) -> Dict[str, object]:
        """Programmatic observability: per-phase latencies plus counters.

        ``phases`` maps span names to ``count``/``total``/``self``/``min``/
        ``max``/``p50``/``p99`` (seconds); ``lanes`` carries per-worker busy
        time and skew when shards ran in a pool.  Empty when the session is
        not tracing (construct it with ``ReproConfig(trace=...)`` or set
        ``REPRO_TRACE``).  ``cache``/``store`` counters are always present —
        the shape benchmarks and the future ``serve`` daemon read p50/p99
        from.
        """
        from repro.rangeanalysis.interval import Interval

        # Publish the interval intern-cache counters as gauges (idempotent:
        # they are lifetime totals, so repeated metrics() calls must not
        # accumulate).
        registry = TRACER.metrics
        for key, value in Interval.intern_info().items():
            registry.set_gauge("interval.intern.{}".format(key), value)
        timeline = TRACER.timeline()
        metrics: Dict[str, object] = {
            "phases": timeline.phase_summary(),
            "lanes": timeline.lane_summary(),
            "counters": TRACER.metrics.snapshot(),
        }
        metrics.update(self.statistics())
        return metrics

    def __repr__(self) -> str:
        return "<Session workers={} store={}>".format(
            self.config.workers, self.config.store_path)
