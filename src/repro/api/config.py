"""The typed configuration surface of the reproduction.

Every knob of the system — worker count, persistent-store location and
byte budget, fixed-point solver strategies, equivalence-class truncation,
synthetic-workload seeding — is a field of one frozen dataclass,
:class:`ReproConfig`, resolved through a single documented precedence
chain:

    explicit argument  >  ``ReproConfig`` field  >  ``REPRO_*`` env var  >  default

"Explicit argument" is whatever a caller passes to a :class:`~repro.api.
session.Session` method (or a CLI flag, which the CLI forwards as a
constructor argument); a ``ReproConfig`` field is explicit the moment the
constructor receives it; unset fields fall back to the corresponding
``REPRO_*`` environment variable and finally to the built-in default.

Validation happens *once*, at the ``ReproConfig`` boundary: an invalid
value — ``REPRO_WORKERS=abc``, a negative ``REPRO_STORE_MAX_MB``, an
unknown solver name — raises :class:`ConfigError` with a message naming
the offending field or environment variable and the accepted values,
instead of the silent fallbacks (or raw ``ValueError`` deep in the stack)
of earlier revisions.

This module is the *only* place in ``src/repro`` that reads ``REPRO_*``
environment variables.  Lower layers (the engine driver, the analysis
store, the range and less-than solvers, the disambiguator) call the
``resolved_*`` functions below, which consult the innermost *active*
config — installed by ``Session`` for the duration of its operations and
re-installed inside worker processes — before falling back to the
environment.  It deliberately imports nothing from the rest of the
package so that any module may depend on it without cycles.

Field ↔ environment-variable map (see the README for the same table):

===================  =======================  ==========================
field                environment variable     default
===================  =======================  ==========================
``workers``          ``REPRO_WORKERS``        ``0`` (serial)
``store_path``       ``REPRO_STORE``          ``None`` (no persistence)
``store_backend``    ``REPRO_STORE_BACKEND``  ``None`` (auto-detect)
``store_max_mb``     ``REPRO_STORE_MAX_MB``   ``None`` (unbounded)
``range_solver``     ``REPRO_RANGE_SOLVER``   ``"sparse"``
``lt_solver``        ``REPRO_LT_SOLVER``      ``"sparse"``
``worklist_order``   ``REPRO_WORKLIST_ORDER`` ``"fifo"``
``interval_kernel``  ``REPRO_INTERVAL_KERNEL`` ``"scalar"``
``class_limit``      ``REPRO_CLASS_LIMIT``    ``64`` (``0`` = unlimited)
``verify``           ``REPRO_VERIFY``         ``"off"``
``synth_seed``       ``REPRO_SYNTH_SEED``     ``7``
``full_scale``       ``REPRO_FULL``           ``False``
``trace``            ``REPRO_TRACE``          ``None`` (tracing disabled)
===================  =======================  ==========================
"""

from __future__ import annotations

import dataclasses
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Union


class ConfigError(ValueError):
    """An invalid configuration value, reported at the config boundary.

    Subclasses :class:`ValueError` so existing ``except ValueError``
    call sites keep working.
    """


class _Unset:
    """Sentinel distinguishing "not passed" from every real value."""

    _instance: Optional["_Unset"] = None

    def __new__(cls) -> "_Unset":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<unset>"


UNSET = _Unset()

#: accepted solver names, by field.
RANGE_SOLVERS = ("sparse", "dense")
LT_SOLVERS = ("sparse", "constraint")
#: worklist-ordering policies of the sparse solvers (mirrors
#: ``repro.util.worklist.WORKLIST_ORDERS`` — this module imports nothing
#: from the rest of the package by design).
WORKLIST_ORDERS = ("fifo", "scc", "loopdepth")
#: interval-kernel backends of the ranked table solver (mirrors
#: ``repro.rangeanalysis.kernels.KERNEL_BACKENDS``; ``numpy`` degrades to
#: ``batch`` at runtime when numpy is not installed).
INTERVAL_KERNELS = ("scalar", "batch", "numpy")
STORE_BACKENDS = ("sqlite", "pickle")
#: self-check modes of the verification pass suite (``repro.verify``):
#: ``off`` skips it, ``post`` re-checks every in-process solve, and
#: ``paranoid`` additionally runs inside pool workers, shipping reports
#: back through the shard payload.
VERIFY_MODES = ("off", "post", "paranoid")

_FALSEY = ("", "0", "false", "no", "off")
_TRUTHY = ("1", "true", "yes", "on")


def _source_label(field: str, env_var: str, from_env: bool) -> str:
    return env_var if from_env else field


def _parse_int(field: str, env_var: str, value: object, from_env: bool,
               minimum: Optional[int] = None) -> int:
    source = _source_label(field, env_var, from_env)
    try:
        parsed = int(str(value).strip())
    except (TypeError, ValueError):
        raise ConfigError(
            "{}={!r} is not an integer (expected e.g. {}=4)".format(
                source, value, source)) from None
    if minimum is not None and parsed < minimum:
        raise ConfigError(
            "{}={!r} must be >= {}".format(source, value, minimum))
    return parsed


def _parse_float(field: str, env_var: str, value: object, from_env: bool,
                 minimum: Optional[float] = None) -> float:
    source = _source_label(field, env_var, from_env)
    try:
        parsed = float(str(value).strip())
    except (TypeError, ValueError):
        raise ConfigError(
            "{}={!r} is not a number (expected e.g. {}=64)".format(
                source, value, source)) from None
    if minimum is not None and parsed < minimum:
        raise ConfigError(
            "{}={!r} must be >= {}".format(source, value, minimum))
    return parsed


def _parse_choice(field: str, env_var: str, value: object, from_env: bool,
                  choices) -> str:
    source = _source_label(field, env_var, from_env)
    parsed = str(value).strip().lower()
    if parsed not in choices:
        raise ConfigError("{}={!r} is not one of {}".format(
            source, value, "/".join(choices)))
    return parsed


def _parse_flag(field: str, env_var: str, value: object, from_env: bool) -> bool:
    if isinstance(value, bool):
        return value
    source = _source_label(field, env_var, from_env)
    parsed = str(value).strip().lower()
    if parsed in _TRUTHY:
        return True
    if parsed in _FALSEY:
        return False
    raise ConfigError("{}={!r} is not a boolean (use 1/0, true/false)".format(
        source, value))


def _env(env_var: str) -> Optional[str]:
    raw = os.environ.get(env_var)
    if raw is None:
        return None
    raw = raw.strip()
    return raw if raw else None


# ---------------------------------------------------------------------------
# Per-field resolution: explicit value > environment > default
# ---------------------------------------------------------------------------

def _resolve_workers(value: object) -> int:
    if isinstance(value, _Unset):
        raw = _env("REPRO_WORKERS")
        if raw is None:
            return 0
        return _parse_int("workers", "REPRO_WORKERS", raw, True, minimum=0)
    return _parse_int("workers", "REPRO_WORKERS", value, False, minimum=0)


def _resolve_store_path(value: object) -> Optional[str]:
    if isinstance(value, _Unset):
        return _env("REPRO_STORE")
    if value is None:
        return None
    path = str(value).strip()
    return path or None


def _resolve_store_backend(value: object) -> Optional[str]:
    if isinstance(value, _Unset):
        raw = _env("REPRO_STORE_BACKEND")
        if raw is None:
            return None
        return _parse_choice("store_backend", "REPRO_STORE_BACKEND", raw, True,
                             STORE_BACKENDS)
    if value is None:
        return None
    return _parse_choice("store_backend", "REPRO_STORE_BACKEND", value, False,
                         STORE_BACKENDS)


def _resolve_store_max_mb(value: object) -> Optional[float]:
    """``None`` = unbounded; ``0`` also means unbounded (budget disabled)."""
    if isinstance(value, _Unset):
        raw = _env("REPRO_STORE_MAX_MB")
        if raw is None:
            return None
        parsed = _parse_float("store_max_mb", "REPRO_STORE_MAX_MB", raw, True,
                              minimum=0.0)
    elif value is None:
        return None
    else:
        parsed = _parse_float("store_max_mb", "REPRO_STORE_MAX_MB", value,
                              False, minimum=0.0)
    return parsed if parsed > 0 else None


def _resolve_range_solver(value: object) -> str:
    if isinstance(value, _Unset):
        raw = _env("REPRO_RANGE_SOLVER")
        if raw is None:
            return "sparse"
        return _parse_choice("range_solver", "REPRO_RANGE_SOLVER", raw, True,
                             RANGE_SOLVERS)
    return _parse_choice("range_solver", "REPRO_RANGE_SOLVER", value, False,
                         RANGE_SOLVERS)


def _resolve_lt_solver(value: object) -> str:
    if isinstance(value, _Unset):
        raw = _env("REPRO_LT_SOLVER")
        if raw is None:
            return "sparse"
        return _parse_choice("lt_solver", "REPRO_LT_SOLVER", raw, True,
                             LT_SOLVERS)
    return _parse_choice("lt_solver", "REPRO_LT_SOLVER", value, False,
                         LT_SOLVERS)


def _resolve_worklist_order(value: object) -> str:
    if isinstance(value, _Unset):
        raw = _env("REPRO_WORKLIST_ORDER")
        if raw is None:
            return "fifo"
        return _parse_choice("worklist_order", "REPRO_WORKLIST_ORDER", raw,
                             True, WORKLIST_ORDERS)
    return _parse_choice("worklist_order", "REPRO_WORKLIST_ORDER", value,
                         False, WORKLIST_ORDERS)


def _resolve_interval_kernel(value: object) -> str:
    if isinstance(value, _Unset):
        raw = _env("REPRO_INTERVAL_KERNEL")
        if raw is None:
            return "scalar"
        return _parse_choice("interval_kernel", "REPRO_INTERVAL_KERNEL", raw,
                             True, INTERVAL_KERNELS)
    return _parse_choice("interval_kernel", "REPRO_INTERVAL_KERNEL", value,
                         False, INTERVAL_KERNELS)


def _resolve_verify(value: object) -> str:
    if isinstance(value, _Unset):
        raw = _env("REPRO_VERIFY")
        if raw is None:
            return "off"
        return _parse_choice("verify", "REPRO_VERIFY", raw, True, VERIFY_MODES)
    return _parse_choice("verify", "REPRO_VERIFY", value, False, VERIFY_MODES)


def _resolve_class_limit(value: object) -> int:
    if isinstance(value, _Unset):
        raw = _env("REPRO_CLASS_LIMIT")
        if raw is None:
            return 64
        return _parse_int("class_limit", "REPRO_CLASS_LIMIT", raw, True,
                          minimum=0)
    return _parse_int("class_limit", "REPRO_CLASS_LIMIT", value, False,
                      minimum=0)


def _resolve_synth_seed(value: object) -> int:
    if isinstance(value, _Unset):
        raw = _env("REPRO_SYNTH_SEED")
        if raw is None:
            return 7
        return _parse_int("synth_seed", "REPRO_SYNTH_SEED", raw, True)
    return _parse_int("synth_seed", "REPRO_SYNTH_SEED", value, False)


def _resolve_trace(value: object) -> Optional[str]:
    """A Chrome trace-event output path; ``None`` disables tracing."""
    if isinstance(value, _Unset):
        return _env("REPRO_TRACE")
    if value is None:
        return None
    path = str(value).strip()
    return path or None


def _resolve_full_scale(value: object) -> bool:
    if isinstance(value, _Unset):
        raw = os.environ.get("REPRO_FULL")
        if raw is None:
            return False
        return _parse_flag("full_scale", "REPRO_FULL", raw, True)
    return _parse_flag("full_scale", "REPRO_FULL", value, False)


@dataclass(frozen=True)
class ReproConfig:
    """Every knob of the system, resolved and validated at construction.

    Construct with keyword arguments for the fields you want to pin;
    everything else falls back to its ``REPRO_*`` environment variable and
    then to the built-in default, so ``ReproConfig()`` describes exactly
    what the environment requests.  Instances are frozen (hashable,
    picklable, shareable across worker processes); derive variants with
    :meth:`replace`.
    """

    workers: int = UNSET                     # type: ignore[assignment]
    store_path: Optional[str] = UNSET        # type: ignore[assignment]
    store_backend: Optional[str] = UNSET     # type: ignore[assignment]
    store_max_mb: Optional[float] = UNSET    # type: ignore[assignment]
    range_solver: str = UNSET                # type: ignore[assignment]
    lt_solver: str = UNSET                   # type: ignore[assignment]
    worklist_order: str = UNSET              # type: ignore[assignment]
    interval_kernel: str = UNSET             # type: ignore[assignment]
    verify: str = UNSET                      # type: ignore[assignment]
    class_limit: int = UNSET                 # type: ignore[assignment]
    synth_seed: int = UNSET                  # type: ignore[assignment]
    full_scale: bool = UNSET                 # type: ignore[assignment]
    trace: Optional[str] = UNSET             # type: ignore[assignment]

    def __post_init__(self) -> None:
        resolve = object.__setattr__
        resolve(self, "workers", _resolve_workers(self.workers))
        resolve(self, "store_path", _resolve_store_path(self.store_path))
        resolve(self, "store_backend", _resolve_store_backend(self.store_backend))
        resolve(self, "store_max_mb", _resolve_store_max_mb(self.store_max_mb))
        resolve(self, "range_solver", _resolve_range_solver(self.range_solver))
        resolve(self, "lt_solver", _resolve_lt_solver(self.lt_solver))
        resolve(self, "worklist_order",
                _resolve_worklist_order(self.worklist_order))
        resolve(self, "interval_kernel",
                _resolve_interval_kernel(self.interval_kernel))
        resolve(self, "verify", _resolve_verify(self.verify))
        resolve(self, "class_limit", _resolve_class_limit(self.class_limit))
        resolve(self, "synth_seed", _resolve_synth_seed(self.synth_seed))
        resolve(self, "full_scale", _resolve_full_scale(self.full_scale))
        resolve(self, "trace", _resolve_trace(self.trace))

    # -- derived views -----------------------------------------------------------
    @property
    def store_max_bytes(self) -> Optional[int]:
        """The store byte budget, or ``None`` when unbounded."""
        if self.store_max_mb is None:
            return None
        return int(self.store_max_mb * 1024 * 1024)

    def replace(self, **changes: object) -> "ReproConfig":
        """A copy with ``changes`` applied (and re-validated)."""
        return dataclasses.replace(self, **changes)

    @contextmanager
    def activate(self) -> Iterator["ReproConfig"]:
        """Make this config the innermost *active* config for a ``with`` block.

        While active, every ``resolved_*`` lookup below answers from this
        config instead of the environment — this is how a
        :class:`~repro.api.session.Session`'s knobs reach code deep in the
        pipeline (solver selection, class truncation) without threading a
        parameter through every layer.
        """
        push_config(self)
        try:
            yield self
        finally:
            pop_config(self)

    def __str__(self) -> str:
        pairs = ", ".join("{}={!r}".format(f.name, getattr(self, f.name))
                          for f in dataclasses.fields(self))
        return "ReproConfig({})".format(pairs)


# ---------------------------------------------------------------------------
# The active-config stack
# ---------------------------------------------------------------------------

_ACTIVE: List[ReproConfig] = []


def active_config() -> Optional[ReproConfig]:
    """The innermost active config, or ``None`` (fall back to the environment)."""
    return _ACTIVE[-1] if _ACTIVE else None


def push_config(config: ReproConfig) -> None:
    _ACTIVE.append(config)


def pop_config(config: ReproConfig) -> None:
    if _ACTIVE and _ACTIVE[-1] is config:
        _ACTIVE.pop()
    elif config in _ACTIVE:  # pragma: no cover - unbalanced exits
        _ACTIVE.remove(config)


def install_config(config: ReproConfig) -> None:
    """Install ``config`` as this process's base config (no pairing pop).

    Worker processes call this from their pool initializer so that the
    coordinator's session config governs solver selection and truncation
    inside every worker, under both the ``fork`` and ``spawn`` start
    methods.
    """
    if not _ACTIVE or _ACTIVE[0] != config:
        _ACTIVE.insert(0, config)


# ---------------------------------------------------------------------------
# Resolution entry points for the lower layers
# ---------------------------------------------------------------------------

def resolved_workers() -> int:
    config = active_config()
    return config.workers if config is not None else _resolve_workers(UNSET)


def resolved_store_path() -> Optional[str]:
    config = active_config()
    return (config.store_path if config is not None
            else _resolve_store_path(UNSET))


def resolved_store_backend() -> Optional[str]:
    config = active_config()
    return (config.store_backend if config is not None
            else _resolve_store_backend(UNSET))


def resolved_store_max_bytes() -> Optional[int]:
    config = active_config()
    if config is not None:
        return config.store_max_bytes
    megabytes = _resolve_store_max_mb(UNSET)
    return int(megabytes * 1024 * 1024) if megabytes is not None else None


def resolved_range_solver() -> str:
    config = active_config()
    return (config.range_solver if config is not None
            else _resolve_range_solver(UNSET))


def resolved_lt_solver() -> str:
    config = active_config()
    return config.lt_solver if config is not None else _resolve_lt_solver(UNSET)


def resolved_worklist_order() -> str:
    config = active_config()
    return (config.worklist_order if config is not None
            else _resolve_worklist_order(UNSET))


def resolved_interval_kernel() -> str:
    config = active_config()
    return (config.interval_kernel if config is not None
            else _resolve_interval_kernel(UNSET))


def resolved_verify() -> str:
    """The self-check mode: ``off``, ``post``, or ``paranoid``."""
    config = active_config()
    return config.verify if config is not None else _resolve_verify(UNSET)


def resolved_class_limit() -> Optional[int]:
    """The equivalence-class truncation limit (``None`` = unlimited)."""
    config = active_config()
    limit = (config.class_limit if config is not None
             else _resolve_class_limit(UNSET))
    return limit if limit > 0 else None


def resolved_synth_seed() -> int:
    config = active_config()
    return (config.synth_seed if config is not None
            else _resolve_synth_seed(UNSET))


def resolved_full_scale() -> bool:
    config = active_config()
    return (config.full_scale if config is not None
            else _resolve_full_scale(UNSET))


def resolved_trace() -> Optional[str]:
    """The trace output path, or ``None`` when tracing is off."""
    config = active_config()
    return config.trace if config is not None else _resolve_trace(UNSET)


# ---------------------------------------------------------------------------
# Validated environment helpers for harness-local knobs
# ---------------------------------------------------------------------------
#
# Benchmark gates keep their thresholds next to the benchmark (they are not
# system knobs), but their parsing lives here so that every ``REPRO_*``
# environment read flows through one validated boundary.

def env_int(env_var: str, default: int, minimum: Optional[int] = None) -> int:
    raw = _env(env_var)
    if raw is None:
        return default
    return _parse_int(env_var, env_var, raw, True, minimum=minimum)


def env_float(env_var: str, default: float,
              minimum: Optional[float] = None) -> float:
    raw = _env(env_var)
    if raw is None:
        return default
    return _parse_float(env_var, env_var, raw, True, minimum=minimum)


def env_flag(env_var: str, default: bool = False) -> bool:
    raw = os.environ.get(env_var)
    if raw is None:
        return default
    return _parse_flag(env_var, env_var, raw, True)
