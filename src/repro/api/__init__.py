"""The unified public facade of the reproduction.

Three layers, built on top of each other:

* :class:`ReproConfig` (:mod:`repro.api.config`) — one frozen, validated
  dataclass holding every knob, with the documented precedence chain
  *explicit argument > config field > ``REPRO_*`` env var > default*;
* :class:`Session` (:mod:`repro.api.session`) — the fluent entry point
  owning one analysis cache, one persistent-store handle and the execution
  engine: ``Session(config).compile(src).analyze().disambiguate()``,
  ``Session.evaluate(...)``, ``Session.run_workload(...)``;
* the ``python -m repro`` CLI (:mod:`repro.api.cli`) — ``eval``,
  ``print-ir``, ``stats`` and ``store`` subcommands over the same facade.

``repro.api.config`` imports nothing from the rest of the package (lower
layers depend on it for ``REPRO_*`` resolution), so this ``__init__``
imports it eagerly and loads the session/CLI layers lazily via PEP 562 to
keep the import graph acyclic.
"""

from repro.api.config import (
    ConfigError,
    ReproConfig,
    active_config,
    env_flag,
    env_float,
    env_int,
)

_LAZY = {
    "Session": ("repro.api.session", "Session"),
    "CompiledUnit": ("repro.api.session", "CompiledUnit"),
    "DisambiguationReport": ("repro.api.session", "DisambiguationReport"),
    "UpdateResult": ("repro.api.session", "UpdateResult"),
    "main": ("repro.api.cli", "main"),
}

__all__ = [
    "ConfigError",
    "ReproConfig",
    "Session",
    "CompiledUnit",
    "DisambiguationReport",
    "UpdateResult",
    "active_config",
    "env_flag",
    "env_float",
    "env_int",
    "main",
]


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(
            "module {!r} has no attribute {!r}".format(__name__, name)) from None
    import importlib

    return getattr(importlib.import_module(module_name), attribute)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
