"""A set that remembers insertion order.

Static analyses are much easier to debug when their outputs are
deterministic.  Python sets do not guarantee iteration order across runs for
arbitrary objects (identity hashing depends on addresses), so every place in
the code base that stores collections of IR values uses :class:`OrderedSet`
instead of the built-in ``set``.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Optional, TypeVar

T = TypeVar("T", bound=Hashable)


class OrderedSet:
    """A mutable set preserving insertion order.

    The implementation stores members as keys of a ``dict``, which preserves
    insertion order since Python 3.7.  The class implements the subset of the
    ``set`` interface that the analyses need: membership, union,
    intersection, difference, update operations and iteration.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Optional[Iterable[T]] = None) -> None:
        self._items = {}
        if items is not None:
            for item in items:
                self._items[item] = None

    # -- basic protocol ----------------------------------------------------
    def __contains__(self, item: T) -> bool:
        return item in self._items

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, OrderedSet):
            return set(self._items) == set(other._items)
        if isinstance(other, (set, frozenset)):
            return set(self._items) == other
        return NotImplemented

    def __hash__(self):  # pragma: no cover - explicit unhashability
        raise TypeError("OrderedSet is mutable and therefore unhashable")

    def __repr__(self) -> str:
        return "OrderedSet({})".format(list(self._items))

    # -- mutation ----------------------------------------------------------
    def add(self, item: T) -> None:
        """Insert ``item``; no effect if already present."""
        self._items[item] = None

    def discard(self, item: T) -> None:
        """Remove ``item`` if present."""
        self._items.pop(item, None)

    def remove(self, item: T) -> None:
        """Remove ``item``; raise ``KeyError`` if absent."""
        del self._items[item]

    def clear(self) -> None:
        self._items.clear()

    def update(self, items: Iterable[T]) -> None:
        for item in items:
            self._items[item] = None

    def intersection_update(self, other: Iterable[T]) -> None:
        keep = set(other)
        self._items = {k: None for k in self._items if k in keep}

    def difference_update(self, other: Iterable[T]) -> None:
        drop = set(other)
        self._items = {k: None for k in self._items if k not in drop}

    def pop(self) -> T:
        """Remove and return the first (oldest) element."""
        item = next(iter(self._items))
        del self._items[item]
        return item

    # -- non-mutating operations -------------------------------------------
    def copy(self) -> "OrderedSet":
        new = OrderedSet()
        new._items = dict(self._items)
        return new

    def union(self, *others: Iterable[T]) -> "OrderedSet":
        new = self.copy()
        for other in others:
            new.update(other)
        return new

    def intersection(self, *others: Iterable[T]) -> "OrderedSet":
        new = self.copy()
        for other in others:
            new.intersection_update(other)
        return new

    def difference(self, *others: Iterable[T]) -> "OrderedSet":
        new = self.copy()
        for other in others:
            new.difference_update(other)
        return new

    def issubset(self, other: Iterable[T]) -> bool:
        other_set = set(other)
        return all(item in other_set for item in self._items)

    def issuperset(self, other: Iterable[T]) -> bool:
        return all(item in self._items for item in other)

    def isdisjoint(self, other: Iterable[T]) -> bool:
        return all(item not in self._items for item in other)

    # Operator sugar mirroring ``set``.
    def __or__(self, other: Iterable[T]) -> "OrderedSet":
        return self.union(other)

    def __and__(self, other: Iterable[T]) -> "OrderedSet":
        return self.intersection(other)

    def __sub__(self, other: Iterable[T]) -> "OrderedSet":
        return self.difference(other)
