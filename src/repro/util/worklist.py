"""Shared worklist machinery for the fixed-point solvers.

Both sparse solvers (the range analysis' def-use solver and the less-than
constraint solver) follow the usual chaotic-iteration scheme: pop an item,
re-evaluate its transfer function, and push its dependents when the abstract
state changed.  Pushing an item that is already pending is wasteful, so every
worklist here tracks membership and counts the pushes it absorbed
(*coalesced* pushes) next to the pops it served.

The *order* in which pending items are popped is a swappable policy — the
MPRGP expansion-strategy shape: one iteration skeleton, interchangeable
per-round policies, and an info struct of counters.  Three policies are
registered (``WORKLIST_ORDERS``):

``fifo``
    Insertion order.  For the range solver this replays the dense
    Gauss–Seidel trajectory bit-identically; for the less-than solver it is
    the legacy queue behaviour.
``scc``
    Topological order of the dependence structure: members of a cyclic SCC
    are ranked by an intra-component reverse postorder, less-than variables
    by the condensation order of their constraint dependency graph.
``loopdepth``
    Loop-nesting depth first (outermost first), topological rank second.
    Falls back to ``scc`` ranks where no loop structure exists (the
    constraint graph).

Three classes implement the scheme:

* :class:`Worklist` — the plain FIFO worklist (kept for the Andersen solver
  and the legacy constraint-keyed strategy).
* :class:`PriorityWorklist` — a keyed worklist whose pop order follows an
  optional rank map; without ranks it degrades to FIFO.  This is the single
  home of the "coalesced push" bookkeeping both sparse solvers used to
  duplicate.
* :class:`SweepWorklist` — the range solver's ``(sweep, rank)`` heap: a pop
  at rank *r* schedules lower-ranked dependents into the *next* sweep and
  higher-ranked ones into the *current* one, which is exactly a ranked
  Gauss–Seidel sweep without the no-op visits.

:class:`SolverInfo` is the cross-solver counter struct (transfer-function
evaluations, widenings, SCC counts, per-policy pops).  It merges losslessly,
which is how per-shard counters survive the execution engine's coordinator.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import (
    Deque,
    Dict,
    Generic,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

from repro.api.config import ConfigError

T = TypeVar("T", bound=Hashable)

#: the registered worklist-ordering policies (the ``REPRO_WORKLIST_ORDER``
#: values; :mod:`repro.api.config` validates against the same names).
WORKLIST_ORDERS = ("fifo", "scc", "loopdepth")


def validate_order(order: str) -> str:
    """Return ``order`` or raise ``ConfigError`` naming the accepted policies."""
    if order not in WORKLIST_ORDERS:
        raise ConfigError(
            "worklist_order={!r} is not one of {}".format(
                order, "/".join(WORKLIST_ORDERS)))
    return order


class SolverInfo:
    """Counters describing fixed-point solver work, mergeable across shards.

    ``evaluations`` counts transfer-function applications (the quantity the
    sparse solvers exist to reduce), ``sccs``/``cyclic_sccs`` the dependence
    components the schedule visited, and ``pops`` the worklist pops keyed by
    the ordering policy that served them — the MPRGP-style evidence that one
    ordering does no more rounds than another.
    """

    __slots__ = ("evaluations", "widenings", "narrowings", "sccs",
                 "cyclic_sccs", "pops", "batched_sweeps",
                 "batched_evaluations", "backends")

    def __init__(self, evaluations: int = 0, widenings: int = 0,
                 narrowings: int = 0, sccs: int = 0, cyclic_sccs: int = 0,
                 pops: Optional[Dict[str, int]] = None,
                 batched_sweeps: int = 0, batched_evaluations: int = 0,
                 backends: Optional[Dict[str, int]] = None) -> None:
        self.evaluations = evaluations
        self.widenings = widenings
        self.narrowings = narrowings
        self.sccs = sccs
        self.cyclic_sccs = cyclic_sccs
        self.pops: Dict[str, int] = dict(pops) if pops else {}
        #: full batched sweeps run by the interval-kernel sweep executor and
        #: the member evaluations they performed (a subset of
        #: ``evaluations``; both 0 under the scalar backend).
        self.batched_sweeps = batched_sweeps
        self.batched_evaluations = batched_evaluations
        #: solves served, keyed by the kernel backend that served them.
        self.backends: Dict[str, int] = dict(backends) if backends else {}

    def record_pops(self, order: str, count: int) -> None:
        if count:
            self.pops[order] = self.pops.get(order, 0) + count

    def record_backend(self, backend: str, solves: int = 1) -> None:
        if solves:
            self.backends[backend] = self.backends.get(backend, 0) + solves

    def merge(self, other: "SolverInfo") -> "SolverInfo":
        """Lossless sum of two counter sets (commutative)."""
        pops = dict(self.pops)
        for order, count in other.pops.items():
            pops[order] = pops.get(order, 0) + count
        backends = dict(self.backends)
        for backend, count in other.backends.items():
            backends[backend] = backends.get(backend, 0) + count
        return SolverInfo(
            evaluations=self.evaluations + other.evaluations,
            widenings=self.widenings + other.widenings,
            narrowings=self.narrowings + other.narrowings,
            sccs=self.sccs + other.sccs,
            cyclic_sccs=self.cyclic_sccs + other.cyclic_sccs,
            pops=pops,
            batched_sweeps=self.batched_sweeps + other.batched_sweeps,
            batched_evaluations=(self.batched_evaluations
                                 + other.batched_evaluations),
            backends=backends)

    def as_dict(self) -> Dict[str, object]:
        return {
            "evaluations": self.evaluations,
            "widenings": self.widenings,
            "narrowings": self.narrowings,
            "sccs": self.sccs,
            "cyclic_sccs": self.cyclic_sccs,
            "pops": dict(sorted(self.pops.items())),
            "batched_sweeps": self.batched_sweeps,
            "batched_evaluations": self.batched_evaluations,
            "backends": dict(sorted(self.backends.items())),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SolverInfo":
        pops = data.get("pops", {}) or {}
        backends = data.get("backends", {}) or {}
        return cls(
            evaluations=int(data.get("evaluations", 0)),
            widenings=int(data.get("widenings", 0)),
            narrowings=int(data.get("narrowings", 0)),
            sccs=int(data.get("sccs", 0)),
            cyclic_sccs=int(data.get("cyclic_sccs", 0)),
            pops={str(order): int(count) for order, count in dict(pops).items()},
            batched_sweeps=int(data.get("batched_sweeps", 0)),
            batched_evaluations=int(data.get("batched_evaluations", 0)),
            backends={str(backend): int(count)
                      for backend, count in dict(backends).items()})

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SolverInfo):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        return "<SolverInfo evaluations={} widenings={} sccs={} pops={}>".format(
            self.evaluations, self.widenings, self.sccs, self.pops)


class Worklist(Generic[T]):
    """FIFO worklist with duplicate suppression and pop accounting."""

    def __init__(self, items: Optional[Iterable[T]] = None) -> None:
        self._queue: Deque[T] = deque()
        self._pending: Set[T] = set()
        self.pops = 0
        self.pushes = 0
        if items is not None:
            for item in items:
                self.push(item)

    def push(self, item: T) -> bool:
        """Add ``item`` unless it is already pending.  Return True if added."""
        if item in self._pending:
            return False
        self._pending.add(item)
        self._queue.append(item)
        self.pushes += 1
        return True

    def extend(self, items: Iterable[T]) -> int:
        """Push every item; return how many were actually added."""
        return sum(1 for item in items if self.push(item))

    def pop(self) -> T:
        item = self._queue.popleft()
        self._pending.discard(item)
        self.pops += 1
        return item

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __len__(self) -> int:
        return len(self._queue)

    def __contains__(self, item: T) -> bool:
        return item in self._pending


class PriorityWorklist(Generic[T]):
    """Keyed worklist whose pop order follows an optional rank map.

    ``ranks`` maps items to integer priorities (smaller pops first); ties
    and unranked items fall back to insertion order, so with ``ranks=None``
    the worklist is exactly FIFO.  Duplicate pushes coalesce into the one
    pending entry and are counted (``coalesced``) — the dedup bookkeeping
    the sparse solvers used to carry each on their own.
    """

    def __init__(self, ranks: Optional[Mapping[T, int]] = None,
                 items: Optional[Iterable[T]] = None) -> None:
        self._ranks = ranks
        self._heap: List[Tuple[int, int, T]] = []
        self._queue: Deque[T] = deque()
        self._pending: Set[T] = set()
        self._sequence = 0
        self.pops = 0
        self.pushes = 0
        self.coalesced = 0
        if items is not None:
            for item in items:
                self.push(item)

    def push(self, item: T) -> bool:
        """Schedule ``item``; absorbed (and counted) when already pending."""
        if item in self._pending:
            self.coalesced += 1
            return False
        self._pending.add(item)
        self.pushes += 1
        if self._ranks is None:
            self._queue.append(item)
        else:
            self._sequence += 1
            heapq.heappush(self._heap,
                           (self._ranks.get(item, 0), self._sequence, item))
        return True

    def pop(self) -> T:
        if self._ranks is None:
            item = self._queue.popleft()
        else:
            _rank, _seq, item = heapq.heappop(self._heap)
        self._pending.discard(item)
        self.pops += 1
        return item

    def __bool__(self) -> bool:
        return bool(self._queue) or bool(self._heap)

    def __len__(self) -> int:
        return len(self._queue) + len(self._heap)

    def __contains__(self, item: T) -> bool:
        return item in self._pending


class SweepWorklist:
    """The sparse range solver's ``(sweep, rank)`` heap with dedup.

    Items are member indices of one dependence component; ``ranks[index]``
    is the policy rank of that member.  The heap is ordered by
    ``(sweep, rank)``: popping replays ranked Gauss–Seidel sweeps, and
    :meth:`schedule` implements the sweep rule — a dependent ranked after
    the changed member is revisited in the *same* sweep (it would have seen
    the update in a dense pass too), one ranked before it in the *next*.
    """

    __slots__ = ("_ranks", "_heap", "_pending", "pops", "pushes", "coalesced")

    def __init__(self, ranks: List[int],
                 seed_sweep: Optional[int] = 0) -> None:
        self._ranks = ranks
        self._heap: List[Tuple[int, int, int]] = []
        self._pending: Set[Tuple[int, int]] = set()
        self.pops = 0
        self.pushes = 0
        self.coalesced = 0
        if seed_sweep is not None:
            self.seed(seed_sweep)

    def seed(self, sweep: int) -> None:
        """Schedule every member for ``sweep`` (the initial full round)."""
        for index in range(len(self._ranks)):
            self.push(sweep, index)

    def push(self, sweep: int, index: int) -> bool:
        entry = (sweep, index)
        if entry in self._pending:
            self.coalesced += 1
            return False
        self._pending.add(entry)
        self.pushes += 1
        heapq.heappush(self._heap, (sweep, self._ranks[index], index))
        return True

    def schedule(self, sweep: int, source_index: int,
                 dependents: Iterable[int]) -> None:
        """Schedule ``dependents`` of a member that changed during ``sweep``."""
        source_rank = self._ranks[source_index]
        for target_index in dependents:
            target_sweep = (sweep if self._ranks[target_index] > source_rank
                            else sweep + 1)
            self.push(target_sweep, target_index)

    def pop(self) -> Tuple[int, int]:
        sweep, _rank, index = heapq.heappop(self._heap)
        self._pending.discard((sweep, index))
        self.pops += 1
        return sweep, index

    def next_sweep(self) -> Optional[int]:
        """The sweep of the next pop, or ``None`` when drained."""
        return self._heap[0][0] if self._heap else None

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __len__(self) -> int:
        return len(self._heap)
