"""A FIFO worklist that avoids duplicate pending entries.

The less-than constraint solver and the range analysis both follow the usual
chaotic-iteration scheme: pop an item, re-evaluate its transfer function, and
push its dependents when the abstract state changed.  Pushing an item that is
already pending is wasteful, so the worklist tracks membership.

The class also counts the total number of pops, which the paper uses in
Section 4.2 to argue that each constraint is visited roughly twice before the
fixed point is reached.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Hashable, Iterable, Optional, Set, TypeVar

T = TypeVar("T", bound=Hashable)


class Worklist(Generic[T]):
    """FIFO worklist with duplicate suppression and pop accounting."""

    def __init__(self, items: Optional[Iterable[T]] = None) -> None:
        self._queue: Deque[T] = deque()
        self._pending: Set[T] = set()
        self.pops = 0
        self.pushes = 0
        if items is not None:
            for item in items:
                self.push(item)

    def push(self, item: T) -> bool:
        """Add ``item`` unless it is already pending.  Return True if added."""
        if item in self._pending:
            return False
        self._pending.add(item)
        self._queue.append(item)
        self.pushes += 1
        return True

    def extend(self, items: Iterable[T]) -> int:
        """Push every item; return how many were actually added."""
        return sum(1 for item in items if self.push(item))

    def pop(self) -> T:
        item = self._queue.popleft()
        self._pending.discard(item)
        self.pops += 1
        return item

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __len__(self) -> int:
        return len(self._queue)

    def __contains__(self, item: T) -> bool:
        return item in self._pending
