"""Shared utilities used across the reproduction.

This package intentionally has no dependency on the IR or the analyses, so
that every other subsystem may rely on it freely.
"""

from repro.util.ordered_set import OrderedSet
from repro.util.unionfind import UnionFind
from repro.util.worklist import (
    WORKLIST_ORDERS,
    PriorityWorklist,
    SolverInfo,
    SweepWorklist,
    Worklist,
)
from repro.util.stats import (
    coefficient_of_determination,
    linear_regression,
    mean,
    median,
    summarize,
)

__all__ = [
    "OrderedSet",
    "PriorityWorklist",
    "SolverInfo",
    "SweepWorklist",
    "UnionFind",
    "WORKLIST_ORDERS",
    "Worklist",
    "coefficient_of_determination",
    "linear_regression",
    "mean",
    "median",
    "summarize",
]
