"""Minimal Graphviz DOT emission.

Several data structures in this project (control-flow graphs, dominator
trees, inequality graphs, program dependence graphs) are naturally viewed as
graphs.  This helper builds DOT text without depending on the ``graphviz``
package, which is not available offline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


def _escape(label: str) -> str:
    return label.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class DotGraph:
    """Accumulates nodes and edges and renders them as DOT source text."""

    def __init__(self, name: str = "G", directed: bool = True) -> None:
        self.name = name
        self.directed = directed
        self._nodes: Dict[str, Dict[str, str]] = {}
        self._edges: List[Tuple[str, str, Dict[str, str]]] = []

    def add_node(self, node_id: str, label: Optional[str] = None, **attrs: str) -> None:
        merged = dict(attrs)
        if label is not None:
            merged["label"] = label
        self._nodes[node_id] = merged

    def add_edge(self, src: str, dst: str, label: Optional[str] = None, **attrs: str) -> None:
        merged = dict(attrs)
        if label is not None:
            merged["label"] = label
        # Ensure endpoints exist even when the caller never declared them.
        self._nodes.setdefault(src, {})
        self._nodes.setdefault(dst, {})
        self._edges.append((src, dst, merged))

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    def _render_attrs(self, attrs: Dict[str, str]) -> str:
        if not attrs:
            return ""
        parts = ['{}="{}"'.format(key, _escape(value)) for key, value in attrs.items()]
        return " [{}]".format(", ".join(parts))

    def to_dot(self) -> str:
        kind = "digraph" if self.directed else "graph"
        arrow = "->" if self.directed else "--"
        lines = ["{} {} {{".format(kind, self.name)]
        for node_id, attrs in self._nodes.items():
            lines.append('  "{}"{};'.format(_escape(node_id), self._render_attrs(attrs)))
        for src, dst, attrs in self._edges:
            lines.append(
                '  "{}" {} "{}"{};'.format(
                    _escape(src), arrow, _escape(dst), self._render_attrs(attrs)
                )
            )
        lines.append("}")
        return "\n".join(lines) + "\n"

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_dot())
