"""Tiny statistics helpers used by the evaluation harness.

The scalability experiment (Figure 11 of the paper) reports the coefficient
of determination (R squared) between the number of instructions of a program
and the number of less-than constraints generated for it.  These helpers keep
the benchmark code free of ad-hoc math and are unit-tested on their own.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean.  Raises ``ValueError`` on an empty sequence."""
    if not values:
        raise ValueError("mean() of empty sequence")
    return sum(values) / len(values)


def median(values: Sequence[float]) -> float:
    """Median of the sequence.  Raises ``ValueError`` on an empty sequence."""
    if not values:
        raise ValueError("median() of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def linear_regression(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Ordinary least-squares fit ``y = slope * x + intercept``.

    Returns ``(slope, intercept)``.  Requires at least two points and a
    non-degenerate ``xs`` (not all identical).
    """
    if len(xs) != len(ys):
        raise ValueError("x and y must have the same length")
    if len(xs) < 2:
        raise ValueError("need at least two points for a regression")
    mx, my = mean(xs), mean(ys)
    sxx = sum((x - mx) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("all x values are identical; slope is undefined")
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = my - slope * mx
    return slope, intercept


def coefficient_of_determination(xs: Sequence[float], ys: Sequence[float]) -> float:
    """R squared of the least-squares linear fit of ``ys`` against ``xs``.

    A value close to 1.0 indicates a strong linear relationship; the paper
    reports 0.992 between instruction counts and constraint counts.
    """
    slope, intercept = linear_regression(xs, ys)
    my = mean(ys)
    ss_tot = sum((y - my) ** 2 for y in ys)
    if ss_tot == 0:
        # All y identical: the fit is exact by definition.
        return 1.0
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    return 1.0 - ss_res / ss_tot


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Return min/max/mean/median of ``values`` as a dictionary."""
    if not values:
        raise ValueError("summarize() of empty sequence")
    return {
        "min": float(min(values)),
        "max": float(max(values)),
        "mean": mean(values),
        "median": median(values),
    }
