"""Tarjan's strongly-connected-components algorithm, shared infrastructure.

Both dependency condensations in the code base — the range analysis' def-use
graph (:mod:`repro.rangeanalysis.graph`) and the module call graph
(:mod:`repro.ir.callgraph`) — reduce to the same primitive: decompose a
directed graph into SCCs and process the condensation in topological order.
The implementation is iterative (no recursion-limit surprises on long
def-use chains or deep call chains) and deterministic: components come out
in a fixed order for a fixed ``nodes`` sequence and successor lists.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Set


def strongly_connected_components(nodes: Sequence[Hashable],
                                  successors: Dict[Hashable, List[Hashable]]) -> List[List[Hashable]]:
    """Tarjan's algorithm, iterative to avoid recursion limits.

    Returns the components in reverse topological order of the condensation:
    every component is emitted before the components that depend on it
    (i.e. successors first).  Callers that want dependants-first order
    reverse the result.  Components are lists of nodes.
    """
    index_counter = [0]
    indices: Dict[Hashable, int] = {}
    lowlinks: Dict[Hashable, int] = {}
    on_stack: Set[Hashable] = set()
    stack: List[Hashable] = []
    components: List[List[Hashable]] = []

    for root in nodes:
        if root in indices:
            continue
        work = [(root, iter(successors.get(root, [])))]
        indices[root] = lowlinks[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, succ_iter = work[-1]
            advanced = False
            for succ in succ_iter:
                if succ not in indices:
                    indices[succ] = lowlinks[succ] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(successors.get(succ, []))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlinks[node] = min(lowlinks[node], indices[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indices[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member is node:
                        break
                components.append(component)
    return components
