"""Union-find (disjoint sets) with path compression and union by rank.

Used by the Steensgaard-style unification alias analysis and by the PDG
builder when merging memory locations that may alias.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List


class UnionFind:
    """Classic disjoint-set forest keyed on arbitrary hashable objects."""

    def __init__(self) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}

    def make_set(self, item: Hashable) -> None:
        """Register ``item`` as a singleton set if it is not known yet."""
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    def find(self, item: Hashable) -> Hashable:
        """Return the representative of the set containing ``item``.

        The item is registered on the fly if unknown, which keeps call sites
        simple ("find or create").
        """
        self.make_set(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the sets containing ``a`` and ``b``; return the new root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return ra

    def connected(self, a: Hashable, b: Hashable) -> bool:
        return self.find(a) == self.find(b)

    def members(self) -> Iterable[Hashable]:
        return self._parent.keys()

    def groups(self) -> List[List[Hashable]]:
        """Return the partition as a list of member lists (insertion order)."""
        by_root: Dict[Hashable, List[Hashable]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), []).append(item)
        return list(by_root.values())

    def __len__(self) -> int:
        return len(self._parent)
