"""The interval abstract domain.

An :class:`Interval` is a pair ``[lower, upper]`` of extended integers
(integers extended with minus and plus infinity).  The empty interval is the
bottom element; ``[-inf, +inf]`` is the top element.  The domain supports the
abstract counterparts of the arithmetic the IR performs plus the lattice
operations (join, meet, widening, narrowing) that the fixed-point solver
needs.

Intervals are immutable and hashable, and the common ones are **interned**:
:meth:`Interval.of` (which every constructor and every operation routes
through) answers from a canonical-object cache, so the fixed-point solver's
hot ``join``/``widen``/``refine_*`` paths return existing objects instead of
allocating.  The lattice operations additionally return ``self``/``other``
directly whenever the result equals an operand — in a stable solve (the
common case after the first few iterations) no object is created at all.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple, Union

# Extended integers: plain Python ints plus the two infinities, represented
# with floats so that comparisons work out of the box.
NEG_INF = float("-inf")
POS_INF = float("inf")

Extended = Union[int, float]


def _add(a: Extended, b: Extended, opposite: Extended = NEG_INF) -> Extended:
    """Extended addition; infinity absorbs finite operands.

    ``(+inf) + (-inf)`` has no meaningful value, so the convention is made
    explicit: ``opposite`` is returned, independent of operand order.  The
    caller passes the conservative direction for the bound it is computing
    (``NEG_INF`` for lower bounds, ``POS_INF`` for upper bounds), so the
    degenerate sum always widens the interval rather than flipping a bound.
    """
    a_infinite = a in (NEG_INF, POS_INF)
    b_infinite = b in (NEG_INF, POS_INF)
    if a_infinite and b_infinite and a != b:
        return opposite
    if a_infinite:
        return a
    if b_infinite:
        return b
    return a + b


def _div_trunc(a: int, b: int) -> int:
    """Exact C-style (truncating) integer division, without float round-off."""
    quotient = a // b
    if quotient < 0 and quotient * b != a:
        quotient += 1
    return quotient


def _mul(a: Extended, b: Extended) -> Extended:
    """Extended multiplication with 0 * inf = 0 (the usual interval convention)."""
    if a == 0 or b == 0:
        return 0
    if a in (NEG_INF, POS_INF) or b in (NEG_INF, POS_INF):
        positive = (a > 0) == (b > 0)
        return POS_INF if positive else NEG_INF
    return a * b


class Interval:
    """A closed interval of extended integers, or the empty (bottom) interval."""

    __slots__ = ("lower", "upper", "_empty")

    #: canonical-object cache of ``(lower, upper) -> Interval``; bounded so a
    #: pathological workload cannot grow it without limit.  Shared process-wide
    #: (intervals are immutable value objects).
    _interned: Dict[Tuple[Extended, Extended], "Interval"] = {}
    _INTERN_CAP = 1 << 16
    #: lifetime probe counters of :meth:`of` (hit = answered from the cache);
    #: surfaced through ``MetricsRegistry`` / ``python -m repro stats`` so a
    #: long-lived session can watch the cache instead of guessing.
    _intern_hits = 0
    _intern_misses = 0

    def __init__(self, lower: Extended = NEG_INF, upper: Extended = POS_INF,
                 empty: bool = False) -> None:
        if not empty and lower > upper:
            raise ValueError("interval lower bound {} exceeds upper bound {}".format(lower, upper))
        self._empty = empty
        self.lower = lower if not empty else POS_INF
        self.upper = upper if not empty else NEG_INF

    # -- constructors ---------------------------------------------------------
    @classmethod
    def of(cls, lower: Extended, upper: Extended) -> "Interval":
        """The canonical (interned) interval ``[lower, upper]``.

        Equal bounds always yield the *same* object, so repeated lattice
        operations in the fixed-point solver stop allocating and identity
        checks (``a is b``) become meaningful for cache-friendliness.  The
        cache is capacity-bounded; beyond the cap, fresh (still equal, just
        not canonical) objects are handed out.
        """
        key = (lower, upper)
        cached = cls._interned.get(key)
        if cached is not None:
            cls._intern_hits += 1
            return cached
        cls._intern_misses += 1
        interval = cls(lower, upper)
        if len(cls._interned) < cls._INTERN_CAP:
            cls._interned[key] = interval
        return interval

    @classmethod
    def intern_info(cls) -> Dict[str, Union[int, float]]:
        """Size, capacity and lifetime hit/miss counters of the intern cache."""
        hits = cls._intern_hits
        misses = cls._intern_misses
        probes = hits + misses
        return {
            "size": len(cls._interned),
            "capacity": cls._INTERN_CAP,
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / probes) if probes else 0.0,
        }

    @classmethod
    def clear_interned(cls) -> int:
        """Drop the cached intervals (long-lived services call this between
        workloads); returns how many entries were evicted.

        The canonical singletons survive: ``top()`` stays registered so
        identity-based fast paths keep returning the one ``_TOP`` object,
        and the probe counters are reset alongside the entries.
        """
        evicted = len(cls._interned)
        cls._interned.clear()
        cls._interned[(NEG_INF, POS_INF)] = _TOP
        evicted -= 1
        cls._intern_hits = 0
        cls._intern_misses = 0
        return evicted

    @staticmethod
    def top() -> "Interval":
        return _TOP

    @staticmethod
    def bottom() -> "Interval":
        return _BOTTOM

    @staticmethod
    def constant(value: int) -> "Interval":
        return Interval.of(value, value)

    @staticmethod
    def at_least(value: Extended) -> "Interval":
        return Interval.of(value, POS_INF)

    @staticmethod
    def at_most(value: Extended) -> "Interval":
        return Interval.of(NEG_INF, value)

    # -- predicates --------------------------------------------------------------
    def is_bottom(self) -> bool:
        return self._empty

    def is_top(self) -> bool:
        return not self._empty and self.lower == NEG_INF and self.upper == POS_INF

    def is_constant(self) -> bool:
        return not self._empty and self.lower == self.upper

    def is_strictly_positive(self) -> bool:
        return not self._empty and self.lower > 0

    def is_strictly_negative(self) -> bool:
        return not self._empty and self.upper < 0

    def is_non_negative(self) -> bool:
        return not self._empty and self.lower >= 0

    def is_non_positive(self) -> bool:
        return not self._empty and self.upper <= 0

    def contains(self, value: int) -> bool:
        return not self._empty and self.lower <= value <= self.upper

    def intersects(self, other: "Interval") -> bool:
        if self._empty or other._empty:
            return False
        return self.lower <= other.upper and other.lower <= self.upper

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Interval):
            return NotImplemented
        if self._empty or other._empty:
            return self._empty and other._empty
        return self.lower == other.lower and self.upper == other.upper

    def __hash__(self) -> int:
        return hash((self._empty, self.lower, self.upper))

    def __repr__(self) -> str:
        if self._empty:
            return "Interval(bottom)"
        return "Interval[{}, {}]".format(self.lower, self.upper)

    # -- lattice operations ---------------------------------------------------------
    def join(self, other: "Interval") -> "Interval":
        """Least upper bound (interval hull)."""
        if self._empty:
            return other
        if other._empty or other is self:
            return self
        lower = self.lower if self.lower <= other.lower else other.lower
        upper = self.upper if self.upper >= other.upper else other.upper
        if lower == self.lower and upper == self.upper:
            return self
        if lower == other.lower and upper == other.upper:
            return other
        return Interval.of(lower, upper)

    def meet(self, other: "Interval") -> "Interval":
        """Greatest lower bound (intersection)."""
        if self._empty or other._empty:
            return _BOTTOM
        lower = self.lower if self.lower >= other.lower else other.lower
        upper = self.upper if self.upper <= other.upper else other.upper
        if lower > upper:
            return _BOTTOM
        if lower == self.lower and upper == self.upper:
            return self
        if lower == other.lower and upper == other.upper:
            return other
        return Interval.of(lower, upper)

    def widen(self, other: "Interval") -> "Interval":
        """Standard interval widening: unstable bounds jump to infinity."""
        if self._empty:
            return other
        if other._empty or other is self:
            return self
        lower = self.lower if other.lower >= self.lower else NEG_INF
        upper = self.upper if other.upper <= self.upper else POS_INF
        if lower == self.lower and upper == self.upper:
            return self
        return Interval.of(lower, upper)

    def narrow(self, other: "Interval") -> "Interval":
        """Standard interval narrowing: infinities are refined, finite bounds kept."""
        if self._empty or other._empty:
            return _BOTTOM
        lower = other.lower if self.lower == NEG_INF else self.lower
        upper = other.upper if self.upper == POS_INF else self.upper
        if lower > upper:
            return _BOTTOM
        if lower == self.lower and upper == self.upper:
            return self
        return Interval.of(lower, upper)

    def includes(self, other: "Interval") -> bool:
        """True if ``other`` is a subset of ``self``."""
        if other._empty:
            return True
        if self._empty:
            return False
        return self.lower <= other.lower and other.upper <= self.upper

    # -- abstract arithmetic --------------------------------------------------------
    def add(self, other: "Interval") -> "Interval":
        if self._empty or other._empty:
            return _BOTTOM
        return Interval.of(_add(self.lower, other.lower, NEG_INF),
                           _add(self.upper, other.upper, POS_INF))

    def neg(self) -> "Interval":
        if self._empty:
            return _BOTTOM
        return Interval.of(-self.upper, -self.lower)

    def sub(self, other: "Interval") -> "Interval":
        return self.add(other.neg())

    def mul(self, other: "Interval") -> "Interval":
        if self._empty or other._empty:
            return _BOTTOM
        products = [
            _mul(self.lower, other.lower),
            _mul(self.lower, other.upper),
            _mul(self.upper, other.lower),
            _mul(self.upper, other.upper),
        ]
        return Interval.of(min(products), max(products))

    def div(self, other: "Interval") -> "Interval":
        """Conservative division: exact only when the divisor is a non-zero constant."""
        if self._empty or other._empty:
            return _BOTTOM
        if other.is_constant() and other.lower not in (0, NEG_INF, POS_INF):
            divisor = other.lower
            candidates = []
            for bound in (self.lower, self.upper):
                if bound in (NEG_INF, POS_INF):
                    candidates.append(bound if divisor > 0 else -bound)
                else:
                    candidates.append(_div_trunc(int(bound), divisor))
            return Interval.of(min(candidates), max(candidates))
        return _TOP

    def rem(self, other: "Interval") -> "Interval":
        """Conservative remainder: bounded by the divisor magnitude when known."""
        if self._empty or other._empty:
            return _BOTTOM
        if other.is_constant() and other.lower not in (0, NEG_INF, POS_INF):
            magnitude = abs(other.lower) - 1
            return Interval.of(-magnitude, magnitude)
        return _TOP

    # -- comparison-driven refinement --------------------------------------------------
    def refine_less_than(self, other: "Interval") -> "Interval":
        """The part of ``self`` consistent with ``self < other``."""
        if self._empty or other._empty:
            return Interval.bottom()
        bound = other.upper if other.upper in (NEG_INF, POS_INF) else other.upper - 1
        return self.meet(Interval.at_most(bound))

    def refine_less_equal(self, other: "Interval") -> "Interval":
        if self._empty or other._empty:
            return Interval.bottom()
        return self.meet(Interval.at_most(other.upper))

    def refine_greater_than(self, other: "Interval") -> "Interval":
        if self._empty or other._empty:
            return Interval.bottom()
        bound = other.lower if other.lower in (NEG_INF, POS_INF) else other.lower + 1
        return self.meet(Interval.at_least(bound))

    def refine_greater_equal(self, other: "Interval") -> "Interval":
        if self._empty or other._empty:
            return Interval.bottom()
        return self.meet(Interval.at_least(other.lower))

    def refine_equal(self, other: "Interval") -> "Interval":
        return self.meet(other)


#: the canonical top/bottom instances that every constructor hands out.
_BOTTOM = Interval(empty=True)
_TOP = Interval(NEG_INF, POS_INF)
Interval._interned[(NEG_INF, POS_INF)] = _TOP


# -- unboxed bounds kernels -------------------------------------------------------
#
# The SCC solver's inner loop works on raw ``(lower, upper)`` pairs held in an
# :class:`IntervalTable` instead of ``Interval`` objects.  The kernels below
# are the bounds-level mirrors of the ``Interval`` methods of the same name:
# same emptiness checks, same helper functions (``_add``/``_mul``/
# ``_div_trunc``) on the same operands, so boxing a kernel result with
# :meth:`Interval.of` yields exactly the interval the object method would
# have returned.  The empty interval is the canonical pair
# ``(POS_INF, NEG_INF)`` — precisely how ``Interval`` stores bottom — which
# makes ``lower > upper`` the emptiness test throughout.

Bounds = Tuple[Extended, Extended]

BOTTOM_BOUNDS: Bounds = (POS_INF, NEG_INF)
TOP_BOUNDS: Bounds = (NEG_INF, POS_INF)


def bounds_join(alo: Extended, ahi: Extended,
                blo: Extended, bhi: Extended) -> Bounds:
    if alo > ahi:
        return blo, bhi
    if blo > bhi:
        return alo, ahi
    return (alo if alo <= blo else blo), (ahi if ahi >= bhi else bhi)


def bounds_meet(alo: Extended, ahi: Extended,
                blo: Extended, bhi: Extended) -> Bounds:
    if alo > ahi or blo > bhi:
        return BOTTOM_BOUNDS
    lo = alo if alo >= blo else blo
    hi = ahi if ahi <= bhi else bhi
    if lo > hi:
        return BOTTOM_BOUNDS
    return lo, hi


def bounds_widen(alo: Extended, ahi: Extended,
                 blo: Extended, bhi: Extended) -> Bounds:
    """``[alo, ahi]`` widened by the newer ``[blo, bhi]``."""
    if alo > ahi:
        return blo, bhi
    if blo > bhi:
        return alo, ahi
    return (alo if blo >= alo else NEG_INF), (ahi if bhi <= ahi else POS_INF)


def bounds_narrow(alo: Extended, ahi: Extended,
                  blo: Extended, bhi: Extended) -> Bounds:
    if alo > ahi or blo > bhi:
        return BOTTOM_BOUNDS
    lo = blo if alo == NEG_INF else alo
    hi = bhi if ahi == POS_INF else ahi
    if lo > hi:
        return BOTTOM_BOUNDS
    return lo, hi


def bounds_add(alo: Extended, ahi: Extended,
               blo: Extended, bhi: Extended) -> Bounds:
    if alo > ahi or blo > bhi:
        return BOTTOM_BOUNDS
    # All-finite fast path (non-empty intervals can only be infinite at
    # ``alo``/``blo`` towards -inf and ``ahi``/``bhi`` towards +inf).
    if (alo != NEG_INF and blo != NEG_INF
            and ahi != POS_INF and bhi != POS_INF):
        return alo + blo, ahi + bhi
    return _add(alo, blo, NEG_INF), _add(ahi, bhi, POS_INF)


def bounds_sub(alo: Extended, ahi: Extended,
               blo: Extended, bhi: Extended) -> Bounds:
    if alo > ahi or blo > bhi:
        return BOTTOM_BOUNDS
    return _add(alo, -bhi, NEG_INF), _add(ahi, -blo, POS_INF)


def bounds_mul(alo: Extended, ahi: Extended,
               blo: Extended, bhi: Extended) -> Bounds:
    if alo > ahi or blo > bhi:
        return BOTTOM_BOUNDS
    products = (_mul(alo, blo), _mul(alo, bhi), _mul(ahi, blo), _mul(ahi, bhi))
    return min(products), max(products)


def bounds_div(alo: Extended, ahi: Extended,
               blo: Extended, bhi: Extended) -> Bounds:
    if alo > ahi or blo > bhi:
        return BOTTOM_BOUNDS
    if blo == bhi and blo not in (0, NEG_INF, POS_INF):
        divisor = blo
        candidates = []
        for bound in (alo, ahi):
            if bound in (NEG_INF, POS_INF):
                candidates.append(bound if divisor > 0 else -bound)
            else:
                candidates.append(_div_trunc(int(bound), divisor))
        return min(candidates), max(candidates)
    return TOP_BOUNDS


def bounds_rem(alo: Extended, ahi: Extended,
               blo: Extended, bhi: Extended) -> Bounds:
    if alo > ahi or blo > bhi:
        return BOTTOM_BOUNDS
    if blo == bhi and blo not in (0, NEG_INF, POS_INF):
        magnitude = abs(blo) - 1
        return -magnitude, magnitude
    return TOP_BOUNDS


def bounds_refine_less_than(alo: Extended, ahi: Extended,
                            blo: Extended, bhi: Extended) -> Bounds:
    if alo > ahi or blo > bhi:
        return BOTTOM_BOUNDS
    bound = bhi if bhi in (NEG_INF, POS_INF) else bhi - 1
    return bounds_meet(alo, ahi, NEG_INF, bound)


def bounds_refine_less_equal(alo: Extended, ahi: Extended,
                             blo: Extended, bhi: Extended) -> Bounds:
    if alo > ahi or blo > bhi:
        return BOTTOM_BOUNDS
    return bounds_meet(alo, ahi, NEG_INF, bhi)


def bounds_refine_greater_than(alo: Extended, ahi: Extended,
                               blo: Extended, bhi: Extended) -> Bounds:
    if alo > ahi or blo > bhi:
        return BOTTOM_BOUNDS
    bound = blo if blo in (NEG_INF, POS_INF) else blo + 1
    return bounds_meet(alo, ahi, bound, POS_INF)


def bounds_refine_greater_equal(alo: Extended, ahi: Extended,
                                blo: Extended, bhi: Extended) -> Bounds:
    if alo > ahi or blo > bhi:
        return BOTTOM_BOUNDS
    return bounds_meet(alo, ahi, blo, POS_INF)


class IntervalTable:
    """Struct-of-arrays interval storage: parallel lower/upper bound lists.

    Slots are addressed by integer *handles* (the index returned by
    :meth:`alloc`).  The solver's inner loop reads and writes raw bounds —
    no attribute lookups, no object allocation, no interning probes — and
    boxes results back into canonical :class:`Interval` objects only at the
    solver boundary via :meth:`load`, so the interned-``Interval`` public
    API is untouched.  The layout is deliberately two flat ``list``s of
    numbers: the shape a vectorized or C kernel can adopt wholesale later.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, size: int = 0) -> None:
        self.lo: list = [POS_INF] * size
        self.hi: list = [NEG_INF] * size

    def alloc(self, interval: Optional[Interval] = None) -> int:
        """Append a slot (bottom unless ``interval`` given); return its handle."""
        handle = len(self.lo)
        if interval is None:
            self.lo.append(POS_INF)
            self.hi.append(NEG_INF)
        else:
            self.lo.append(interval.lower)
            self.hi.append(interval.upper)
        return handle

    def store(self, handle: int, interval: Interval) -> None:
        """Unbox ``interval`` into slot ``handle``."""
        self.lo[handle] = interval.lower
        self.hi[handle] = interval.upper

    def set_bounds(self, handle: int, lower: Extended, upper: Extended) -> None:
        self.lo[handle] = lower
        self.hi[handle] = upper

    def bounds(self, handle: int) -> Bounds:
        return self.lo[handle], self.hi[handle]

    def load(self, handle: int) -> Interval:
        """Box slot ``handle`` back into a canonical :class:`Interval`."""
        lower = self.lo[handle]
        upper = self.hi[handle]
        if lower > upper:
            return _BOTTOM
        return Interval.of(lower, upper)

    def __len__(self) -> int:
        return len(self.lo)
