"""Opcodes and scalar kernel tables shared by the interval-kernel backends.

The range analysis precompiles every member of a cyclic dependence
component to one opcode tuple (see
:meth:`repro.rangeanalysis.analysis.RangeAnalysis._compile_component`);
the constants below name the tuple tags.  They live here — below both the
solver and the backends — so that the batched sweep executor
(:mod:`repro.rangeanalysis.kernels.sweep`) and the backend registry can
share them with :class:`~repro.rangeanalysis.analysis.RangeAnalysis`
without import cycles.

``SCALAR_BINARY_KERNELS`` and ``REFINE_KERNELS`` are the canonical
opcode → scalar-kernel tables.  They are built once at import time (the
per-component dict reconstruction an earlier revision paid on every cyclic
component is gone) and every backend's ``*_many`` kernels are defined as
the array mirrors of exactly these functions.
"""

from __future__ import annotations

from repro.rangeanalysis.interval import (
    bounds_add,
    bounds_div,
    bounds_meet,
    bounds_mul,
    bounds_refine_greater_equal,
    bounds_refine_greater_than,
    bounds_refine_less_equal,
    bounds_refine_less_than,
    bounds_rem,
    bounds_sub,
)

#: opcode tags of the precompiled transfer-function tuples.
OP_CONST = 0    # (op, lower, upper)                fixed interval
OP_ADD = 1      # (op, lhs, rhs)
OP_SUB = 2      # (op, lhs, rhs)
OP_MUL = 3      # (op, lhs, rhs)
OP_DIV = 4      # (op, lhs, rhs)
OP_REM = 5      # (op, lhs, rhs)
OP_PHI = 6      # (op, (incoming, ...))
OP_COPY = 7     # (op, source)
OP_SIGMA = 8    # (op, source, other, refine_kernel)

#: binary opcode → scalar bounds kernel (built once, shared by every solve).
SCALAR_BINARY_KERNELS = {
    OP_ADD: bounds_add,
    OP_SUB: bounds_sub,
    OP_MUL: bounds_mul,
    OP_DIV: bounds_div,
    OP_REM: bounds_rem,
}

#: σ-refinement kernels by (already NEGATED/SWAPPED-resolved) predicate.
REFINE_KERNELS = {
    "slt": bounds_refine_less_than,
    "sle": bounds_refine_less_equal,
    "sgt": bounds_refine_greater_than,
    "sge": bounds_refine_greater_equal,
    "eq": bounds_meet,
}
