"""The optional ``numpy`` interval-kernel backend.

Implements the same ``*_many`` signatures as the ``batch`` backend with
vectorized ``minimum``/``maximum``/``where`` arithmetic over int64 ``lo``/
``hi`` arrays.  The extended integers of the scalar domain are mapped onto
int64 *sentinels*:

* ``-inf`` → ``NEG_SENT`` (``-2**62``), ``+inf`` → ``POS_SENT`` (``2**62``);
* finite bounds must fit ``|v| <= SAFE_MAGNITUDE`` (``2**61 - 1``) so that
  no sum of two encoded operands can collide with a sentinel or overflow
  int64 (products are checked against the tighter ``SAFE_PRODUCT``);
* the canonical empty pair ``(POS_INF, NEG_INF)`` encodes to
  ``(POS_SENT, NEG_SENT)``, keeping ``lo > hi`` as the emptiness test.

Any group whose operands fall outside the encodable range (astronomical
constants, degenerate all-infinite intervals) makes the kernel fall back to
the bit-identical ``batch`` twin *for that one call* — correctness never
depends on the encoding.  ``div``/``rem`` delegate to ``batch`` outright:
they are rare, branchy, and not worth a vector path.

This module imports numpy at module scope; the backend registry
(:func:`repro.rangeanalysis.kernels.get_backend`) catches the
``ImportError`` and degrades the ``numpy`` knob value to ``batch`` when the
library is absent.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.rangeanalysis.interval import NEG_INF, POS_INF
from repro.rangeanalysis.kernels import batch as _batch
from repro.rangeanalysis.kernels.opcodes import (
    OP_ADD,
    OP_DIV,
    OP_MUL,
    OP_REM,
    OP_SUB,
)

NEG_SENT = -(2 ** 62)
POS_SENT = 2 ** 62
#: largest finite magnitude encodable such that any *sum* of two encoded
#: bounds stays strictly inside the sentinels.
SAFE_MAGNITUDE = 2 ** 61 - 1
#: largest finite magnitude whose pairwise *products* stay strictly inside
#: the sentinels.
SAFE_PRODUCT = 2 ** 30


class _Unsafe(Exception):
    """Raised during encoding when a bound cannot be represented; the
    caller falls back to the ``batch`` twin for the whole group call."""


def _encode_pair(lo: List, hi: List, handles: Sequence[int],
                 limit: int) -> Tuple["np.ndarray", "np.ndarray"]:
    """Gather ``(lo, hi)`` for ``handles`` into sentinel-encoded int64 arrays.

    Raises :class:`_Unsafe` for finite bounds beyond ``limit`` and for the
    degenerate all-infinite intervals ``[-inf, -inf]`` / ``[+inf, +inf]``
    (which would be indistinguishable from sentinel collisions downstream).
    """
    n = len(handles)
    elo = np.empty(n, dtype=np.int64)
    ehi = np.empty(n, dtype=np.int64)
    neg = NEG_INF
    pos = POS_INF
    neg_limit = -limit
    for i in range(n):
        h = handles[i]
        a = lo[h]
        b = hi[h]
        if a == neg:
            ea = NEG_SENT
        elif a == pos:
            ea = POS_SENT
        elif neg_limit <= a <= limit:
            ea = a
        else:
            raise _Unsafe
        if b == neg:
            eb = NEG_SENT
        elif b == pos:
            eb = POS_SENT
        elif neg_limit <= b <= limit:
            eb = b
        else:
            raise _Unsafe
        if ea == eb and (ea == NEG_SENT or ea == POS_SENT):
            raise _Unsafe
        elo[i] = ea
        ehi[i] = eb
    return elo, ehi


def _decode(rlo: "np.ndarray", rhi: "np.ndarray",
            out_lo: List, out_hi: List) -> None:
    """Scatter sentinel-encoded results back into the output buffers."""
    values_lo = rlo.tolist()
    values_hi = rhi.tolist()
    for i in range(len(values_lo)):
        v = values_lo[i]
        out_lo[i] = NEG_INF if v == NEG_SENT else (POS_INF if v == POS_SENT else v)
        w = values_hi[i]
        out_hi[i] = NEG_INF if w == NEG_SENT else (POS_INF if w == POS_SENT else w)


def _seal(rlo: "np.ndarray", rhi: "np.ndarray",
          empty: "np.ndarray") -> Tuple["np.ndarray", "np.ndarray"]:
    """Force ``empty`` lanes to the canonical bottom encoding."""
    return (np.where(empty, POS_SENT, rlo), np.where(empty, NEG_SENT, rhi))


def _signed_inf_mul(x: "np.ndarray", y: "np.ndarray") -> "np.ndarray":
    """Vector mirror of ``_mul``: ``0 * inf = 0``, signed-infinity products."""
    zero = (x == 0) | (y == 0)
    infinite = (np.abs(x) == POS_SENT) | (np.abs(y) == POS_SENT)
    finite_product = np.where(infinite, 0, x) * np.where(infinite, 0, y)
    signed = np.where((x > 0) == (y > 0), POS_SENT, NEG_SENT)
    return np.where(zero, 0, np.where(infinite, signed, finite_product))


class NumpyKernelBackend:
    """Vectorized ``*_many`` kernels with per-call fallback to ``batch``.

    ``fallbacks`` counts the group calls that were served by the ``batch``
    twin because an operand fell outside the encodable int64 range.
    """

    name = "numpy"

    def __init__(self) -> None:
        self.fallbacks = 0

    # -- backend protocol (mirrors BatchKernelBackend) -------------------------
    def binary_many(self, op: int) -> Callable:
        if op == OP_ADD:
            return self._add_many
        if op == OP_SUB:
            return self._sub_many
        if op == OP_MUL:
            return self._mul_many
        # div/rem: rare, branchy, constant-divisor-special-cased — the batch
        # twin is both simpler and faster than a masked vector path.
        return _batch.BINARY_MANY_KERNELS[op]

    def copy_many(self) -> Callable:
        # A copy is pure list indexing; encoding would only add work.
        return _batch.bounds_copy_many

    def join_many(self) -> Callable:
        return self._join_many

    def refine_many(self, kernel: Callable) -> Callable:
        return self._refine_many_kernels[kernel]

    # -- vectorized kernels -----------------------------------------------------
    def _add_many(self, lo, hi, lhs, rhs, out_lo, out_hi):
        try:
            alo, ahi = _encode_pair(lo, hi, lhs, SAFE_MAGNITUDE)
            blo, bhi = _encode_pair(lo, hi, rhs, SAFE_MAGNITUDE)
        except _Unsafe:
            self.fallbacks += 1
            _batch.bounds_add_many(lo, hi, lhs, rhs, out_lo, out_hi)
            return
        empty = (alo > ahi) | (blo > bhi)
        lo_inf = (alo == NEG_SENT) | (blo == NEG_SENT)
        hi_inf = (ahi == POS_SENT) | (bhi == POS_SENT)
        lo_mask = lo_inf | empty
        rlo = np.where(lo_mask, 0, alo) + np.where(lo_mask, 0, blo)
        rlo = np.where(lo_inf, NEG_SENT, rlo)
        hi_mask = hi_inf | empty
        rhi = np.where(hi_mask, 0, ahi) + np.where(hi_mask, 0, bhi)
        rhi = np.where(hi_inf, POS_SENT, rhi)
        _decode(*_seal(rlo, rhi, empty), out_lo, out_hi)

    def _sub_many(self, lo, hi, lhs, rhs, out_lo, out_hi):
        try:
            alo, ahi = _encode_pair(lo, hi, lhs, SAFE_MAGNITUDE)
            blo, bhi = _encode_pair(lo, hi, rhs, SAFE_MAGNITUDE)
        except _Unsafe:
            self.fallbacks += 1
            _batch.bounds_sub_many(lo, hi, lhs, rhs, out_lo, out_hi)
            return
        empty = (alo > ahi) | (blo > bhi)
        lo_inf = (alo == NEG_SENT) | (bhi == POS_SENT)
        hi_inf = (ahi == POS_SENT) | (blo == NEG_SENT)
        lo_mask = lo_inf | empty
        rlo = np.where(lo_mask, 0, alo) - np.where(lo_mask, 0, bhi)
        rlo = np.where(lo_inf, NEG_SENT, rlo)
        hi_mask = hi_inf | empty
        rhi = np.where(hi_mask, 0, ahi) - np.where(hi_mask, 0, blo)
        rhi = np.where(hi_inf, POS_SENT, rhi)
        _decode(*_seal(rlo, rhi, empty), out_lo, out_hi)

    def _mul_many(self, lo, hi, lhs, rhs, out_lo, out_hi):
        try:
            alo, ahi = _encode_pair(lo, hi, lhs, SAFE_PRODUCT)
            blo, bhi = _encode_pair(lo, hi, rhs, SAFE_PRODUCT)
        except _Unsafe:
            self.fallbacks += 1
            _batch.bounds_mul_many(lo, hi, lhs, rhs, out_lo, out_hi)
            return
        empty = (alo > ahi) | (blo > bhi)
        p1 = _signed_inf_mul(alo, blo)
        p2 = _signed_inf_mul(alo, bhi)
        p3 = _signed_inf_mul(ahi, blo)
        p4 = _signed_inf_mul(ahi, bhi)
        rlo = np.minimum(np.minimum(p1, p2), np.minimum(p3, p4))
        rhi = np.maximum(np.maximum(p1, p2), np.maximum(p3, p4))
        _decode(*_seal(rlo, rhi, empty), out_lo, out_hi)

    def _join_many(self, lo, hi, columns, out_lo, out_hi):
        try:
            rlo, rhi = _encode_pair(lo, hi, columns[0], SAFE_MAGNITUDE)
            for column in columns[1:]:
                clo, chi = _encode_pair(lo, hi, column, SAFE_MAGNITUDE)
                # With the canonical bottom encoded (POS_SENT, NEG_SENT),
                # elementwise min/max is exactly bounds_join: an empty operand
                # never tightens either bound.
                rlo = np.minimum(rlo, clo)
                rhi = np.maximum(rhi, chi)
        except _Unsafe:
            self.fallbacks += 1
            _batch.bounds_join_many(lo, hi, columns, out_lo, out_hi)
            return
        _decode(rlo, rhi, out_lo, out_hi)

    def _make_refine(self, scalar_twin: Callable, batch_twin: Callable,
                     refine: Callable) -> Callable:
        """Wrap a vector refinement body with encode/fallback/seal plumbing."""
        def many(lo, hi, src, other, out_lo, out_hi):
            try:
                alo, ahi = _encode_pair(lo, hi, src, SAFE_MAGNITUDE)
                blo, bhi = _encode_pair(lo, hi, other, SAFE_MAGNITUDE)
            except _Unsafe:
                self.fallbacks += 1
                batch_twin(lo, hi, src, other, out_lo, out_hi)
                return
            empty = (alo > ahi) | (blo > bhi)
            rlo, rhi = refine(alo, ahi, blo, bhi)
            _decode(*_seal(rlo, rhi, empty | (rlo > rhi)), out_lo, out_hi)
        many.__name__ = scalar_twin.__name__ + "_numpy"
        return many

    # -- vector refinement bodies (meet against the derived comparison bound) --
    @staticmethod
    def _refine_less_than(alo, ahi, blo, bhi):
        bound = np.where(bhi == POS_SENT, bhi, bhi - 1)
        return alo, np.minimum(ahi, bound)

    @staticmethod
    def _refine_less_equal(alo, ahi, blo, bhi):
        return alo, np.minimum(ahi, bhi)

    @staticmethod
    def _refine_greater_than(alo, ahi, blo, bhi):
        bound = np.where(blo == NEG_SENT, blo, blo + 1)
        return np.maximum(alo, bound), ahi

    @staticmethod
    def _refine_greater_equal(alo, ahi, blo, bhi):
        return np.maximum(alo, blo), ahi

    @staticmethod
    def _meet(alo, ahi, blo, bhi):
        return np.maximum(alo, blo), np.minimum(ahi, bhi)


def _install_refine_kernels(backend: NumpyKernelBackend) -> None:
    from repro.rangeanalysis.interval import (
        bounds_meet,
        bounds_refine_greater_equal,
        bounds_refine_greater_than,
        bounds_refine_less_equal,
        bounds_refine_less_than,
    )
    backend._refine_many_kernels = {
        bounds_refine_less_than: backend._make_refine(
            bounds_refine_less_than,
            _batch.bounds_refine_less_than_many,
            backend._refine_less_than),
        bounds_refine_less_equal: backend._make_refine(
            bounds_refine_less_equal,
            _batch.bounds_refine_less_equal_many,
            backend._refine_less_equal),
        bounds_refine_greater_than: backend._make_refine(
            bounds_refine_greater_than,
            _batch.bounds_refine_greater_than_many,
            backend._refine_greater_than),
        bounds_refine_greater_equal: backend._make_refine(
            bounds_refine_greater_equal,
            _batch.bounds_refine_greater_equal_many,
            backend._refine_greater_equal),
        bounds_meet: backend._make_refine(
            bounds_meet, _batch.bounds_meet_many, backend._meet),
    }


def make_backend() -> NumpyKernelBackend:
    """A fresh ``numpy`` backend instance with its refine-kernel table bound."""
    backend = NumpyKernelBackend()
    _install_refine_kernels(backend)
    return backend
