"""The ``batch`` interval-kernel backend: array mirrors of the bounds kernels.

Every ``bounds_*_many`` function below is the whole-group form of the scalar
``bounds_*`` kernel of the same name in
:mod:`repro.rangeanalysis.interval`: it reads operand bounds for a *group*
of compiled opcodes through parallel handle arrays (``lhs``/``rhs``/...),
applies exactly the scalar kernel's logic element by element, and writes the
results into preallocated ``out_lo``/``out_hi`` buffers.  The batched sweep
executor (:mod:`repro.rangeanalysis.kernels.sweep`) calls one ``*_many``
kernel per (level, opcode) group instead of dispatching per member, which is
where the backend's speedup comes from: no per-member closure call, no heap
traffic, no schedule bookkeeping — just tight local loops over flat lists.

The contract is the same bit-identity contract the scalar kernels keep with
the ``Interval`` methods: for every element,
``(out_lo[i], out_hi[i]) == bounds_op(lo[a], hi[a], lo[b], hi[b])``.
The empty interval is the canonical ``(POS_INF, NEG_INF)`` pair and
``lower > upper`` is the emptiness test, exactly as in the scalar kernels.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.rangeanalysis.interval import (
    NEG_INF,
    POS_INF,
    _add,
    bounds_div,
    bounds_meet,
    bounds_mul,
    bounds_refine_greater_equal,
    bounds_refine_greater_than,
    bounds_refine_less_equal,
    bounds_refine_less_than,
    bounds_rem,
)

from repro.rangeanalysis.kernels.opcodes import (
    OP_ADD,
    OP_DIV,
    OP_MUL,
    OP_REM,
    OP_SUB,
)


def bounds_add_many(lo: List, hi: List, lhs: Sequence[int], rhs: Sequence[int],
                    out_lo: List, out_hi: List) -> None:
    """Array mirror of :func:`~repro.rangeanalysis.interval.bounds_add`."""
    neg = NEG_INF
    pos = POS_INF
    add = _add
    for i in range(len(lhs)):
        a = lhs[i]
        b = rhs[i]
        alo = lo[a]
        ahi = hi[a]
        blo = lo[b]
        bhi = hi[b]
        if alo > ahi or blo > bhi:
            out_lo[i] = pos
            out_hi[i] = neg
        elif alo != neg and blo != neg and ahi != pos and bhi != pos:
            out_lo[i] = alo + blo
            out_hi[i] = ahi + bhi
        else:
            out_lo[i] = add(alo, blo, neg)
            out_hi[i] = add(ahi, bhi, pos)


def bounds_sub_many(lo: List, hi: List, lhs: Sequence[int], rhs: Sequence[int],
                    out_lo: List, out_hi: List) -> None:
    """Array mirror of :func:`~repro.rangeanalysis.interval.bounds_sub`."""
    neg = NEG_INF
    pos = POS_INF
    add = _add
    for i in range(len(lhs)):
        a = lhs[i]
        b = rhs[i]
        alo = lo[a]
        ahi = hi[a]
        blo = lo[b]
        bhi = hi[b]
        if alo > ahi or blo > bhi:
            out_lo[i] = pos
            out_hi[i] = neg
        else:
            out_lo[i] = add(alo, -bhi, neg)
            out_hi[i] = add(ahi, -blo, pos)


def _binary_many(kernel: Callable) -> Callable:
    """Lift a scalar binary bounds kernel to the ``*_many`` signature."""
    def many(lo: List, hi: List, lhs: Sequence[int], rhs: Sequence[int],
             out_lo: List, out_hi: List, _kernel: Callable = kernel) -> None:
        for i in range(len(lhs)):
            a = lhs[i]
            b = rhs[i]
            out_lo[i], out_hi[i] = _kernel(lo[a], hi[a], lo[b], hi[b])
    return many


bounds_mul_many = _binary_many(bounds_mul)
bounds_mul_many.__name__ = "bounds_mul_many"
bounds_div_many = _binary_many(bounds_div)
bounds_div_many.__name__ = "bounds_div_many"
bounds_rem_many = _binary_many(bounds_rem)
bounds_rem_many.__name__ = "bounds_rem_many"


def bounds_copy_many(lo: List, hi: List, src: Sequence[int],
                     out_lo: List, out_hi: List) -> None:
    """Whole-group copy: ``out[i] = bounds(src[i])``."""
    for i in range(len(src)):
        s = src[i]
        out_lo[i] = lo[s]
        out_hi[i] = hi[s]


def bounds_join_many(lo: List, hi: List, columns: Tuple[Sequence[int], ...],
                     out_lo: List, out_hi: List) -> None:
    """Array mirror of a φ's :func:`bounds_join` fold over its incoming values.

    ``columns[k][i]`` is the handle of the ``k``-th incoming operand of the
    ``i``-th φ in the group; the fold starts from bottom exactly like the
    scalar evaluation loop, so a group of same-arity φs costs ``arity``
    passes over the output buffers instead of a per-φ dispatch.
    """
    first = columns[0]
    for i in range(len(first)):
        s = first[i]
        out_lo[i] = lo[s]
        out_hi[i] = hi[s]
    for column in columns[1:]:
        for i in range(len(column)):
            s = column[i]
            blo = lo[s]
            bhi = hi[s]
            alo = out_lo[i]
            ahi = out_hi[i]
            if alo > ahi:
                out_lo[i] = blo
                out_hi[i] = bhi
            elif blo > bhi:
                continue
            else:
                if blo < alo:
                    out_lo[i] = blo
                if bhi > ahi:
                    out_hi[i] = bhi


def _refine_many(kernel: Callable) -> Callable:
    """Lift a scalar σ-refinement kernel to the ``*_many`` signature."""
    def many(lo: List, hi: List, src: Sequence[int], other: Sequence[int],
             out_lo: List, out_hi: List, _kernel: Callable = kernel) -> None:
        for i in range(len(src)):
            s = src[i]
            o = other[i]
            out_lo[i], out_hi[i] = _kernel(lo[s], hi[s], lo[o], hi[o])
    return many


bounds_refine_less_than_many = _refine_many(bounds_refine_less_than)
bounds_refine_less_than_many.__name__ = "bounds_refine_less_than_many"
bounds_refine_less_equal_many = _refine_many(bounds_refine_less_equal)
bounds_refine_less_equal_many.__name__ = "bounds_refine_less_equal_many"
bounds_refine_greater_than_many = _refine_many(bounds_refine_greater_than)
bounds_refine_greater_than_many.__name__ = "bounds_refine_greater_than_many"
bounds_refine_greater_equal_many = _refine_many(bounds_refine_greater_equal)
bounds_refine_greater_equal_many.__name__ = "bounds_refine_greater_equal_many"
bounds_meet_many = _refine_many(bounds_meet)
bounds_meet_many.__name__ = "bounds_meet_many"


#: binary opcode → batched kernel (mirror of ``SCALAR_BINARY_KERNELS``).
BINARY_MANY_KERNELS = {
    OP_ADD: bounds_add_many,
    OP_SUB: bounds_sub_many,
    OP_MUL: bounds_mul_many,
    OP_DIV: bounds_div_many,
    OP_REM: bounds_rem_many,
}

#: scalar refine kernel → its batched twin (the compiled σ tuples carry the
#: scalar function object, so the sweep executor resolves through this map).
REFINE_MANY_KERNELS = {
    bounds_refine_less_than: bounds_refine_less_than_many,
    bounds_refine_less_equal: bounds_refine_less_equal_many,
    bounds_refine_greater_than: bounds_refine_greater_than_many,
    bounds_refine_greater_equal: bounds_refine_greater_equal_many,
    bounds_meet: bounds_meet_many,
}


class BatchKernelBackend:
    """Pure-Python whole-group kernels over the ``IntervalTable`` lists."""

    name = "batch"

    def binary_many(self, op: int) -> Callable:
        return BINARY_MANY_KERNELS[op]

    def copy_many(self) -> Callable:
        return bounds_copy_many

    def join_many(self) -> Callable:
        return bounds_join_many

    def refine_many(self, kernel: Callable) -> Callable:
        return REFINE_MANY_KERNELS[kernel]


#: the process-wide backend instance (the backend is stateless).
BATCH_BACKEND = BatchKernelBackend()
