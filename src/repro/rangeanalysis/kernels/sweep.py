"""Level-synchronous batched sweep executor for cyclic components.

This is the engine behind the ``batch``/``numpy`` interval-kernel backends:
it solves one cyclic dependence component on an
:class:`~repro.rangeanalysis.interval.IntervalTable` with the same three
phases, the same sweep budgets, and — by construction — the same per-sweep
state trajectory as the ranked sparse solver
(:meth:`RangeAnalysis._solve_cyclic_table` with the ``scalar`` backend), so
the fixpoints are bit-identical.  What changes is *how a sweep is executed*:

**Levels.**  Under a ranked policy the sparse solver pops members in rank
order within a sweep; a member therefore reads *current-sweep* values of its
lower-ranked (rank-forward) operands and *previous-sweep* values of its
higher-ranked (back-edge) operands.  At compile time the executor stratifies
the members into *levels* along rank-forward edges::

    level(v) = 1 + max(level(u) | u operand of v, rank(u) < rank(v))

Processing levels in ascending order, evaluating every member of a level
against the table as left by the levels before it, and committing a level's
writes only after the whole level has been evaluated reproduces exactly the
operand values the ranked Gauss–Seidel sweep reads — members of one level
never feed each other forward, and the level-wide commit keeps same-level
back-edges reading previous-sweep state just as the heap order does.  The
one case the level order cannot express directly is a back-edge whose
*source* sits at a lower level than its user (``rank(u) > rank(v)`` but
``level(u) < level(v)``): the heap serves ``v`` before ``u``, so ``v`` must
read ``u``'s previous-sweep value, yet the level schedule commits ``u``
first.  Those operands are routed through *shadow slots* — extra table
handles refreshed to the pre-sweep value at the start of every batched
sweep — so every read matches the ranked heap's read, unconditionally.

**Groups.**  Within a level, compiled opcodes are grouped by opcode shape at
compile time — ``(level, opcode)`` for binary ops, ``(level, arity)`` for
φs, ``(level, refine-kernel)`` for σs — with their operand handles laid out
in parallel arrays.  A sweep then evaluates each group with *one* backend
kernel call (``bounds_add_many`` and friends) into preallocated output
buffers instead of dispatching per member.

**Adaptive batching.**  A full batched sweep evaluates every member, which
is wasted work when only a handful are pending; a sparse sweep pays per-pop
heap and dispatch overhead, which is wasted when nearly everything changed.
The executor decides per sweep — the MPRGP-style "how much to release per
round" choice: when the pending frontier reaches ``SATURATION`` of the
component it runs a full batched sweep, otherwise a per-member sparse sweep
that scans rank positions with precompiled kernel-bound opcodes.  Both produce identical post-sweep states: a full
sweep's extra evaluations are members whose operands did not change, and
re-evaluating those is a provable no-op for assignment (same value), for
widening (``widen(c, e) == c`` when ``e`` was already absorbed) and for
narrowing (every member is narrow-evaluated in the phase's seed sweep, after
which an unchanged-operand re-evaluation is stable).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.rangeanalysis.interval import NEG_INF, POS_INF
from repro.rangeanalysis.kernels.opcodes import (
    OP_CONST,
    OP_COPY,
    OP_PHI,
    OP_SIGMA,
    SCALAR_BINARY_KERNELS,
)

#: sweep transfer modes (phase 1a / phase 1b / phase 2).
_ASSIGN = 0
_WIDEN = 1
_NARROW = 2


class _Group:
    """One (level, opcode-shape) batch: parallel member/operand arrays plus
    preallocated output buffers and the resolved backend kernel call."""

    __slots__ = ("indices", "call", "out_lo", "out_hi")

    def __init__(self, indices: List[int], call: Optional[Callable],
                 out_lo: List, out_hi: List) -> None:
        self.indices = indices
        self.call = call
        self.out_lo = out_lo
        self.out_hi = out_hi


def _build_levels(compiled: Sequence[tuple], users: Sequence[Sequence[int]],
                  ranks: Sequence, order: Sequence[int]) -> List[int]:
    """Stratify members along rank-forward dependence edges.

    Members are processed in rank order (``order`` is the member indices
    sorted by rank), so every rank-forward predecessor's level is final
    before its dependents read it; back-edges (towards equal or lower ranks)
    do not constrain levels — they are previous-sweep reads.
    """
    count = len(compiled)
    levels = [0] * count
    for index in order:
        base = levels[index]
        rank = ranks[index]
        for user in users[index]:
            if ranks[user] > rank and levels[user] <= base:
                levels[user] = base + 1
    return levels


def _shadow_slots(compiled: Sequence[tuple], users: Sequence[Sequence[int]],
                  ranks: Sequence, levels: List[int],
                  table) -> List[Tuple[int, int]]:
    """Allocate shadow slots for back-edge operands committed too early.

    Returns ``(source, shadow)`` handle pairs, source-ordered, for every
    member ``u`` that has a back-edge user at a *higher* level — the one
    read pattern the level-synchronous commit order would otherwise serve
    with a current-sweep value where the ranked heap serves the
    previous-sweep one.
    """
    pairs: List[Tuple[int, int]] = []
    seen = set()
    for source in range(len(compiled)):
        if source in seen:
            continue
        rank = ranks[source]
        level = levels[source]
        for user in users[source]:
            if ranks[user] < rank and levels[user] > level:
                seen.add(source)
                pairs.append((source, table.alloc()))
                break
    return pairs


#: solo-step opcode shapes (single-member levels evaluate inline — see
#: :func:`_compile_steps`).
_SOLO_CONST = 0
_SOLO_KERNEL = 1  # binary ops and σs alike: (marker, a, b, kernel)
_SOLO_COPY = 2
_SOLO_PHI = 3


def _solo_code(code: tuple, index: int, shadow_of) -> tuple:
    """The shadow-remapped, kernel-bound form of one member's opcode."""
    op = code[0]
    if op == OP_CONST:
        return (_SOLO_CONST, code[1], code[2])
    if op == OP_PHI:
        return (_SOLO_PHI,
                tuple(shadow_of(index, operand) for operand in code[1]))
    if op == OP_COPY:
        return (_SOLO_COPY, shadow_of(index, code[1]))
    if op == OP_SIGMA:
        return (_SOLO_KERNEL, shadow_of(index, code[1]),
                shadow_of(index, code[2]), code[3])
    return (_SOLO_KERNEL, shadow_of(index, code[1]),
            shadow_of(index, code[2]), SCALAR_BINARY_KERNELS[op])


def _compile_steps(compiled: Sequence[tuple], levels: List[int],
                   order: Sequence[int], backend,
                   shadow_of, inline: Optional[List[tuple]]) -> List[tuple]:
    """Compile the full-sweep program: one step per level, levels ascending.

    A level with a single member becomes a *solo step* ``(None, index,
    solo_code)``: the sweep evaluates it inline with the scalar kernel and
    commits immediately — batching a one-member group would only pay closure
    and buffer overhead, and with no level-mates an immediate commit cannot
    be observed early (same-level reads don't exist, and lower-level
    back-edge readers of this member go through its shadow slot).  This is
    what keeps deep dependence *chains* — worst case for grouping, one
    member per level — faster than the ranked heap: the sweep degenerates to
    a straight rank-ordered loop with no heap traffic at all.

    A level with several members becomes ``(groups, 0, None)`` where
    ``groups`` batches the level's opcodes by shape — ``(opcode)`` for
    binary ops, ``(arity)`` for φs, ``(refine-kernel)`` for σs — with
    operand handles in parallel arrays, evaluated by one backend ``*_many``
    call per group and committed only after the whole level.  Group and
    member order follow member rank — all deterministic, so sweep
    trajectories are reproducible.  ``shadow_of(user, operand)`` redirects
    hazardous back-edge operand handles to their shadow slots (see
    :func:`_shadow_slots`).
    """
    by_level: List[List[int]] = [[] for _ in range(max(levels) + 1 if levels else 1)]
    for index in order:
        by_level[levels[index]].append(index)

    steps: List[tuple] = []
    for members in by_level:
        if not members:
            continue
        if len(members) == 1:
            index = members[0]
            # With no shadow slots in play the remapped solo code is the
            # member's inline code verbatim — share the tuple.
            code = (inline[index] if inline is not None
                    else _solo_code(compiled[index], index, shadow_of))
            steps.append((None, index, code))
            continue
        buckets = {}
        sequence: List[tuple] = []
        for index in members:
            code = compiled[index]
            op = code[0]
            if op == OP_CONST:
                key = ("const",)
            elif op == OP_PHI:
                key = ("phi", len(code[1]))
            elif op == OP_COPY:
                key = ("copy",)
            elif op == OP_SIGMA:
                key = ("sigma", code[3])
            else:
                key = ("bin", op)
            bucket = buckets.get(key)
            if bucket is None:
                bucket = buckets[key] = []
                sequence.append(key)
            bucket.append(index)

        groups: List[_Group] = []
        for key in sequence:
            indices = buckets[key]
            n = len(indices)
            out_lo: List = [0] * n
            out_hi: List = [0] * n
            kind = key[0]
            if kind == "const":
                # Constant transfers never change: their "evaluation" is the
                # prebuilt output buffer itself.
                for i, index in enumerate(indices):
                    out_lo[i] = compiled[index][1]
                    out_hi[i] = compiled[index][2]
                call = None
            elif kind == "bin":
                kernel = backend.binary_many(key[1])
                lhs = [shadow_of(index, compiled[index][1])
                       for index in indices]
                rhs = [shadow_of(index, compiled[index][2])
                       for index in indices]

                def call(lo, hi, _k=kernel, _a=lhs, _b=rhs,
                         _ol=out_lo, _oh=out_hi):
                    _k(lo, hi, _a, _b, _ol, _oh)
            elif kind == "phi":
                kernel = backend.join_many()
                arity = key[1]
                columns = tuple(
                    [shadow_of(index, compiled[index][1][position])
                     for index in indices]
                    for position in range(arity))

                def call(lo, hi, _k=kernel, _c=columns, _ol=out_lo,
                         _oh=out_hi):
                    _k(lo, hi, _c, _ol, _oh)
            elif kind == "copy":
                kernel = backend.copy_many()
                src = [shadow_of(index, compiled[index][1])
                       for index in indices]

                def call(lo, hi, _k=kernel, _s=src, _ol=out_lo, _oh=out_hi):
                    _k(lo, hi, _s, _ol, _oh)
            else:  # sigma
                kernel = backend.refine_many(key[1])
                src = [shadow_of(index, compiled[index][1])
                       for index in indices]
                other = [shadow_of(index, compiled[index][2])
                         for index in indices]

                def call(lo, hi, _k=kernel, _s=src, _o=other,
                         _ol=out_lo, _oh=out_hi):
                    _k(lo, hi, _s, _o, _ol, _oh)
            groups.append(_Group(indices, call, out_lo, out_hi))
        steps.append((groups, 0, None))
    return steps


class BatchedComponentSolver:
    """Solve one precompiled cyclic component with batched sweeps.

    Inputs are exactly what the scalar table solver works from: the
    ``compiled`` opcode tuples, the intra-component ``users`` lists, the
    policy ``ranks``, and the :class:`IntervalTable` holding member slots
    ``0..count-1`` plus preloaded external operand slots.  After
    :meth:`solve` the member slots hold the same fixpoint the scalar solver
    would have written, and the counters mirror its accounting
    (``evaluations``/``widenings``/``narrowings``/``pops``/``coalesced``)
    plus the batch-specific ``batched_sweeps``/``batched_evaluations``.
    """

    #: pending-frontier fraction at which a sweep switches from sparse pops
    #: to one full batched level sweep.
    SATURATION = 0.5

    __slots__ = ("_inline", "_users", "_ranks", "_lo", "_hi", "_count",
                 "_before_widening", "_max_narrowing", "_steps",
                 "_shadow_pairs", "_order", "_positions", "_active",
                 "evaluations", "widenings", "narrowings",
                 "pops", "coalesced", "batched_sweeps",
                 "batched_evaluations", "widened")

    def __init__(self, compiled: Sequence[tuple],
                 users: Sequence[Sequence[int]], ranks: Sequence,
                 table, backend, before_widening: int,
                 max_narrowing: int) -> None:
        self._users = users
        self._ranks = ranks
        self._lo = table.lo
        self._hi = table.hi
        self._count = len(compiled)
        self._before_widening = before_widening
        self._max_narrowing = max_narrowing
        order = sorted(range(len(compiled)), key=lambda index: ranks[index])
        levels = _build_levels(compiled, users, ranks, order)
        self._shadow_pairs = _shadow_slots(compiled, users, ranks, levels,
                                           table)
        shadows = dict(self._shadow_pairs)
        count = self._count

        if shadows:
            def shadow_of(user: int, operand: int) -> int:
                # Redirect a member operand to its shadow slot when the
                # ranked heap would serve the previous-sweep value
                # (back-edge) but the level order would commit the operand
                # first.
                if (operand < count and ranks[operand] > ranks[user]
                        and levels[operand] < levels[user]):
                    return shadows[operand]
                return operand
        else:
            def shadow_of(user: int, operand: int) -> int:
                return operand

        #: kernel-bound, *unshadowed* solo form of every member's opcode:
        #: sparse sweeps evaluate in rank order with immediate commits, so
        #: every read wants the live slot, never a shadow.
        identity = lambda _user, operand: operand
        self._inline = [_solo_code(compiled[index], index, identity)
                        for index in range(count)]
        self._steps = _compile_steps(compiled, levels, order, backend,
                                     shadow_of,
                                     None if shadows else self._inline)
        #: rank position -> member, member -> rank position: a sweep visits
        #: members in ascending rank, so sparse sweeps scan positions
        #: instead of paying heap traffic per pop.
        self._order = order
        positions = [0] * count
        for position, index in enumerate(order):
            positions[index] = position
        self._positions = positions
        self._active = bytearray(count)
        self.evaluations = 0
        self.widenings = 0
        self.narrowings = 0
        self.pops = 0
        self.coalesced = 0
        self.batched_sweeps = 0
        self.batched_evaluations = 0
        #: member indices where widening actually fired.
        self.widened: List[int] = []

    # -- driver ------------------------------------------------------------------
    def solve(self) -> None:
        count = self._count
        pending = list(range(count))
        # Phase 1a: bounded chaotic iteration.
        sweeps = 0
        while pending and sweeps < self._before_widening:
            pending = self._sweep(pending, _ASSIGN)
            sweeps += 1
        if not pending:
            # Mirrors the scalar solver's early return: the component
            # stabilised without widening, so narrowing has nothing to do.
            return
        # Phase 1b: widening until the change frontier drains.
        while pending:
            pending = self._sweep(pending, _WIDEN)
        # Phase 2: narrowing; every member re-enters once.
        pending = list(range(count))
        sweeps = 0
        while pending and sweeps < self._max_narrowing:
            pending = self._sweep(pending, _NARROW)
            sweeps += 1

    def _sweep(self, pending: List[int], mode: int) -> List[int]:
        if len(pending) * 2 >= self._count:
            return self._batched_sweep(mode)
        return self._sparse_sweep(pending, mode)

    # -- one full batched sweep --------------------------------------------------
    def _batched_sweep(self, mode: int) -> List[int]:
        lo = self._lo
        hi = self._hi
        neg = NEG_INF
        pos = POS_INF
        widen = mode == _WIDEN
        narrow = mode == _NARROW
        solo_const = _SOLO_CONST
        solo_kernel = _SOLO_KERNEL
        solo_copy = _SOLO_COPY
        changed: List[int] = []
        changed_append = changed.append
        for source, shadow in self._shadow_pairs:
            lo[shadow] = lo[source]
            hi[shadow] = hi[source]
        for groups, index, code in self._steps:
            if groups is None:
                # Solo step: a single-member level — evaluate inline and
                # commit immediately (no level-mates can observe the write
                # early; hazardous lower-level readers use the shadow slot).
                op = code[0]
                if op == solo_kernel:
                    a = code[1]
                    b = code[2]
                    new_lo, new_hi = code[3](lo[a], hi[a], lo[b], hi[b])
                elif op == solo_copy:
                    source = code[1]
                    new_lo = lo[source]
                    new_hi = hi[source]
                elif op == solo_const:
                    new_lo = code[1]
                    new_hi = code[2]
                else:  # phi
                    new_lo, new_hi = pos, neg
                    for operand in code[1]:
                        blo = lo[operand]
                        bhi = hi[operand]
                        if new_lo > new_hi:
                            new_lo = blo
                            new_hi = bhi
                        elif blo > bhi:
                            continue
                        else:
                            if blo < new_lo:
                                new_lo = blo
                            if bhi > new_hi:
                                new_hi = bhi
                cur_lo = lo[index]
                cur_hi = hi[index]
                if widen:
                    # Inline bounds_widen(cur, new).
                    if cur_lo > cur_hi:
                        pass
                    elif new_lo > new_hi:
                        new_lo = cur_lo
                        new_hi = cur_hi
                    else:
                        new_lo = cur_lo if new_lo >= cur_lo else neg
                        new_hi = cur_hi if new_hi <= cur_hi else pos
                elif narrow:
                    # Inline bounds_narrow(cur, new).
                    if cur_lo > cur_hi or new_lo > new_hi:
                        new_lo = pos
                        new_hi = neg
                    else:
                        narrow_lo = new_lo if cur_lo == neg else cur_lo
                        narrow_hi = new_hi if cur_hi == pos else cur_hi
                        if narrow_lo > narrow_hi:
                            new_lo = pos
                            new_hi = neg
                        else:
                            new_lo = narrow_lo
                            new_hi = narrow_hi
                if new_lo != cur_lo or new_hi != cur_hi:
                    lo[index] = new_lo
                    hi[index] = new_hi
                    changed_append(index)
                continue
            for group in groups:
                call = group.call
                if call is not None:
                    call(lo, hi)
            # Commit only after the whole level is evaluated: members of one
            # level never feed each other forward, and same-level back-edges
            # must read previous-sweep state, exactly like the ranked heap.
            for group in groups:
                indices = group.indices
                out_lo = group.out_lo
                out_hi = group.out_hi
                for i in range(len(indices)):
                    index = indices[i]
                    new_lo = out_lo[i]
                    new_hi = out_hi[i]
                    cur_lo = lo[index]
                    cur_hi = hi[index]
                    if widen:
                        # Inline bounds_widen(cur, new).
                        if cur_lo > cur_hi:
                            pass
                        elif new_lo > new_hi:
                            new_lo = cur_lo
                            new_hi = cur_hi
                        else:
                            new_lo = cur_lo if new_lo >= cur_lo else neg
                            new_hi = cur_hi if new_hi <= cur_hi else pos
                    elif narrow:
                        # Inline bounds_narrow(cur, new).
                        if cur_lo > cur_hi or new_lo > new_hi:
                            new_lo = pos
                            new_hi = neg
                        else:
                            narrow_lo = new_lo if cur_lo == neg else cur_lo
                            narrow_hi = new_hi if cur_hi == pos else cur_hi
                            if narrow_lo > narrow_hi:
                                new_lo = pos
                                new_hi = neg
                            else:
                                new_lo = narrow_lo
                                new_hi = narrow_hi
                    if new_lo != cur_lo or new_hi != cur_hi:
                        lo[index] = new_lo
                        hi[index] = new_hi
                        changed_append(index)
        self.batched_sweeps += 1
        self.batched_evaluations += self._count
        self.evaluations += self._count
        if mode == _WIDEN:
            self.widenings += len(changed)
            self.widened.extend(changed)
        elif mode == _NARROW:
            self.narrowings += len(changed)
        # Next sweep's frontier: users across back-edges of changed members
        # (rank-forward users were already served within this sweep).
        ranks = self._ranks
        users = self._users
        pending = set()
        for index in changed:
            rank = ranks[index]
            for user in users[index]:
                if ranks[user] <= rank:
                    pending.add(user)
        return sorted(pending)

    # -- one sparse (per-member) sweep -------------------------------------------
    def _sparse_sweep(self, pending: List[int], mode: int) -> List[int]:
        """Evaluate only the pending members, in rank order.

        A ranked sweep serves members by ascending rank, and every in-sweep
        (rank-forward) push targets a rank *above* the member being served —
        so instead of a heap, the sweep scans rank positions upward over a
        reusable ``active`` flag array: mark the pending positions, walk from
        the lowest, and flag rank-forward users as they become dirty.  Pop
        order, reads and writes are identical to the ``(rank, index)`` heap
        the scalar solver uses; only the bookkeeping cost changes.
        """
        lo = self._lo
        hi = self._hi
        neg = NEG_INF
        pos = POS_INF
        positions = self._positions
        order = self._order
        users = self._users
        active = self._active
        inline = self._inline
        solo_const = _SOLO_CONST
        solo_kernel = _SOLO_KERNEL
        solo_copy = _SOLO_COPY
        widen = mode == _WIDEN
        narrow = mode == _NARROW
        first = self._count
        last = -1
        for index in pending:
            position = positions[index]
            active[position] = 1
            if position < first:
                first = position
            if position > last:
                last = position
        next_pending = set()
        pops = 0
        position = first
        while position <= last:
            if not active[position]:
                position += 1
                continue
            active[position] = 0
            index = order[position]
            pops += 1
            code = inline[index]
            op = code[0]
            if op == solo_kernel:
                a = code[1]
                b = code[2]
                new_lo, new_hi = code[3](lo[a], hi[a], lo[b], hi[b])
            elif op == solo_copy:
                source = code[1]
                new_lo = lo[source]
                new_hi = hi[source]
            elif op == solo_const:
                new_lo = code[1]
                new_hi = code[2]
            else:  # phi
                new_lo, new_hi = pos, neg
                for operand in code[1]:
                    blo = lo[operand]
                    bhi = hi[operand]
                    if new_lo > new_hi:
                        new_lo = blo
                        new_hi = bhi
                    elif blo > bhi:
                        continue
                    else:
                        if blo < new_lo:
                            new_lo = blo
                        if bhi > new_hi:
                            new_hi = bhi
            cur_lo = lo[index]
            cur_hi = hi[index]
            if widen:
                if cur_lo > cur_hi:
                    pass
                elif new_lo > new_hi:
                    new_lo = cur_lo
                    new_hi = cur_hi
                else:
                    new_lo = cur_lo if new_lo >= cur_lo else neg
                    new_hi = cur_hi if new_hi <= cur_hi else pos
            elif narrow:
                if cur_lo > cur_hi or new_lo > new_hi:
                    new_lo = pos
                    new_hi = neg
                else:
                    narrow_lo = new_lo if cur_lo == neg else cur_lo
                    narrow_hi = new_hi if cur_hi == pos else cur_hi
                    if narrow_lo > narrow_hi:
                        new_lo = pos
                        new_hi = neg
                    else:
                        new_lo = narrow_lo
                        new_hi = narrow_hi
            if new_lo != cur_lo or new_hi != cur_hi:
                lo[index] = new_lo
                hi[index] = new_hi
                if widen:
                    self.widenings += 1
                    self.widened.append(index)
                elif narrow:
                    self.narrowings += 1
                for user in users[index]:
                    user_position = positions[user]
                    if user_position > position:
                        # Rank-forward dependent: revisit within this sweep
                        # (its position is still ahead of the scan).
                        if active[user_position]:
                            self.coalesced += 1
                        else:
                            active[user_position] = 1
                            if user_position > last:
                                last = user_position
                    else:
                        next_pending.add(user)
            position += 1
        self.pops += pops
        self.evaluations += pops
        return sorted(next_pending)
