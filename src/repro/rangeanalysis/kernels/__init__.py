"""Pluggable interval-kernel backends for the table-based range solver.

The ranked (``scc``/``loopdepth``) solver precompiles every cyclic
component to opcode tuples over an
:class:`~repro.rangeanalysis.interval.IntervalTable`; a *kernel backend*
decides how those opcodes are evaluated.  Three backends are registered
(the ``REPRO_INTERVAL_KERNEL`` values; :mod:`repro.api.config` validates
against the same names):

``scalar``
    The default: the per-member sparse solver in
    :meth:`RangeAnalysis._solve_cyclic_table`, dispatching one scalar
    ``bounds_*`` kernel per pop.  :func:`get_backend` returns ``None``.
``batch``
    Level-synchronous batched sweeps (:mod:`.sweep`) calling the pure-
    Python whole-group ``bounds_*_many`` kernels (:mod:`.batch`) — one
    kernel call per (level, opcode) group, switching adaptively between
    sparse pops and full batched sweeps as the change frontier saturates.
``numpy``
    The same sweep executor calling vectorized int64 kernels
    (:mod:`.numpy_backend`).  Degrades gracefully to ``batch`` when numpy
    is not installed — the knob never makes a solve fail.

Every backend produces bit-identical fixpoints (and therefore verdicts)
under every worklist order; the scalar↔many parity is enforced by
``tests/rangeanalysis/test_kernel_parity.py`` and the cross-backend solver
equivalence by ``tests/rangeanalysis/test_kernel_backends.py``.
"""

from __future__ import annotations

from typing import Optional

from repro.api.config import ConfigError
from repro.rangeanalysis.kernels.batch import BATCH_BACKEND, BatchKernelBackend
from repro.rangeanalysis.kernels.opcodes import (
    OP_ADD,
    OP_CONST,
    OP_COPY,
    OP_DIV,
    OP_MUL,
    OP_PHI,
    OP_REM,
    OP_SIGMA,
    OP_SUB,
    REFINE_KERNELS,
    SCALAR_BINARY_KERNELS,
)
from repro.rangeanalysis.kernels.sweep import BatchedComponentSolver

#: the registered kernel backends (the ``REPRO_INTERVAL_KERNEL`` values).
KERNEL_BACKENDS = ("scalar", "batch", "numpy")

_numpy_backend = None
_numpy_checked = False


def validate_kernel(kernel: str) -> str:
    """Return ``kernel`` or raise ``ConfigError`` naming the accepted backends."""
    if kernel not in KERNEL_BACKENDS:
        raise ConfigError(
            "interval_kernel={!r} is not one of {}".format(
                kernel, "/".join(KERNEL_BACKENDS)))
    return kernel


def get_backend(kernel: str):
    """The backend object for ``kernel``, or ``None`` for ``scalar``.

    ``numpy`` resolves to the vectorized backend when numpy imports, and to
    the ``batch`` backend otherwise (graceful degradation; check the
    returned object's ``name`` for what actually serves the sweeps).
    """
    validate_kernel(kernel)
    if kernel == "scalar":
        return None
    if kernel == "batch":
        return BATCH_BACKEND
    global _numpy_backend, _numpy_checked
    if not _numpy_checked:
        _numpy_checked = True
        try:
            from repro.rangeanalysis.kernels import numpy_backend
        except ImportError:
            _numpy_backend = None
        else:
            _numpy_backend = numpy_backend.make_backend()
    return _numpy_backend if _numpy_backend is not None else BATCH_BACKEND


__all__ = [
    "BATCH_BACKEND",
    "BatchKernelBackend",
    "BatchedComponentSolver",
    "KERNEL_BACKENDS",
    "OP_ADD",
    "OP_CONST",
    "OP_COPY",
    "OP_DIV",
    "OP_MUL",
    "OP_PHI",
    "OP_REM",
    "OP_SIGMA",
    "OP_SUB",
    "REFINE_KERNELS",
    "SCALAR_BINARY_KERNELS",
    "get_backend",
    "validate_kernel",
]
