"""Interval (range) analysis.

The less-than analysis of the paper consumes a range analysis "in the style
of Cousot" (the authors use Rodrigues et al.'s LLVM implementation) for one
purpose: classifying additions.  Given ``x1 = x2 + x3`` it must know whether
``x3`` (or ``x2``) is strictly positive, strictly negative, or neither, so
that the instruction can be treated as an addition, a subtraction, or ignored
(Section 3.2, "The Support of Range Analysis on Integer Intervals").

This package provides a self-contained implementation: an interval domain
with widening/narrowing, a dependency graph over SSA values with strongly
connected component ordering, and the analysis driver.
"""

from repro.rangeanalysis.interval import Interval, NEG_INF, POS_INF
from repro.rangeanalysis.graph import DependencyGraph, strongly_connected_components
from repro.rangeanalysis.analysis import (
    RangeAnalysis,
    RangeAnalysisPass,
    RangeStatistics,
    default_range_solver,
)

__all__ = [
    "Interval",
    "NEG_INF",
    "POS_INF",
    "DependencyGraph",
    "strongly_connected_components",
    "RangeAnalysis",
    "RangeAnalysisPass",
    "RangeStatistics",
    "default_range_solver",
]
