"""The range-analysis driver.

For every SSA value of integer type the analysis computes an
:class:`~repro.rangeanalysis.interval.Interval` that over-approximates the
values the variable may hold at run time.  The algorithm follows the
three-phase structure of Rodrigues et al.'s implementation (the one the
paper's artifact uses):

1. build the data-dependence graph of the function and split it into
   strongly connected components;
2. solve the components in topological order — acyclic components are
   evaluated directly, cyclic components are iterated with *widening* until
   stable;
3. run a *narrowing* pass over cyclic components to recover precision lost
   to widening (in particular bounds coming from loop exit conditions).

When the function is in e-SSA form (after
:func:`repro.essa.transform.convert_to_essa`), σ-copies carry the branch
condition that dominates them; the analysis uses those conditions to refine
ranges, which is how ``for (i = 0; i < N; i++)`` yields ``i ∈ [0, N-1]`` on
the true branch.

Two solver implementations compute the fixed point of a cyclic component:

* ``sparse`` (the default) — a def-use worklist seeded from the
  :class:`~repro.rangeanalysis.graph.DependencyGraph`.  Only users of values
  whose interval actually changed are re-evaluated; per-value widening-point
  tracking records where widening fired (the back-edge φ/σ nodes in
  practice).  The worklist is ordered by ``(sweep, member index)`` so it
  replays the dense solver's Gauss-Seidel trajectory exactly, skipping only
  evaluations that are provably no-ops — the resulting intervals are
  **bit-identical** to the dense solver's.
* ``dense`` — the reference implementation: every member of the component is
  re-evaluated on every iteration/widening/narrowing sweep.  Kept for
  differential testing and as the baseline of
  ``benchmarks/bench_solver_hotpath.py``.

Select with the ``solver`` constructor argument or the ``REPRO_RANGE_SOLVER``
environment variable (``sparse``/``dense``).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.api.config import resolved_range_solver
from repro.ir.function import Function
from repro.ir.instructions import (
    BinaryOp,
    Copy,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
)
from repro.ir.values import Argument, ConstantInt, Undef, Value
from repro.passes.pass_base import AnalysisPass
from repro.rangeanalysis.graph import DependencyGraph
from repro.rangeanalysis.interval import Interval


def default_range_solver() -> str:
    """The configured solver (default ``sparse``).

    Resolution — active :class:`~repro.api.config.ReproConfig` first, the
    ``REPRO_RANGE_SOLVER`` environment variable second — lives in
    :mod:`repro.api.config`; invalid values raise
    :class:`~repro.api.config.ConfigError` there instead of silently
    falling back.
    """
    return resolved_range_solver()


class RangeStatistics:
    """Counters describing one range-analysis solve.

    ``evaluations`` counts transfer-function applications — the quantity the
    sparse solver exists to reduce, and what
    ``benchmarks/bench_solver_hotpath.py`` compares across solvers.
    """

    def __init__(self) -> None:
        self.evaluations = 0
        self.components = 0
        self.cyclic_components = 0
        self.widenings = 0
        self.narrowings = 0
        self.widening_points = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "evaluations": self.evaluations,
            "components": self.components,
            "cyclic_components": self.cyclic_components,
            "widenings": self.widenings,
            "narrowings": self.narrowings,
            "widening_points": self.widening_points,
        }

    def __repr__(self) -> str:
        return "<RangeStatistics evaluations={} widenings={} narrowings={}>".format(
            self.evaluations, self.widenings, self.narrowings)


class RangeAnalysis:
    """Computes and stores value ranges for a single function."""

    #: number of chaotic iterations inside a cyclic component before widening
    #: kicks in; small values keep the analysis fast, larger values keep more
    #: precision for short chains.
    ITERATIONS_BEFORE_WIDENING = 3
    #: bound on narrowing iterations (narrowing always terminates, this is a
    #: belt-and-braces fuel limit).
    MAX_NARROWING_ITERATIONS = 16

    def __init__(self, function: Function,
                 argument_ranges: Optional[Dict[Argument, Interval]] = None,
                 solver: Optional[str] = None) -> None:
        self.function = function
        self.argument_ranges = argument_ranges or {}
        self.ranges: Dict[Value, Interval] = {}
        self.solver = solver or default_range_solver()
        if self.solver not in ("sparse", "dense"):
            raise ValueError("unknown range solver {!r}".format(self.solver))
        self.statistics = RangeStatistics()
        #: values whose bounds widening actually changed — the per-value
        #: widening points (back-edge φ/σ nodes and the chains they feed).
        self.widening_points: Set[Value] = set()
        self._run()

    # -- public API ---------------------------------------------------------------
    def range_of(self, value: Value) -> Interval:
        """The interval of ``value`` (top for untracked values, exact for constants)."""
        if isinstance(value, ConstantInt):
            return Interval.constant(value.value)
        if isinstance(value, Undef):
            return Interval.top()
        return self.ranges.get(value, Interval.top())

    def is_strictly_positive(self, value: Value) -> bool:
        return self.range_of(value).is_strictly_positive()

    def is_strictly_negative(self, value: Value) -> bool:
        return self.range_of(value).is_strictly_negative()

    # -- solving ---------------------------------------------------------------------
    def _run(self) -> None:
        if self.function.is_declaration():
            return
        graph = DependencyGraph(self.function)
        solve_cyclic = (self._solve_cyclic_sparse if self.solver == "sparse"
                        else self._solve_cyclic_dense)
        for node in graph.nodes:
            self.ranges[node] = Interval.bottom()
        for component in graph.components_in_topological_order():
            self.statistics.components += 1
            if graph.component_is_cyclic(component):
                self.statistics.cyclic_components += 1
                solve_cyclic(component, graph)
            else:
                self._solve_acyclic(component[0])
        self.statistics.widening_points = len(self.widening_points)

    def _solve_acyclic(self, value: Value) -> None:
        self.ranges[value] = self._evaluate(value)

    def _solve_cyclic_dense(self, component: List[Value],
                            _graph: DependencyGraph) -> None:
        """Reference solver: full sweeps over the component until stable."""
        members = list(component)
        # Phase 1: plain iteration, then widening until stabilisation.
        for iteration in range(self.ITERATIONS_BEFORE_WIDENING):
            changed = False
            for value in members:
                new = self._evaluate(value)
                if new != self.ranges[value]:
                    self.ranges[value] = new
                    changed = True
            if not changed:
                return
        stable = False
        while not stable:
            stable = True
            for value in members:
                new = self._evaluate(value)
                widened = self.ranges[value].widen(new)
                if widened != self.ranges[value]:
                    self.ranges[value] = widened
                    if value not in self.widening_points:
                        self.widening_points.add(value)
                    self.statistics.widenings += 1
                    stable = False
        # Phase 2: narrowing.
        for _ in range(self.MAX_NARROWING_ITERATIONS):
            changed = False
            for value in members:
                new = self._evaluate(value)
                narrowed = self.ranges[value].narrow(new)
                if narrowed != self.ranges[value]:
                    self.ranges[value] = narrowed
                    self.statistics.narrowings += 1
                    changed = True
            if not changed:
                break

    def _solve_cyclic_sparse(self, component: List[Value],
                             graph: DependencyGraph) -> None:
        """Change-driven solver: re-evaluate only users of changed values.

        The worklist holds ``(sweep, member index)`` pairs ordered like the
        dense solver's sweeps: when the value at index ``i`` changes during
        sweep ``s``, a user at index ``j > i`` is re-evaluated later in the
        same sweep (it would have seen the update in the dense Gauss–Seidel
        pass too) and a user at ``j <= i`` in sweep ``s + 1``.  Values whose
        operands did not change are skipped outright — their re-evaluation
        would reproduce the stored interval, so the dense sweep's visit is a
        no-op there.  The per-phase sweep limits are shared with the dense
        solver, which makes the two solvers' results bit-identical.
        """
        members = list(component)
        count = len(members)
        index_of = {value: index for index, value in enumerate(members)}
        users: List[List[int]] = []
        for value in members:
            users.append(sorted({index_of[user]
                                 for user in graph.successors.get(value, [])
                                 if user in index_of}))
        ranges = self.ranges
        statistics = self.statistics

        heap: List[Tuple[int, int]] = [(0, index) for index in range(count)]
        pending: Set[Tuple[int, int]] = set(heap)

        def schedule(sweep: int, source_index: int) -> None:
            for target_index in users[source_index]:
                entry = (sweep if target_index > source_index else sweep + 1,
                         target_index)
                if entry not in pending:
                    pending.add(entry)
                    heappush(heap, entry)

        # Phase 1a: bounded chaotic iteration.
        while heap and heap[0][0] < self.ITERATIONS_BEFORE_WIDENING:
            entry = heappop(heap)
            pending.discard(entry)
            sweep, index = entry
            value = members[index]
            new = self._evaluate(value)
            if new != ranges[value]:
                ranges[value] = new
                schedule(sweep, index)
        if not heap:
            return
        # Phase 1b: widening until the change frontier drains.
        while heap:
            entry = heappop(heap)
            pending.discard(entry)
            sweep, index = entry
            value = members[index]
            widened = ranges[value].widen(self._evaluate(value))
            if widened != ranges[value]:
                ranges[value] = widened
                if value not in self.widening_points:
                    self.widening_points.add(value)
                statistics.widenings += 1
                schedule(sweep, index)
        # Phase 2: narrowing.  Every member re-enters once — the transfer
        # changes from widening to narrowing, so "operands unchanged" no
        # longer implies a no-op — then only users of refined values follow.
        heap = [(0, index) for index in range(count)]
        pending = set(heap)
        while heap and heap[0][0] < self.MAX_NARROWING_ITERATIONS:
            entry = heappop(heap)
            pending.discard(entry)
            sweep, index = entry
            value = members[index]
            narrowed = ranges[value].narrow(self._evaluate(value))
            if narrowed != ranges[value]:
                ranges[value] = narrowed
                statistics.narrowings += 1
                schedule(sweep, index)

    # -- transfer functions -----------------------------------------------------------
    def _operand_range(self, value: Value) -> Interval:
        if isinstance(value, ConstantInt):
            return Interval.constant(value.value)
        if isinstance(value, Undef):
            return Interval.top()
        return self.ranges.get(value, Interval.top())

    def _evaluate(self, value: Value) -> Interval:
        self.statistics.evaluations += 1
        if isinstance(value, Argument):
            return self.argument_ranges.get(value, Interval.top())
        if isinstance(value, ConstantInt):
            return Interval.constant(value.value)
        if isinstance(value, BinaryOp):
            return self._evaluate_binary(value)
        if isinstance(value, Phi):
            result = Interval.bottom()
            for incoming, _block in value.incoming():
                result = result.join(self._operand_range(incoming))
            return result
        if isinstance(value, Copy):
            source_range = self._operand_range(value.source)
            return self._refine_sigma(value, source_range)
        if isinstance(value, (Load, GetElementPtr)):
            # Loads produce unknown integers; geps are pointers (ranges are
            # not meaningful but keeping top keeps the graph uniform).
            return Interval.top()
        return Interval.top()

    def _evaluate_binary(self, inst: BinaryOp) -> Interval:
        lhs = self._operand_range(inst.lhs)
        rhs = self._operand_range(inst.rhs)
        if inst.op == "add":
            return lhs.add(rhs)
        if inst.op == "sub":
            return lhs.sub(rhs)
        if inst.op == "mul":
            return lhs.mul(rhs)
        if inst.op == "div":
            return lhs.div(rhs)
        if inst.op == "rem":
            return lhs.rem(rhs)
        return Interval.top()

    def _refine_sigma(self, copy: Copy, source_range: Interval) -> Interval:
        """Refine the range of a σ-copy with the branch condition it encodes.

        The e-SSA transformation annotates σ-copies with the comparison that
        guards them (``sigma_condition``), which operand of the comparison the
        copy renames (``sigma_operand_side``: "lhs" or "rhs") and whether the
        copy lives on the true or the false branch (``sigma_on_true_branch``).
        """
        condition = getattr(copy, "sigma_condition", None)
        if not isinstance(condition, ICmp):
            return source_range
        side = getattr(copy, "sigma_operand_side", None)
        on_true = getattr(copy, "sigma_on_true_branch", True)
        lhs_range = self._operand_range(condition.lhs)
        rhs_range = self._operand_range(condition.rhs)
        predicate = condition.predicate
        if not on_true:
            predicate = ICmp.NEGATED[predicate]
        if side == "lhs":
            mine, other = source_range, rhs_range
        elif side == "rhs":
            mine, other = source_range, lhs_range
            predicate = ICmp.SWAPPED[predicate]
        else:
            return source_range
        if predicate == "slt":
            return mine.refine_less_than(other)
        if predicate == "sle":
            return mine.refine_less_equal(other)
        if predicate == "sgt":
            return mine.refine_greater_than(other)
        if predicate == "sge":
            return mine.refine_greater_equal(other)
        if predicate == "eq":
            return mine.refine_equal(other)
        return mine


class RangeAnalysisPass(AnalysisPass):
    """Pass-manager wrapper around :class:`RangeAnalysis`."""

    name = "range-analysis"

    def run_on_function(self, function: Function) -> RangeAnalysis:
        return RangeAnalysis(function)
