"""The range-analysis driver.

For every SSA value of integer type the analysis computes an
:class:`~repro.rangeanalysis.interval.Interval` that over-approximates the
values the variable may hold at run time.  The algorithm follows the
three-phase structure of Rodrigues et al.'s implementation (the one the
paper's artifact uses):

1. build the data-dependence graph of the function and split it into
   strongly connected components;
2. solve the components in topological order — acyclic components are
   evaluated directly, cyclic components are iterated with *widening* until
   stable;
3. run a *narrowing* pass over cyclic components to recover precision lost
   to widening (in particular bounds coming from loop exit conditions).

When the function is in e-SSA form (after
:func:`repro.essa.transform.convert_to_essa`), σ-copies carry the branch
condition that dominates them; the analysis uses those conditions to refine
ranges, which is how ``for (i = 0; i < N; i++)`` yields ``i ∈ [0, N-1]`` on
the true branch.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.ir.function import Function
from repro.ir.instructions import (
    BinaryOp,
    Copy,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
)
from repro.ir.values import Argument, ConstantInt, Undef, Value
from repro.passes.pass_base import AnalysisPass
from repro.rangeanalysis.graph import DependencyGraph
from repro.rangeanalysis.interval import Interval


class RangeAnalysis:
    """Computes and stores value ranges for a single function."""

    #: number of chaotic iterations inside a cyclic component before widening
    #: kicks in; small values keep the analysis fast, larger values keep more
    #: precision for short chains.
    ITERATIONS_BEFORE_WIDENING = 3
    #: bound on narrowing iterations (narrowing always terminates, this is a
    #: belt-and-braces fuel limit).
    MAX_NARROWING_ITERATIONS = 16

    def __init__(self, function: Function,
                 argument_ranges: Optional[Dict[Argument, Interval]] = None) -> None:
        self.function = function
        self.argument_ranges = argument_ranges or {}
        self.ranges: Dict[Value, Interval] = {}
        self._run()

    # -- public API ---------------------------------------------------------------
    def range_of(self, value: Value) -> Interval:
        """The interval of ``value`` (top for untracked values, exact for constants)."""
        if isinstance(value, ConstantInt):
            return Interval.constant(value.value)
        if isinstance(value, Undef):
            return Interval.top()
        return self.ranges.get(value, Interval.top())

    def is_strictly_positive(self, value: Value) -> bool:
        return self.range_of(value).is_strictly_positive()

    def is_strictly_negative(self, value: Value) -> bool:
        return self.range_of(value).is_strictly_negative()

    # -- solving ---------------------------------------------------------------------
    def _run(self) -> None:
        if self.function.is_declaration():
            return
        graph = DependencyGraph(self.function)
        for node in graph.nodes:
            self.ranges[node] = Interval.bottom()
        for component in graph.components_in_topological_order():
            if graph.component_is_cyclic(component):
                self._solve_cyclic(component)
            else:
                self._solve_acyclic(component[0])

    def _solve_acyclic(self, value: Value) -> None:
        self.ranges[value] = self._evaluate(value)

    def _solve_cyclic(self, component: List[Value]) -> None:
        members = list(component)
        # Phase 1: plain iteration, then widening until stabilisation.
        for iteration in range(self.ITERATIONS_BEFORE_WIDENING):
            changed = False
            for value in members:
                new = self._evaluate(value)
                if new != self.ranges[value]:
                    self.ranges[value] = new
                    changed = True
            if not changed:
                return
        stable = False
        while not stable:
            stable = True
            for value in members:
                new = self._evaluate(value)
                widened = self.ranges[value].widen(new)
                if widened != self.ranges[value]:
                    self.ranges[value] = widened
                    stable = False
        # Phase 2: narrowing.
        for _ in range(self.MAX_NARROWING_ITERATIONS):
            changed = False
            for value in members:
                new = self._evaluate(value)
                narrowed = self.ranges[value].narrow(new)
                if narrowed != self.ranges[value]:
                    self.ranges[value] = narrowed
                    changed = True
            if not changed:
                break

    # -- transfer functions -----------------------------------------------------------
    def _operand_range(self, value: Value) -> Interval:
        if isinstance(value, ConstantInt):
            return Interval.constant(value.value)
        if isinstance(value, Undef):
            return Interval.top()
        return self.ranges.get(value, Interval.top())

    def _evaluate(self, value: Value) -> Interval:
        if isinstance(value, Argument):
            return self.argument_ranges.get(value, Interval.top())
        if isinstance(value, ConstantInt):
            return Interval.constant(value.value)
        if isinstance(value, BinaryOp):
            return self._evaluate_binary(value)
        if isinstance(value, Phi):
            result = Interval.bottom()
            for incoming, _block in value.incoming():
                result = result.join(self._operand_range(incoming))
            return result
        if isinstance(value, Copy):
            source_range = self._operand_range(value.source)
            return self._refine_sigma(value, source_range)
        if isinstance(value, (Load, GetElementPtr)):
            # Loads produce unknown integers; geps are pointers (ranges are
            # not meaningful but keeping top keeps the graph uniform).
            return Interval.top()
        return Interval.top()

    def _evaluate_binary(self, inst: BinaryOp) -> Interval:
        lhs = self._operand_range(inst.lhs)
        rhs = self._operand_range(inst.rhs)
        if inst.op == "add":
            return lhs.add(rhs)
        if inst.op == "sub":
            return lhs.sub(rhs)
        if inst.op == "mul":
            return lhs.mul(rhs)
        if inst.op == "div":
            return lhs.div(rhs)
        if inst.op == "rem":
            return lhs.rem(rhs)
        return Interval.top()

    def _refine_sigma(self, copy: Copy, source_range: Interval) -> Interval:
        """Refine the range of a σ-copy with the branch condition it encodes.

        The e-SSA transformation annotates σ-copies with the comparison that
        guards them (``sigma_condition``), which operand of the comparison the
        copy renames (``sigma_operand_side``: "lhs" or "rhs") and whether the
        copy lives on the true or the false branch (``sigma_on_true_branch``).
        """
        condition = getattr(copy, "sigma_condition", None)
        if not isinstance(condition, ICmp):
            return source_range
        side = getattr(copy, "sigma_operand_side", None)
        on_true = getattr(copy, "sigma_on_true_branch", True)
        lhs_range = self._operand_range(condition.lhs)
        rhs_range = self._operand_range(condition.rhs)
        predicate = condition.predicate
        if not on_true:
            predicate = ICmp.NEGATED[predicate]
        if side == "lhs":
            mine, other = source_range, rhs_range
        elif side == "rhs":
            mine, other = source_range, lhs_range
            predicate = ICmp.SWAPPED[predicate]
        else:
            return source_range
        if predicate == "slt":
            return mine.refine_less_than(other)
        if predicate == "sle":
            return mine.refine_less_equal(other)
        if predicate == "sgt":
            return mine.refine_greater_than(other)
        if predicate == "sge":
            return mine.refine_greater_equal(other)
        if predicate == "eq":
            return mine.refine_equal(other)
        return mine


class RangeAnalysisPass(AnalysisPass):
    """Pass-manager wrapper around :class:`RangeAnalysis`."""

    name = "range-analysis"

    def run_on_function(self, function: Function) -> RangeAnalysis:
        return RangeAnalysis(function)
