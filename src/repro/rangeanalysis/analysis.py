"""The range-analysis driver.

For every SSA value of integer type the analysis computes an
:class:`~repro.rangeanalysis.interval.Interval` that over-approximates the
values the variable may hold at run time.  The algorithm follows the
three-phase structure of Rodrigues et al.'s implementation (the one the
paper's artifact uses):

1. build the data-dependence graph of the function and split it into
   strongly connected components;
2. solve the components in topological order — acyclic components are
   evaluated directly, cyclic components are iterated with *widening* until
   stable;
3. run a *narrowing* pass over cyclic components to recover precision lost
   to widening (in particular bounds coming from loop exit conditions).

When the function is in e-SSA form (after
:func:`repro.essa.transform.convert_to_essa`), σ-copies carry the branch
condition that dominates them; the analysis uses those conditions to refine
ranges, which is how ``for (i = 0; i < N; i++)`` yields ``i ∈ [0, N-1]`` on
the true branch.

Two solver implementations compute the fixed point of a cyclic component:

* ``sparse`` (the default) — a def-use worklist seeded from the
  :class:`~repro.rangeanalysis.graph.DependencyGraph`.  Only users of values
  whose interval actually changed are re-evaluated; per-value widening-point
  tracking records where widening fired (the back-edge φ/σ nodes in
  practice).  The worklist is ordered by ``(sweep, member index)`` so it
  replays the dense solver's Gauss-Seidel trajectory exactly, skipping only
  evaluations that are provably no-ops — the resulting intervals are
  **bit-identical** to the dense solver's.
* ``dense`` — the reference implementation: every member of the component is
  re-evaluated on every iteration/widening/narrowing sweep.  Kept for
  differential testing and as the baseline of
  ``benchmarks/bench_solver_hotpath.py``.

Select with the ``solver`` constructor argument or the ``REPRO_RANGE_SOLVER``
environment variable (``sparse``/``dense``).

On top of the solver choice, the *worklist order* is a swappable policy
(``order`` constructor argument / ``REPRO_WORKLIST_ORDER``):

* ``fifo`` (default) — member-index ranks; the sparse solver replays the
  dense trajectory bit-identically on ``Interval`` objects.
* ``scc`` — intra-component reverse-postorder ranks; the inner loop runs on
  an unboxed :class:`~repro.rangeanalysis.interval.IntervalTable` with
  members precompiled to opcode tuples (no isinstance dispatch, no dict
  probes, no Interval allocation) and boxes results back at the component
  boundary.
* ``loopdepth`` — like ``scc`` but ranked by loop-nesting depth first
  (outermost values first), topological rank second.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.api.config import (
    ConfigError,
    RANGE_SOLVERS,
    resolved_interval_kernel,
    resolved_range_solver,
    resolved_worklist_order,
)
from repro.ir.function import Function
from repro.ir.instructions import (
    BinaryOp,
    Copy,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
)
from repro.ir.loops import LoopInfo
from repro.ir.printer import format_instruction
from repro.ir.values import Argument, ConstantInt, Undef, Value
from repro.obs import TRACER
from repro.passes.pass_base import AnalysisPass
from repro.rangeanalysis.graph import DependencyGraph, SCCComponent
from repro.rangeanalysis.interval import (
    Interval,
    IntervalTable,
    NEG_INF,
    POS_INF,
    bounds_join,
    bounds_narrow,
    bounds_widen,
)
from repro.rangeanalysis.kernels import (
    BatchedComponentSolver,
    OP_ADD,
    OP_CONST,
    OP_COPY,
    OP_DIV,
    OP_MUL,
    OP_PHI,
    OP_REM,
    OP_SIGMA,
    OP_SUB,
    REFINE_KERNELS,
    SCALAR_BINARY_KERNELS,
    get_backend,
    validate_kernel,
)
from repro.util.worklist import SolverInfo, SweepWorklist, validate_order


def value_signature(value: Value) -> tuple:
    """A content signature identifying ``value`` across recompilations.

    Two values with equal signatures have identical transfer functions over
    identically *named* inputs: the printed instruction text pins the opcode,
    the result name (unique per function in SSA) and every operand name; the
    parent block name pins the position; and σ-copies additionally pin their
    branch condition — the printed ``copy`` omits it, yet it feeds the
    refinement — including which side the copy renames and which branch it
    lives on.  This is what lets an incremental re-solve match values of a
    freshly compiled function against a previous compile's results.
    """
    if isinstance(value, Argument):
        return ("arg", value.name)
    block = getattr(value, "parent", None)
    block_name = getattr(block, "name", None)
    condition = getattr(value, "sigma_condition", None)
    if isinstance(condition, ICmp):
        condition_block = getattr(condition, "parent", None)
        extra = (format_instruction(condition),
                 getattr(condition_block, "name", None),
                 getattr(value, "sigma_operand_side", None),
                 getattr(value, "sigma_on_true_branch", None))
    else:
        extra = None
    return (block_name, format_instruction(value), extra)


def _transfer_inputs(value: Value) -> List[Value]:
    """The values whose intervals :meth:`RangeAnalysis._evaluate` reads.

    Arguments, loads and geps are state-independent (their transfer is a
    constant of the analysis), so they contribute no inputs.
    """
    if isinstance(value, BinaryOp):
        return [value.lhs, value.rhs]
    if isinstance(value, Phi):
        return [incoming for incoming, _block in value.incoming()]
    if isinstance(value, Copy):
        inputs = [value.source]
        condition = getattr(value, "sigma_condition", None)
        if isinstance(condition, ICmp):
            inputs.append(condition.lhs)
            inputs.append(condition.rhs)
        return inputs
    return []


def default_range_solver() -> str:
    """The configured solver (default ``sparse``).

    Resolution — active :class:`~repro.api.config.ReproConfig` first, the
    ``REPRO_RANGE_SOLVER`` environment variable second — lives in
    :mod:`repro.api.config`; invalid values raise
    :class:`~repro.api.config.ConfigError` there instead of silently
    falling back.
    """
    return resolved_range_solver()


class RangeStatistics:
    """Counters describing one range-analysis solve.

    ``evaluations`` counts transfer-function applications — the quantity the
    sparse solver exists to reduce, and what
    ``benchmarks/bench_solver_hotpath.py`` compares across solvers.
    ``pops``/``coalesced_pushes`` account the worklist traffic under the
    active ordering policy (``order``).
    """

    def __init__(self) -> None:
        self.evaluations = 0
        self.components = 0
        self.cyclic_components = 0
        self.widenings = 0
        self.narrowings = 0
        self.widening_points = 0
        self.order = "fifo"
        self.pops = 0
        self.coalesced_pushes = 0
        #: the kernel backend that actually served the ranked table solver
        #: ("scalar" whenever the batched sweep executor was not in play —
        #: including under the fifo order, where the knob is a no-op).
        self.kernel_backend = "scalar"
        #: full level-synchronous sweeps run by the batched executor, and the
        #: member evaluations those sweeps performed (a subset of
        #: ``evaluations``).
        self.batched_sweeps = 0
        self.batched_evaluations = 0
        #: components whose previous-solve intervals were copied instead of
        #: solved (incremental re-solve only; always 0 on a fresh solve).
        self.reused_components = 0
        #: wall time of the solve, measured by an always-on obs timer.  Kept
        #: out of ``as_dict`` so counter aggregation and byte-parity
        #: comparisons never see wall-clock jitter.
        self.solve_time_seconds = 0.0

    def solver_info(self) -> SolverInfo:
        """These counters as a mergeable cross-solver :class:`SolverInfo`."""
        info = SolverInfo(
            evaluations=self.evaluations,
            widenings=self.widenings,
            narrowings=self.narrowings,
            sccs=self.components,
            cyclic_sccs=self.cyclic_components,
            batched_sweeps=self.batched_sweeps,
            batched_evaluations=self.batched_evaluations)
        info.record_pops(self.order, self.pops)
        info.record_backend(self.kernel_backend)
        return info

    def as_dict(self) -> Dict[str, int]:
        return {
            "evaluations": self.evaluations,
            "components": self.components,
            "cyclic_components": self.cyclic_components,
            "widenings": self.widenings,
            "narrowings": self.narrowings,
            "widening_points": self.widening_points,
            "order": self.order,
            "pops": self.pops,
            "coalesced_pushes": self.coalesced_pushes,
            "reused_components": self.reused_components,
            "kernel_backend": self.kernel_backend,
            "batched_sweeps": self.batched_sweeps,
            "batched_evaluations": self.batched_evaluations,
        }

    def __repr__(self) -> str:
        return "<RangeStatistics evaluations={} widenings={} narrowings={}>".format(
            self.evaluations, self.widenings, self.narrowings)


class RangeAnalysis:
    """Computes and stores value ranges for a single function."""

    #: number of chaotic iterations inside a cyclic component before widening
    #: kicks in; small values keep the analysis fast, larger values keep more
    #: precision for short chains.
    ITERATIONS_BEFORE_WIDENING = 3
    #: bound on narrowing iterations (narrowing always terminates, this is a
    #: belt-and-braces fuel limit).
    MAX_NARROWING_ITERATIONS = 16
    #: pre-widening budget of the ranked (scc/loopdepth) table solver, in
    #: sweeps.  A topologically ranked sweep propagates one *full* round of
    #: the cycle (φ-rooted, single back-edge wrap), whereas the dense member
    #: order advances roughly one value per sweep — so one ranked sweep is
    #: the equivalent of the legacy ``ITERATIONS_BEFORE_WIDENING`` budget,
    #: and a larger value only multiplies full-component rounds.
    RANKED_ITERATIONS_BEFORE_WIDENING = 1

    def __init__(self, function: Function,
                 argument_ranges: Optional[Dict[Argument, Interval]] = None,
                 solver: Optional[str] = None,
                 order: Optional[str] = None,
                 kernel: Optional[str] = None,
                 previous: Optional["RangeAnalysis"] = None) -> None:
        self.function = function
        self.argument_ranges = argument_ranges or {}
        self.ranges: Dict[Value, Interval] = {}
        self.solver = solver or default_range_solver()
        if self.solver not in RANGE_SOLVERS:
            raise ConfigError("range_solver={!r} is not one of {}".format(
                self.solver, "/".join(RANGE_SOLVERS)))
        self.order = validate_order(order or resolved_worklist_order())
        self.kernel = validate_kernel(kernel or resolved_interval_kernel())
        # The kernel backends plug into the ranked table solver; the boxed
        # fifo replay and the dense reference solver stay scalar (the knob is
        # a documented no-op there — fixpoints are bit-identical either way).
        if self.solver == "sparse" and self.order != "fifo":
            self._kernel_backend = get_backend(self.kernel)
        else:
            self._kernel_backend = None
        self.statistics = RangeStatistics()
        self.statistics.order = self.order
        if self._kernel_backend is not None:
            self.statistics.kernel_backend = self._kernel_backend.name
        #: a finished analysis of an earlier compile of (an edit of) the same
        #: function: components whose structure and external inputs are
        #: unchanged copy its intervals instead of re-solving (incremental
        #: re-solve, bit-identical to a fresh solve — see :meth:`_try_reuse`).
        self.previous = previous
        self._schedule = None
        self._reuse_table: Optional[Dict[tuple, List[tuple]]] = None
        #: values whose bounds widening actually changed — the per-value
        #: widening points (back-edge φ/σ nodes and the chains they feed).
        self.widening_points: Set[Value] = set()
        with TRACER.timer("range.solve", fn=function.name,
                          solver=self.solver, order=self.order) as timer:
            self._run()
        self.statistics.solve_time_seconds = timer.seconds

    # -- public API ---------------------------------------------------------------
    def range_of(self, value: Value) -> Interval:
        """The interval of ``value`` (top for untracked values, exact for constants)."""
        if isinstance(value, ConstantInt):
            return Interval.constant(value.value)
        if isinstance(value, Undef):
            return Interval.top()
        return self.ranges.get(value, Interval.top())

    def is_strictly_positive(self, value: Value) -> bool:
        return self.range_of(value).is_strictly_positive()

    def is_strictly_negative(self, value: Value) -> bool:
        return self.range_of(value).is_strictly_negative()

    # -- solving ---------------------------------------------------------------------
    def _run(self) -> None:
        if self.function.is_declaration():
            return
        schedule = DependencyGraph(self.function).condense()
        self._schedule = schedule
        reuse = self._previous_reuse_table()
        depth_of = self._loop_depth_of() if self.order == "loopdepth" else None
        for node in schedule.graph.nodes:
            self.ranges[node] = Interval.bottom()
        for component in schedule:
            self.statistics.components += 1
            if component.cyclic:
                self.statistics.cyclic_components += 1
            if reuse is not None and self._try_reuse(component, reuse):
                self.statistics.reused_components += 1
                continue
            if not component.cyclic:
                # Topological order makes a single evaluation final here; no
                # widening, no worklist.
                self._solve_acyclic(component.members[0])
                continue
            if self.solver == "dense":
                self._solve_cyclic_dense(component.members)
            elif self.order == "fifo":
                self._solve_cyclic_sparse(component)
            else:
                self._solve_cyclic_table(component, depth_of)
        self.statistics.widening_points = len(self.widening_points)

    # -- incremental re-solve --------------------------------------------------------
    def snapshot(self) -> None:
        """Freeze the reuse table now, against later in-place IR mutation.

        The table is otherwise built lazily on first use as a ``previous``
        analysis, reading signatures from the function's *current* printed
        form — correct but lossy once a transformation (e-SSA conversion)
        has rewritten operands, since mutated texts no longer match the
        solved structure.  A caller that mutates the IR right after solving
        snapshots first so the signatures describe what was actually solved.
        Mutation after the solve can never make reuse *unsound* either way:
        any operand rebinding shows up in the printed text, so a stale
        signature fails to match rather than matching wrongly.
        """
        if self._schedule is not None:
            self._component_snapshot()

    def _previous_reuse_table(self) -> Optional[Dict[tuple, List[tuple]]]:
        """The previous analysis' components, keyed for signature matching.

        Reuse is only attempted when neither analysis carries argument
        ranges: an Argument's transfer function reads ``argument_ranges``
        directly, which the signatures do not (and need not, for the cache
        paths that drive incremental re-solves) capture.
        """
        if self.previous is None or self.previous._schedule is None:
            return None
        if self.argument_ranges or self.previous.argument_ranges:
            return None
        return self.previous._component_snapshot()

    def _component_snapshot(self) -> Dict[tuple, List[tuple]]:
        """This (finished) analysis, as a reuse table for a later one.

        Maps the *ordered* tuple of a component's member signatures to a
        per-member ``(interval, context)`` list, where the context holds, per
        transfer-function input, ``None`` for intra-component inputs and the
        input's final interval otherwise.  The member order is Tarjan's
        canonical order — the order the solvers sweep — so a matching key
        pins the exact solve trajectory, not just the member set.
        """
        if self._reuse_table is None:
            table: Dict[tuple, List[tuple]] = {}
            for component in self._schedule:
                member_set = set(component.members)
                records: List[tuple] = []
                for value in component.members:
                    context = tuple(
                        None if operand in member_set
                        else self.range_of(operand)
                        for operand in _transfer_inputs(value))
                    records.append((self.ranges[value], context))
                key = tuple(value_signature(value)
                            for value in component.members)
                table[key] = records
            self._reuse_table = table
        return self._reuse_table

    def _try_reuse(self, component: SCCComponent,
                   reuse: Dict[tuple, List[tuple]]) -> bool:
        """Copy a component's previous intervals when a fresh solve is
        provably a replay.

        The solve of one component is a deterministic function of (a) the
        ordered member instruction texts and σ-annotations — they fix the
        transfer functions and every intra-component edge — and (b) the
        intervals of all external inputs, final by topological order.  When
        the ordered signature tuple matches a previous component and every
        external input's interval equals what that solve saw (``None``
        markers guarantee the member/non-member split of each input list
        matches too), the fresh trajectory would reproduce the previous
        intervals bound for bound, so they are copied and the component is
        skipped.  Solved-vs-reused composition stays bit-identical to a
        fresh solve by induction over the topological order.
        """
        key = tuple(value_signature(value) for value in component.members)
        records = reuse.get(key)
        if records is None:
            return False
        member_set = set(component.members)
        for value, (_interval, old_context) in zip(component.members, records):
            inputs = _transfer_inputs(value)
            if len(inputs) != len(old_context):
                return False
            for operand, old_input in zip(inputs, old_context):
                if operand in member_set:
                    if old_input is not None:
                        return False
                elif old_input != self.range_of(operand):
                    return False
        for value, (interval, _context) in zip(component.members, records):
            self.ranges[value] = interval
        return True

    def _loop_depth_of(self) -> Callable[[Value], int]:
        """Loop-nesting depth of a value, for the ``loopdepth`` policy ranks."""
        info = LoopInfo(self.function)
        depths: Dict[Value, int] = {}

        def depth_of(value: Value) -> int:
            cached = depths.get(value)
            if cached is None:
                block = getattr(value, "parent", None)
                cached = info.loop_depth(block) if block is not None else 0
                depths[value] = cached
            return cached

        return depth_of

    def _solve_acyclic(self, value: Value) -> None:
        self.ranges[value] = self._evaluate(value)

    def _solve_cyclic_dense(self, component: List[Value]) -> None:
        """Reference solver: full sweeps over the component until stable."""
        members = list(component)
        # Phase 1: plain iteration, then widening until stabilisation.
        for iteration in range(self.ITERATIONS_BEFORE_WIDENING):
            changed = False
            for value in members:
                new = self._evaluate(value)
                if new != self.ranges[value]:
                    self.ranges[value] = new
                    changed = True
            if not changed:
                return
        stable = False
        while not stable:
            stable = True
            for value in members:
                new = self._evaluate(value)
                widened = self.ranges[value].widen(new)
                if widened != self.ranges[value]:
                    self.ranges[value] = widened
                    if value not in self.widening_points:
                        self.widening_points.add(value)
                    self.statistics.widenings += 1
                    stable = False
        # Phase 2: narrowing.
        for _ in range(self.MAX_NARROWING_ITERATIONS):
            changed = False
            for value in members:
                new = self._evaluate(value)
                narrowed = self.ranges[value].narrow(new)
                if narrowed != self.ranges[value]:
                    self.ranges[value] = narrowed
                    self.statistics.narrowings += 1
                    changed = True
            if not changed:
                break

    def _harvest(self, worklist: SweepWorklist) -> None:
        """Fold a drained worklist's traffic counters into the statistics."""
        self.statistics.pops += worklist.pops
        self.statistics.coalesced_pushes += worklist.coalesced

    def _solve_cyclic_sparse(self, component: SCCComponent) -> None:
        """Change-driven solver: re-evaluate only users of changed values.

        The :class:`~repro.util.worklist.SweepWorklist` holds member indices
        keyed ``(sweep, rank)``; under the ``fifo`` policy ranks are member
        indices, which replays the dense solver's Gauss–Seidel sweeps: when
        the value at index ``i`` changes during sweep ``s``, a user at index
        ``j > i`` is re-evaluated later in the same sweep (it would have seen
        the update in the dense pass too) and a user at ``j <= i`` in sweep
        ``s + 1``.  Values whose operands did not change are skipped outright
        — their re-evaluation would reproduce the stored interval, so the
        dense sweep's visit is a no-op there.  The per-phase sweep limits are
        shared with the dense solver, which makes the two solvers' results
        bit-identical.
        """
        members = component.members
        users = component.users
        ranges = self.ranges
        statistics = self.statistics

        worklist = SweepWorklist(component.ranks("fifo"))
        # Phase 1a: bounded chaotic iteration.
        while True:
            sweep = worklist.next_sweep()
            if sweep is None or sweep >= self.ITERATIONS_BEFORE_WIDENING:
                break
            sweep, index = worklist.pop()
            value = members[index]
            new = self._evaluate(value)
            if new != ranges[value]:
                ranges[value] = new
                worklist.schedule(sweep, index, users[index])
        if not worklist:
            self._harvest(worklist)
            return
        # Phase 1b: widening until the change frontier drains.
        while worklist:
            sweep, index = worklist.pop()
            value = members[index]
            widened = ranges[value].widen(self._evaluate(value))
            if widened != ranges[value]:
                ranges[value] = widened
                if value not in self.widening_points:
                    self.widening_points.add(value)
                statistics.widenings += 1
                worklist.schedule(sweep, index, users[index])
        self._harvest(worklist)
        # Phase 2: narrowing.  Every member re-enters once — the transfer
        # changes from widening to narrowing, so "operands unchanged" no
        # longer implies a no-op — then only users of refined values follow.
        worklist = SweepWorklist(component.ranks("fifo"))
        while True:
            sweep = worklist.next_sweep()
            if sweep is None or sweep >= self.MAX_NARROWING_ITERATIONS:
                break
            sweep, index = worklist.pop()
            value = members[index]
            narrowed = ranges[value].narrow(self._evaluate(value))
            if narrowed != ranges[value]:
                ranges[value] = narrowed
                statistics.narrowings += 1
                worklist.schedule(sweep, index, users[index])
        self._harvest(worklist)

    # -- unboxed (IntervalTable) solver ------------------------------------------------
    #
    # Opcodes of the precompiled transfer functions.  Every member of a
    # cyclic component compiles to one tuple; operands are IntervalTable
    # handles (member slots first, then preloaded external slots), so the
    # inner loop touches only flat lists and local ints.  The opcode values
    # and the scalar kernel tables live in
    # :mod:`repro.rangeanalysis.kernels.opcodes` (shared with the batched
    # sweep executor); the class aliases keep the historical spelling.
    _OP_CONST = OP_CONST    # (op, lower, upper)                fixed interval
    _OP_ADD = OP_ADD        # (op, lhs, rhs)
    _OP_SUB = OP_SUB        # (op, lhs, rhs)
    _OP_MUL = OP_MUL        # (op, lhs, rhs)
    _OP_DIV = OP_DIV        # (op, lhs, rhs)
    _OP_REM = OP_REM        # (op, lhs, rhs)
    _OP_PHI = OP_PHI        # (op, (incoming, ...))
    _OP_COPY = OP_COPY      # (op, source)
    _OP_SIGMA = OP_SIGMA    # (op, source, other, refine_kernel)

    #: σ-refinement kernels by (already NEGATED/SWAPPED-resolved) predicate.
    _REFINE_KERNELS = REFINE_KERNELS

    #: binary opcode → scalar bounds kernel, built once at import time (it
    #: used to be reconstructed inside ``_solve_cyclic_table`` for every
    #: cyclic component).
    _TABLE_KERNELS = SCALAR_BINARY_KERNELS

    def _compile_component(self, members: List[Value],
                           index_of: Dict[Value, int],
                           table: IntervalTable) -> List[tuple]:
        """Precompile each member's transfer function to an opcode tuple.

        External operands (values of earlier components, constants, undef)
        are final by topological order, so they are preloaded into extra
        table slots once and addressed by handle like everything else.
        """
        extern: Dict[Value, int] = {}

        def handle_of(operand: Value) -> int:
            index = index_of.get(operand)
            if index is not None:
                return index
            handle = extern.get(operand)
            if handle is None:
                handle = table.alloc(self._operand_range(operand))
                extern[operand] = handle
            return handle

        binary_ops = {"add": self._OP_ADD, "sub": self._OP_SUB,
                      "mul": self._OP_MUL, "div": self._OP_DIV,
                      "rem": self._OP_REM}
        compiled: List[tuple] = []
        for value in members:
            if isinstance(value, BinaryOp) and value.op in binary_ops:
                compiled.append((binary_ops[value.op],
                                 handle_of(value.lhs), handle_of(value.rhs)))
                continue
            if isinstance(value, Phi):
                compiled.append((self._OP_PHI,
                                 tuple(handle_of(incoming)
                                       for incoming, _block in value.incoming())))
                continue
            if isinstance(value, Copy):
                compiled.append(self._compile_copy(value, handle_of))
                continue
            # Arguments, loads, geps, unknown binary ops: the evaluation does
            # not depend on the table state, so bake the interval in.
            fixed = self._evaluate_fixed(value)
            compiled.append((self._OP_CONST, fixed.lower, fixed.upper))
        return compiled

    def _compile_copy(self, copy: Copy, handle_of) -> tuple:
        """A σ-copy compiles to its refinement kernel, a plain copy to a move."""
        condition = getattr(copy, "sigma_condition", None)
        side = getattr(copy, "sigma_operand_side", None)
        if not isinstance(condition, ICmp) or side not in ("lhs", "rhs"):
            return (self._OP_COPY, handle_of(copy.source))
        predicate = condition.predicate
        if not getattr(copy, "sigma_on_true_branch", True):
            predicate = ICmp.NEGATED[predicate]
        if side == "rhs":
            predicate = ICmp.SWAPPED[predicate]
        other = condition.rhs if side == "lhs" else condition.lhs
        kernel = self._REFINE_KERNELS.get(predicate)
        if kernel is None:
            # _refine_sigma returns the source range untouched for predicates
            # it cannot exploit (e.g. "ne").
            return (self._OP_COPY, handle_of(copy.source))
        return (self._OP_SIGMA, handle_of(copy.source), handle_of(other), kernel)

    def _evaluate_fixed(self, value: Value) -> Interval:
        """The (state-independent) interval of a non-arithmetic member."""
        if isinstance(value, Argument):
            return self.argument_ranges.get(value, Interval.top())
        if isinstance(value, ConstantInt):
            return Interval.constant(value.value)
        return Interval.top()

    def _solve_cyclic_table(self, component: SCCComponent,
                            depth_of: Optional[Callable[[Value], int]]) -> None:
        """The sparse solver on unboxed bounds, under a ranked policy.

        Same three phases and sweep limits as :meth:`_solve_cyclic_sparse`,
        but the inner loop reads and writes an :class:`IntervalTable` through
        precompiled opcodes — no isinstance dispatch, no ``ranges`` dict
        probes, no Interval allocation or interning until the component is
        done and the final bounds are boxed back into ``self.ranges``.
        """
        members = component.members
        count = len(members)
        users = component.users
        index_of = {value: index for index, value in enumerate(members)}
        table = IntervalTable(count)
        compiled = self._compile_component(members, index_of, table)
        ranks = component.ranks(self.order, depth_of)
        statistics = self.statistics

        if self._kernel_backend is not None:
            self._solve_cyclic_batched(component, compiled, ranks, table)
            return

        lo = table.lo
        hi = table.hi

        op_const = OP_CONST
        op_phi = OP_PHI
        op_copy = OP_COPY
        op_sigma = OP_SIGMA
        kernels = self._TABLE_KERNELS
        evaluations = 0

        def evaluate(index: int) -> Tuple:
            nonlocal evaluations
            evaluations += 1
            code = compiled[index]
            op = code[0]
            if op == op_phi:
                rlo, rhi = POS_INF, NEG_INF
                for operand in code[1]:
                    rlo, rhi = bounds_join(rlo, rhi, lo[operand], hi[operand])
                return rlo, rhi
            if op == op_copy:
                source = code[1]
                return lo[source], hi[source]
            if op == op_sigma:
                _op, source, other, kernel = code
                return kernel(lo[source], hi[source], lo[other], hi[other])
            if op == op_const:
                return code[1], code[2]
            lhs = code[1]
            rhs = code[2]
            return kernels[op](lo[lhs], hi[lhs], lo[rhs], hi[rhs])

        def finish() -> None:
            statistics.evaluations += evaluations
            load = table.load
            for index, value in enumerate(members):
                self.ranges[value] = load(index)

        worklist = SweepWorklist(ranks)
        # Phase 1a: bounded chaotic iteration (see
        # RANKED_ITERATIONS_BEFORE_WIDENING for why the budget differs from
        # the replay solver's).
        while True:
            sweep = worklist.next_sweep()
            if sweep is None or sweep >= self.RANKED_ITERATIONS_BEFORE_WIDENING:
                break
            sweep, index = worklist.pop()
            new_lo, new_hi = evaluate(index)
            if new_lo != lo[index] or new_hi != hi[index]:
                lo[index] = new_lo
                hi[index] = new_hi
                worklist.schedule(sweep, index, users[index])
        if not worklist:
            self._harvest(worklist)
            finish()
            return
        # Phase 1b: widening until the change frontier drains.
        while worklist:
            sweep, index = worklist.pop()
            new_lo, new_hi = evaluate(index)
            wide_lo, wide_hi = bounds_widen(lo[index], hi[index], new_lo, new_hi)
            if wide_lo != lo[index] or wide_hi != hi[index]:
                lo[index] = wide_lo
                hi[index] = wide_hi
                self.widening_points.add(members[index])
                statistics.widenings += 1
                worklist.schedule(sweep, index, users[index])
        self._harvest(worklist)
        # Phase 2: narrowing (every member re-enters once, as in the boxed
        # sparse solver).
        worklist = SweepWorklist(ranks)
        while True:
            sweep = worklist.next_sweep()
            if sweep is None or sweep >= self.MAX_NARROWING_ITERATIONS:
                break
            sweep, index = worklist.pop()
            new_lo, new_hi = evaluate(index)
            narrow_lo, narrow_hi = bounds_narrow(lo[index], hi[index],
                                                 new_lo, new_hi)
            if narrow_lo != lo[index] or narrow_hi != hi[index]:
                lo[index] = narrow_lo
                hi[index] = narrow_hi
                statistics.narrowings += 1
                worklist.schedule(sweep, index, users[index])
        self._harvest(worklist)
        finish()

    def _solve_cyclic_batched(self, component: SCCComponent,
                              compiled: List[tuple], ranks,
                              table: IntervalTable) -> None:
        """Hand one compiled component to the batched sweep executor.

        The executor replays the ranked sparse trajectory with
        level-synchronous batched sweeps (see
        :class:`~repro.rangeanalysis.kernels.sweep.BatchedComponentSolver`);
        this wrapper only folds its counters back into the statistics and
        boxes the fixpoint, exactly like ``finish()`` on the scalar path.
        """
        members = component.members
        solver = BatchedComponentSolver(
            compiled, component.users, ranks, table, self._kernel_backend,
            self.RANKED_ITERATIONS_BEFORE_WIDENING,
            self.MAX_NARROWING_ITERATIONS)
        solver.solve()
        statistics = self.statistics
        statistics.evaluations += solver.evaluations
        statistics.widenings += solver.widenings
        statistics.narrowings += solver.narrowings
        statistics.pops += solver.pops
        statistics.coalesced_pushes += solver.coalesced
        statistics.batched_sweeps += solver.batched_sweeps
        statistics.batched_evaluations += solver.batched_evaluations
        for index in solver.widened:
            self.widening_points.add(members[index])
        load = table.load
        for index, value in enumerate(members):
            self.ranges[value] = load(index)

    # -- transfer functions -----------------------------------------------------------
    def _operand_range(self, value: Value) -> Interval:
        if isinstance(value, ConstantInt):
            return Interval.constant(value.value)
        if isinstance(value, Undef):
            return Interval.top()
        return self.ranges.get(value, Interval.top())

    def _evaluate(self, value: Value) -> Interval:
        self.statistics.evaluations += 1
        if isinstance(value, Argument):
            return self.argument_ranges.get(value, Interval.top())
        if isinstance(value, ConstantInt):
            return Interval.constant(value.value)
        if isinstance(value, BinaryOp):
            return self._evaluate_binary(value)
        if isinstance(value, Phi):
            result = Interval.bottom()
            for incoming, _block in value.incoming():
                result = result.join(self._operand_range(incoming))
            return result
        if isinstance(value, Copy):
            source_range = self._operand_range(value.source)
            return self._refine_sigma(value, source_range)
        if isinstance(value, (Load, GetElementPtr)):
            # Loads produce unknown integers; geps are pointers (ranges are
            # not meaningful but keeping top keeps the graph uniform).
            return Interval.top()
        return Interval.top()

    def _evaluate_binary(self, inst: BinaryOp) -> Interval:
        lhs = self._operand_range(inst.lhs)
        rhs = self._operand_range(inst.rhs)
        if inst.op == "add":
            return lhs.add(rhs)
        if inst.op == "sub":
            return lhs.sub(rhs)
        if inst.op == "mul":
            return lhs.mul(rhs)
        if inst.op == "div":
            return lhs.div(rhs)
        if inst.op == "rem":
            return lhs.rem(rhs)
        return Interval.top()

    def _refine_sigma(self, copy: Copy, source_range: Interval) -> Interval:
        """Refine the range of a σ-copy with the branch condition it encodes.

        The e-SSA transformation annotates σ-copies with the comparison that
        guards them (``sigma_condition``), which operand of the comparison the
        copy renames (``sigma_operand_side``: "lhs" or "rhs") and whether the
        copy lives on the true or the false branch (``sigma_on_true_branch``).
        """
        condition = getattr(copy, "sigma_condition", None)
        if not isinstance(condition, ICmp):
            return source_range
        side = getattr(copy, "sigma_operand_side", None)
        on_true = getattr(copy, "sigma_on_true_branch", True)
        lhs_range = self._operand_range(condition.lhs)
        rhs_range = self._operand_range(condition.rhs)
        predicate = condition.predicate
        if not on_true:
            predicate = ICmp.NEGATED[predicate]
        if side == "lhs":
            mine, other = source_range, rhs_range
        elif side == "rhs":
            mine, other = source_range, lhs_range
            predicate = ICmp.SWAPPED[predicate]
        else:
            return source_range
        if predicate == "slt":
            return mine.refine_less_than(other)
        if predicate == "sle":
            return mine.refine_less_equal(other)
        if predicate == "sgt":
            return mine.refine_greater_than(other)
        if predicate == "sge":
            return mine.refine_greater_equal(other)
        if predicate == "eq":
            return mine.refine_equal(other)
        return mine


class RangeAnalysisPass(AnalysisPass):
    """Pass-manager wrapper around :class:`RangeAnalysis`."""

    name = "range-analysis"

    def run_on_function(self, function: Function) -> RangeAnalysis:
        return RangeAnalysis(function)
