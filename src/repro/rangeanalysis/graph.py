"""Dependency graph over SSA values with SCC decomposition.

The range analysis follows the structure of Rodrigues et al.'s
implementation: build the graph of data dependences between SSA values,
decompose it into strongly connected components, and solve the components in
topological order.  Acyclic components are evaluated once; cyclic components
(loops) are iterated with widening, then refined with narrowing.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.ir.function import Function
from repro.ir.instructions import (
    BinaryOp,
    Copy,
    GetElementPtr,
    Instruction,
    Load,
    Phi,
)
from repro.ir.values import Argument, Value
from repro.util.scc import strongly_connected_components

__all__ = [
    "DependencyGraph",
    "SCCComponent",
    "SCCSchedule",
    "strongly_connected_components",
]


class DependencyGraph:
    """Data-dependence graph of the SSA values of one function.

    There is an edge from value ``a`` to value ``b`` when ``b`` is computed
    directly from ``a`` (``b`` uses ``a``).  Only values relevant to integer
    range propagation are tracked: arguments, arithmetic, φ-functions, copies
    and loads (loads are sources with unknown ranges).
    """

    def __init__(self, function: Function) -> None:
        self.function = function
        self.nodes: List[Value] = []
        self.successors: Dict[Value, List[Value]] = {}
        self.predecessors: Dict[Value, List[Value]] = {}
        self._build()

    def _is_tracked(self, value: Value) -> bool:
        if isinstance(value, Argument):
            return True
        if isinstance(value, (BinaryOp, Phi, Copy, Load, GetElementPtr)):
            return True
        return False

    def _add_node(self, value: Value) -> None:
        if value not in self.successors:
            self.nodes.append(value)
            self.successors[value] = []
            self.predecessors[value] = []

    def _add_edge(self, src: Value, dst: Value) -> None:
        self._add_node(src)
        self._add_node(dst)
        self.successors[src].append(dst)
        self.predecessors[dst].append(src)

    def _build(self) -> None:
        for argument in self.function.arguments:
            self._add_node(argument)
        for inst in self.function.instructions():
            if not self._is_tracked(inst):
                continue
            self._add_node(inst)
            for operand in inst.operands:
                if self._is_tracked(operand):
                    self._add_edge(operand, inst)
            # σ-copies are refined with the branch condition they encode, so
            # their abstract value also depends on the condition's operands;
            # without these edges the refinement could read stale ranges.
            condition = getattr(inst, "sigma_condition", None)
            if isinstance(inst, Copy) and condition is not None:
                for operand in condition.operands:
                    if self._is_tracked(operand):
                        self._add_edge(operand, inst)

    def components_in_topological_order(self) -> List[List[Value]]:
        """SCCs ordered so that dependencies come before dependants."""
        components = strongly_connected_components(self.nodes, self.successors)
        # Tarjan emits components in reverse topological order of the
        # condensation (every successor component is emitted before its
        # predecessors), so reversing puts defs before uses... but the edge
        # direction here is def -> use, which makes Tarjan's output already
        # usable once reversed.  Verify by checking edge directions.
        return list(reversed(components))

    def component_is_cyclic(self, component: List[Value]) -> bool:
        if len(component) > 1:
            return True
        node = component[0]
        return node in self.successors.get(node, [])

    def condense(self) -> "SCCSchedule":
        """The condensation of this graph as a solver-ready schedule."""
        return SCCSchedule(self)


class SCCComponent:
    """One strongly connected component, pre-sliced for the solvers.

    ``members`` is the component in its canonical (Tarjan) order — the
    order the dense reference sweeps visit; ``users`` holds, per member
    index, the sorted member indices of its intra-component dependants (the
    def-use slice the sparse solver schedules from); ``topo_rank`` is an
    intra-component reverse postorder from the canonical first member —
    the data-flow order the ``scc`` worklist policy pops in.  Acyclic
    singletons (``cyclic`` false) are solved in one pass with no widening.
    """

    __slots__ = ("members", "cyclic", "users", "topo_rank")

    def __init__(self, members: List[Value], cyclic: bool,
                 users: List[List[int]], topo_rank: List[int]) -> None:
        self.members = members
        self.cyclic = cyclic
        self.users = users
        self.topo_rank = topo_rank

    def __len__(self) -> int:
        return len(self.members)

    def ranks(self, order: str,
              depth_of: Optional[Callable[[Value], int]] = None) -> List[int]:
        """Per-member pop ranks under worklist policy ``order``.

        ``fifo`` ranks by member index (the dense-replay order), ``scc`` by
        the intra-component reverse postorder, and ``loopdepth`` by
        ``(loop depth, topological rank)`` flattened to a total order —
        outermost (shallowest) values first, data-flow order within a
        depth.  ``depth_of`` supplies the loop depth of a member;
        ``loopdepth`` degrades to ``scc`` without it.
        """
        if order == "fifo" or len(self.members) <= 1:
            return list(range(len(self.members)))
        if order == "scc" or depth_of is None:
            return list(self.topo_rank)
        if order == "loopdepth":
            count = len(self.members)
            keyed = sorted(range(count),
                           key=lambda i: (depth_of(self.members[i]),
                                          self.topo_rank[i]))
            ranks = [0] * count
            for rank, index in enumerate(keyed):
                ranks[index] = rank
            return ranks
        raise ValueError("unknown worklist order {!r}".format(order))

    def __repr__(self) -> str:
        return "<SCCComponent size={} cyclic={}>".format(
            len(self.members), self.cyclic)


class SCCSchedule:
    """Topological SCC schedule of a :class:`DependencyGraph`.

    The condensation of the def-use graph: components appear with every
    dependency before its dependants, each carrying its member slice, its
    intra-component def-use index lists and its policy rank orders.  The
    solvers walk the schedule once; widening/narrowing only ever runs
    inside components flagged ``cyclic``.
    """

    def __init__(self, graph: DependencyGraph) -> None:
        self.graph = graph
        self.components: List[SCCComponent] = []
        for members in graph.components_in_topological_order():
            cyclic = graph.component_is_cyclic(members)
            if len(members) == 1:
                # Fast path for the overwhelmingly common case: a singleton
                # needs no slicing (a self-loop is its own only user).
                self.components.append(SCCComponent(
                    members, cyclic, [[0] if cyclic else []], [0]))
                continue
            index_of = {value: index for index, value in enumerate(members)}
            users: List[List[int]] = []
            entries: List[int] = []
            for index, value in enumerate(members):
                users.append(sorted({index_of[user]
                                     for user in graph.successors.get(value, [])
                                     if user in index_of}))
                if any(pred not in index_of
                       for pred in graph.predecessors.get(value, [])):
                    entries.append(index)
            # Root preference: the loop-header φs (they join the cycle's
            # external seed value — often an untracked constant, hence not an
            # "entry" by predecessor inspection), then members fed from
            # outside the component, then anything.
            phis = [index for index, value in enumerate(members)
                    if isinstance(value, Phi)]
            topo_rank = self._reverse_postorder(members, users, phis + entries)
            self.components.append(
                SCCComponent(members, cyclic, users, topo_rank))

    @staticmethod
    def _reverse_postorder(members: List[Value], users: List[List[int]],
                           entries: List[int]) -> List[int]:
        """Intra-component reverse postorder rooted at a component *entry*.

        An entry is a member fed from outside the component — the loop-header
        φ (or the σ reading the loop bound) in practice.  Rooting there makes
        the order follow the data flow around the cycle with a single
        back-edge wrap, so a ranked Gauss–Seidel sweep propagates one full
        round per sweep instead of re-visiting rotated members mid-sweep.  A
        strongly connected component is reachable in full from any member, so
        one DFS covers it; components with no external input fall back to the
        canonical first member.
        """
        count = len(members)
        if count <= 1:
            return [0] * count
        postorder: List[int] = []
        visited = [False] * count
        roots = entries + [index for index in range(count)
                           if index not in entries]
        for root in roots:
            if visited[root]:
                continue
            visited[root] = True
            stack = [(root, iter(users[root]))]
            while stack:
                node, successors = stack[-1]
                advanced = False
                for succ in successors:
                    if not visited[succ]:
                        visited[succ] = True
                        stack.append((succ, iter(users[succ])))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    postorder.append(node)
        ranks = [0] * count
        for rank, index in enumerate(reversed(postorder)):
            ranks[index] = rank
        return ranks

    def __len__(self) -> int:
        return len(self.components)

    def __iter__(self):
        return iter(self.components)
