"""Dependency graph over SSA values with SCC decomposition.

The range analysis follows the structure of Rodrigues et al.'s
implementation: build the graph of data dependences between SSA values,
decompose it into strongly connected components, and solve the components in
topological order.  Acyclic components are evaluated once; cyclic components
(loops) are iterated with widening, then refined with narrowing.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence, Set

from repro.ir.function import Function
from repro.ir.instructions import (
    BinaryOp,
    Copy,
    GetElementPtr,
    Instruction,
    Load,
    Phi,
)
from repro.ir.values import Argument, Value


def strongly_connected_components(nodes: Sequence[Hashable],
                                  successors: Dict[Hashable, List[Hashable]]) -> List[List[Hashable]]:
    """Tarjan's algorithm, iterative to avoid recursion limits.

    Returns the components in reverse topological order (a component appears
    before the components it depends on are *not* guaranteed); callers that
    need topological order should reverse the result, which this function's
    users do.  Components are lists of nodes.
    """
    index_counter = [0]
    indices: Dict[Hashable, int] = {}
    lowlinks: Dict[Hashable, int] = {}
    on_stack: Set[Hashable] = set()
    stack: List[Hashable] = []
    components: List[List[Hashable]] = []

    for root in nodes:
        if root in indices:
            continue
        work = [(root, iter(successors.get(root, [])))]
        indices[root] = lowlinks[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, succ_iter = work[-1]
            advanced = False
            for succ in succ_iter:
                if succ not in indices:
                    indices[succ] = lowlinks[succ] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(successors.get(succ, []))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlinks[node] = min(lowlinks[node], indices[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indices[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member is node:
                        break
                components.append(component)
    return components


class DependencyGraph:
    """Data-dependence graph of the SSA values of one function.

    There is an edge from value ``a`` to value ``b`` when ``b`` is computed
    directly from ``a`` (``b`` uses ``a``).  Only values relevant to integer
    range propagation are tracked: arguments, arithmetic, φ-functions, copies
    and loads (loads are sources with unknown ranges).
    """

    def __init__(self, function: Function) -> None:
        self.function = function
        self.nodes: List[Value] = []
        self.successors: Dict[Value, List[Value]] = {}
        self.predecessors: Dict[Value, List[Value]] = {}
        self._build()

    def _is_tracked(self, value: Value) -> bool:
        if isinstance(value, Argument):
            return True
        if isinstance(value, (BinaryOp, Phi, Copy, Load, GetElementPtr)):
            return True
        return False

    def _add_node(self, value: Value) -> None:
        if value not in self.successors:
            self.nodes.append(value)
            self.successors[value] = []
            self.predecessors[value] = []

    def _add_edge(self, src: Value, dst: Value) -> None:
        self._add_node(src)
        self._add_node(dst)
        self.successors[src].append(dst)
        self.predecessors[dst].append(src)

    def _build(self) -> None:
        for argument in self.function.arguments:
            self._add_node(argument)
        for inst in self.function.instructions():
            if not self._is_tracked(inst):
                continue
            self._add_node(inst)
            for operand in inst.operands:
                if self._is_tracked(operand):
                    self._add_edge(operand, inst)
            # σ-copies are refined with the branch condition they encode, so
            # their abstract value also depends on the condition's operands;
            # without these edges the refinement could read stale ranges.
            condition = getattr(inst, "sigma_condition", None)
            if isinstance(inst, Copy) and condition is not None:
                for operand in condition.operands:
                    if self._is_tracked(operand):
                        self._add_edge(operand, inst)

    def components_in_topological_order(self) -> List[List[Value]]:
        """SCCs ordered so that dependencies come before dependants."""
        components = strongly_connected_components(self.nodes, self.successors)
        # Tarjan emits components in reverse topological order of the
        # condensation (every successor component is emitted before its
        # predecessors), so reversing puts defs before uses... but the edge
        # direction here is def -> use, which makes Tarjan's output already
        # usable once reversed.  Verify by checking edge directions.
        return list(reversed(components))

    def component_is_cyclic(self, component: List[Value]) -> bool:
        if len(component) > 1:
            return True
        node = component[0]
        return node in self.successors.get(node, [])
