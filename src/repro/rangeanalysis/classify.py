"""Classification of arithmetic into growths and decrements.

Section 3.2 of the paper ("The Support of Range Analysis on Integer
Intervals") explains how the less-than analysis decides what an arithmetic
instruction means: given ``x1 = x2 + x3``, the instruction *grows* ``x2``
when ``x3`` is strictly positive, *shrinks* it when ``x3`` is strictly
negative, and carries no information otherwise.  The same classification
drives both the e-SSA live-range splitting (shrinking instructions get a
parallel copy) and the constraint generation.

Pointer arithmetic (``gep``) is classified the same way through its index.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from repro.ir.instructions import BinaryOp, GetElementPtr, Instruction
from repro.ir.values import ConstantInt, Value
from repro.rangeanalysis.analysis import RangeAnalysis


class AdditiveFact(NamedTuple):
    """One ordering fact derived from an additive instruction.

    ``base`` is the operand being offset; ``kind`` is ``"grow"`` when the
    result is strictly greater than ``base`` and ``"shrink"`` when it is
    strictly smaller.
    """

    base: Value
    kind: str  # "grow" | "shrink"


def classify_additive(inst: Instruction, ranges: RangeAnalysis) -> List[AdditiveFact]:
    """Return the ordering facts established by ``inst`` (possibly empty).

    * ``x1 = x2 + x3`` with ``x3 > 0`` yields ``grow(x2)``; with ``x2 > 0``
      it also yields ``grow(x3)``; strictly negative operands yield
      ``shrink`` of the other operand.
    * ``x1 = x2 - x3`` with ``x3 > 0`` yields ``shrink(x2)``; with ``x3 < 0``
      it yields ``grow(x2)``.
    * ``p1 = gep p, i`` behaves like ``p1 = p + i``.
    * anything else yields no facts (the paper's "unknown instruction").
    """
    if isinstance(inst, GetElementPtr):
        index_range = ranges.range_of(inst.index)
        if index_range.is_strictly_positive():
            return [AdditiveFact(inst.base, "grow")]
        if index_range.is_strictly_negative():
            return [AdditiveFact(inst.base, "shrink")]
        return []
    if not isinstance(inst, BinaryOp):
        return []
    facts: List[AdditiveFact] = []
    if inst.op == "add":
        lhs_range = ranges.range_of(inst.lhs)
        rhs_range = ranges.range_of(inst.rhs)
        if rhs_range.is_strictly_positive():
            facts.append(AdditiveFact(inst.lhs, "grow"))
        elif rhs_range.is_strictly_negative():
            facts.append(AdditiveFact(inst.lhs, "shrink"))
        if lhs_range.is_strictly_positive():
            facts.append(AdditiveFact(inst.rhs, "grow"))
        elif lhs_range.is_strictly_negative():
            facts.append(AdditiveFact(inst.rhs, "shrink"))
        return facts
    if inst.op == "sub":
        rhs_range = ranges.range_of(inst.rhs)
        if rhs_range.is_strictly_positive():
            facts.append(AdditiveFact(inst.lhs, "shrink"))
        elif rhs_range.is_strictly_negative():
            facts.append(AdditiveFact(inst.lhs, "grow"))
        return facts
    return []


def shrink_base(inst: Instruction, ranges: RangeAnalysis) -> Optional[Value]:
    """The operand whose live range must be split because ``inst`` shrinks it."""
    for fact in classify_additive(inst, ranges):
        if fact.kind == "shrink":
            return fact.base
    return None
