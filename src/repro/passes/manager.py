"""Pass manager with per-function analysis caching."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.ir.function import Function
from repro.ir.module import Module
from repro.passes.pass_base import AnalysisPass, FunctionPass, ModulePass, Pass, TransformPass


class PassManager:
    """Schedules passes over a module and caches analysis results.

    Usage::

        pm = PassManager(module)
        pm.run(EssaConstructionPass())
        lt = pm.get_analysis(LessThanAnalysisPass(), function)
    """

    def __init__(self, module: Module) -> None:
        self.module = module
        self._analysis_cache: Dict[Tuple[str, Function], Any] = {}
        self.history: List[str] = []

    # -- running passes -----------------------------------------------------------
    def run(self, pass_obj: Pass) -> Dict[Function, Any]:
        """Run ``pass_obj`` over the whole module.

        Returns a mapping from function to the pass result (for function
        passes) or ``{None: result}``-style single entry for module passes.
        """
        self.history.append(pass_obj.name)
        if isinstance(pass_obj, ModulePass):
            result = pass_obj.run_on_module(self.module)
            return {None: result}  # type: ignore[dict-item]
        if isinstance(pass_obj, FunctionPass):
            results: Dict[Function, Any] = {}
            for function in self.module.functions:
                if function.is_declaration():
                    continue
                results[function] = self._run_on_function(pass_obj, function)
            return results
        raise TypeError("not a pass: {!r}".format(pass_obj))

    def _run_on_function(self, pass_obj: FunctionPass, function: Function) -> Any:
        if isinstance(pass_obj, AnalysisPass):
            key = (pass_obj.name, function)
            if key not in self._analysis_cache:
                self._analysis_cache[key] = pass_obj.run_on_function(function)
            return self._analysis_cache[key]
        result = pass_obj.run_on_function(function)
        if isinstance(pass_obj, TransformPass) and result:
            self.invalidate(function)
        return result

    # -- analysis access -------------------------------------------------------------
    def get_analysis(self, pass_obj: AnalysisPass, function: Function) -> Any:
        """Return the (cached) result of ``pass_obj`` on ``function``."""
        return self._run_on_function(pass_obj, function)

    def cached(self, pass_name: str, function: Function) -> Optional[Any]:
        return self._analysis_cache.get((pass_name, function))

    def invalidate(self, function: Optional[Function] = None) -> None:
        """Drop cached analyses for ``function`` (or all, when None)."""
        if function is None:
            self._analysis_cache.clear()
            return
        stale = [key for key in self._analysis_cache if key[1] is function]
        for key in stale:
            del self._analysis_cache[key]
