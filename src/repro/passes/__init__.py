"""A small pass-manager framework.

The original artifact chains LLVM passes (``vSSA``, ``RangeAnalysis``,
``sraa``, ``DepGraph``).  This package provides the equivalent plumbing:
passes declare a ``name``, run over functions or modules, and analysis
results are cached per function until a transformation invalidates them.
"""

from repro.passes.pass_base import AnalysisPass, FunctionPass, ModulePass, TransformPass
from repro.passes.manager import PassManager
from repro.passes.analysis_cache import (
    CacheStatistics,
    FunctionAnalysisCache,
    RefreshResult,
)

__all__ = [
    "AnalysisPass",
    "FunctionPass",
    "ModulePass",
    "TransformPass",
    "PassManager",
    "CacheStatistics",
    "FunctionAnalysisCache",
    "RefreshResult",
]
