"""Memoization of per-function analysis state across alias queries.

The paper's evaluation (``aa-eval``) asks O(n²) queries per function, and
every configuration of the harness (``LT``, ``BA + LT``, ``BA + CF`` ...)
re-runs the same sub-analyses on the same, unchanged functions: two
:class:`~repro.rangeanalysis.analysis.RangeAnalysis` passes per
:class:`~repro.core.lessthan.analysis.LessThanAnalysis`, one e-SSA
conversion, one constraint solve.  :class:`FunctionAnalysisCache` memoizes
that invariant state so no analysis is ever computed twice on an unchanged
function:

* e-SSA conversion status (with the pre-conversion range analysis folded in),
* the post-conversion :class:`RangeAnalysis` per function,
* :class:`LessThanAnalysis` per function and per module (keyed on the
  interprocedural flag),
* the :class:`~repro.core.disambiguation.PointerDisambiguator` per analysis,
  so its per-value tables survive across evaluation rounds.

Invalidation is explicit: after mutating a function, call
:meth:`FunctionAnalysisCache.invalidate` with it (module-level entries built
on top of it are dropped too).  The cache deliberately does *not* try to
detect mutations — the IR has no version counter — so the contract is the
same as LLVM's analysis manager: whoever transforms the IR invalidates.

``LessThanAnalysis``, ``StrictInequalityAliasAnalysis``, the PDG builder and
the benchmark drivers all accept a cache instance; wiring one object through
a whole evaluation makes repeated module-level ``aa-eval`` hit precomputed
state everywhere.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.ir.function import Function
from repro.ir.module import Module

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.essa.transform import EssaInfo
    from repro.rangeanalysis.analysis import RangeAnalysis

# The analysis modules themselves import ``repro.passes.pass_base`` (whose
# package __init__ imports this module), so they are imported lazily inside
# the methods below to keep the import graph acyclic.


class CacheStatistics:
    """Hit/miss counters, for tests, benchmarks and ``repro stats``.

    ``hits``/``misses`` aggregate every lookup; :meth:`record` additionally
    keeps per-kind counters (``essa``, ``ranges``, ``lessthan``,
    ``evaluation``, ...) so the stats surface can show *which* table a cold
    run is missing in.
    """

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.by_kind: Dict[str, Dict[str, int]] = {}

    def record(self, kind: str, hit: bool) -> None:
        """Count one lookup of ``kind``, updating the aggregates too."""
        counters = self.by_kind.setdefault(kind, {"hits": 0, "misses": 0})
        if hit:
            self.hits += 1
            counters["hits"] += 1
        else:
            self.misses += 1
            counters["misses"] += 1

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "hit_ratio": self.hit_ratio,
        }

    def __repr__(self) -> str:
        return "<CacheStatistics hits={} misses={} invalidations={}>".format(
            self.hits, self.misses, self.invalidations)


class FunctionAnalysisCache:
    """Memoizes range analysis, e-SSA status and less-than analysis.

    All tables key on object identity (functions and modules hash by
    identity), matching the rest of the code base.
    """

    def __init__(self) -> None:
        self._essa: Dict[Function, EssaInfo] = {}
        self._ranges: Dict[Function, RangeAnalysis] = {}
        self._function_lessthan: Dict[Function, "LessThanAnalysis"] = {}
        self._module_lessthan: Dict[Tuple[Module, bool], "LessThanAnalysis"] = {}
        self._function_disambiguators: Dict[Function, "PointerDisambiguator"] = {}
        self._module_disambiguators: Dict[Tuple[Module, bool], "PointerDisambiguator"] = {}
        self._evaluations: Dict[Tuple[Function, str], object] = {}
        self.statistics = CacheStatistics()

    # -- e-SSA conversion ---------------------------------------------------------
    def ensure_essa(self, function: Function) -> EssaInfo:
        """Convert ``function`` to e-SSA form once; later calls are hits.

        The conversion mutates the IR, so analyses cached for the
        pre-conversion form are dropped here — this is the one mutation the
        cache itself performs and can therefore track.
        """
        from repro.essa.transform import EssaInfo, convert_to_essa
        from repro.rangeanalysis.analysis import RangeAnalysis

        info = self._essa.get(function)
        if info is not None:
            self.statistics.record("essa", hit=True)
            return info
        self.statistics.record("essa", hit=False)
        if getattr(function, "essa_form", False):
            # Converted outside the cache: nothing to do, record an empty
            # summary so later calls hit.
            info = EssaInfo()
        else:
            pre_ranges = RangeAnalysis(function)
            info = convert_to_essa(function, pre_ranges)
            self._drop_function_entries(function)
        self._essa[function] = info
        return info

    # -- range analysis ------------------------------------------------------------
    def ranges(self, function: Function) -> RangeAnalysis:
        """The (memoized) range analysis of ``function`` in its current form."""
        from repro.rangeanalysis.analysis import RangeAnalysis

        cached = self._ranges.get(function)
        if cached is not None:
            self.statistics.record("ranges", hit=True)
            return cached
        self.statistics.record("ranges", hit=False)
        analysis = RangeAnalysis(function)
        self._ranges[function] = analysis
        return analysis

    # -- less-than analysis -----------------------------------------------------------
    def lessthan(self, function: Function) -> "LessThanAnalysis":
        """The (memoized) per-function less-than analysis (builds e-SSA)."""
        from repro.core.lessthan.analysis import LessThanAnalysis

        cached = self._function_lessthan.get(function)
        if cached is not None:
            self.statistics.record("lessthan", hit=True)
            return cached
        self.statistics.record("lessthan", hit=False)
        analysis = LessThanAnalysis(function, build_essa=True, cache=self)
        self._function_lessthan[function] = analysis
        return analysis

    def module_lessthan(self, module: Module,
                        interprocedural: bool = True) -> "LessThanAnalysis":
        """The (memoized) whole-module less-than analysis."""
        from repro.core.lessthan.analysis import LessThanAnalysis

        key = (module, interprocedural)
        cached = self._module_lessthan.get(key)
        if cached is not None:
            self.statistics.record("lessthan", hit=True)
            return cached
        self.statistics.record("lessthan", hit=False)
        analysis = LessThanAnalysis(module, build_essa=True,
                                    interprocedural=interprocedural, cache=self)
        self._module_lessthan[key] = analysis
        return analysis

    # -- disambiguators ------------------------------------------------------------
    def function_disambiguator(self, function: Function) -> "PointerDisambiguator":
        """A shared, table-backed disambiguator over :meth:`lessthan`."""
        from repro.core.disambiguation import PointerDisambiguator

        cached = self._function_disambiguators.get(function)
        if cached is not None:
            self.statistics.record("disambiguator", hit=True)
            return cached
        self.statistics.record("disambiguator", hit=False)
        analysis = self.lessthan(function)
        disambiguator = PointerDisambiguator(analysis)
        self._function_disambiguators[function] = disambiguator
        return disambiguator

    def module_disambiguator(self, module: Module,
                             interprocedural: bool = True) -> "PointerDisambiguator":
        """A shared, table-backed disambiguator over :meth:`module_lessthan`."""
        from repro.core.disambiguation import PointerDisambiguator

        key = (module, interprocedural)
        cached = self._module_disambiguators.get(key)
        if cached is not None:
            self.statistics.record("disambiguator", hit=True)
            return cached
        self.statistics.record("disambiguator", hit=False)
        analysis = self.module_lessthan(module, interprocedural)
        disambiguator = PointerDisambiguator(analysis)
        self._module_disambiguators[key] = disambiguator
        return disambiguator

    # -- evaluation payloads -------------------------------------------------------
    def get_evaluation(self, function: Function, label: str) -> Optional[object]:
        """The memoized evaluation payload of ``(function, label)``, if any.

        Payloads are opaque, picklable objects (the execution engine stores
        verdict counters plus the per-pair verdict stream).  They live beside
        the live analysis objects so that a payload warm-loaded from a
        persistent :class:`~repro.engine.store.AnalysisStore` short-circuits
        the whole analysis pipeline: a hit here means neither range analysis,
        e-SSA conversion, the constraint solve nor the O(n²) query loop runs
        for that function.
        """
        cached = self._evaluations.get((function, label))
        self.statistics.record("evaluation", hit=cached is not None)
        return cached

    def put_evaluation(self, function: Function, label: str, payload: object) -> None:
        """Record the evaluation payload of ``(function, label)``.

        Called both by the engine after computing a function fresh and when
        warm-loading persisted results from an analysis store.
        """
        self._evaluations[(function, label)] = payload

    def evaluation_count(self) -> int:
        return len(self._evaluations)

    # -- invalidation -----------------------------------------------------------------
    def _drop_function_entries(self, function: Function) -> None:
        # Live analysis objects only: evaluation payloads are content-addressed
        # by the engine against the *pre-conversion* IR and describe the result
        # of the full pipeline, so the cache's own e-SSA conversion (which
        # routes through here) must not drop them.  Explicit `invalidate`
        # (an outside IR mutation) drops them below.
        self._ranges.pop(function, None)
        self._function_lessthan.pop(function, None)
        self._function_disambiguators.pop(function, None)

    def _drop_function_evaluations(self, function: Function) -> None:
        for key in [k for k in self._evaluations if k[0] is function]:
            del self._evaluations[key]

    def invalidate(self, function: Optional[Function] = None) -> None:
        """Drop cached state for ``function`` (or everything, when ``None``).

        Module-level analyses covering the function's module are dropped too,
        since their constraints embed the function's instructions.
        """
        self.statistics.invalidations += 1
        if function is None:
            self._essa.clear()
            self._ranges.clear()
            self._function_lessthan.clear()
            self._module_lessthan.clear()
            self._function_disambiguators.clear()
            self._module_disambiguators.clear()
            self._evaluations.clear()
            return
        self._essa.pop(function, None)
        self._drop_function_entries(function)
        self._drop_function_evaluations(function)
        module = function.parent
        if module is not None:
            for key in [k for k in self._module_lessthan if k[0] is module]:
                del self._module_lessthan[key]
            for key in [k for k in self._module_disambiguators if k[0] is module]:
                del self._module_disambiguators[key]

    # -- introspection ---------------------------------------------------------------
    def cached_functions(self) -> int:
        return len(self._ranges)

    def __repr__(self) -> str:
        return "<FunctionAnalysisCache functions={} {}>".format(
            self.cached_functions(), self.statistics)
