"""Memoization of per-function analysis state across alias queries.

The paper's evaluation (``aa-eval``) asks O(n²) queries per function, and
every configuration of the harness (``LT``, ``BA + LT``, ``BA + CF`` ...)
re-runs the same sub-analyses on the same, unchanged functions: two
:class:`~repro.rangeanalysis.analysis.RangeAnalysis` passes per
:class:`~repro.core.lessthan.analysis.LessThanAnalysis`, one e-SSA
conversion, one constraint solve.  :class:`FunctionAnalysisCache` memoizes
that invariant state so no analysis is ever computed twice on an unchanged
function:

* e-SSA conversion status (with the pre-conversion range analysis folded in),
* the post-conversion :class:`RangeAnalysis` per function,
* :class:`LessThanAnalysis` per function and per module (keyed on the
  interprocedural flag),
* the :class:`~repro.core.disambiguation.PointerDisambiguator` per analysis,
  so its per-value tables survive across evaluation rounds.

Invalidation is explicit: after mutating a function, call
:meth:`FunctionAnalysisCache.invalidate` with it (module-level entries built
on top of it are dropped too).  The cache deliberately does *not* try to
detect mutations — the IR has no version counter — so the contract is the
same as LLVM's analysis manager: whoever transforms the IR invalidates.

``LessThanAnalysis``, ``StrictInequalityAliasAnalysis``, the PDG builder and
the benchmark drivers all accept a cache instance; wiring one object through
a whole evaluation makes repeated module-level ``aa-eval`` hit precomputed
state everywhere.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.ir.function import Function
from repro.ir.module import Module

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.essa.transform import EssaInfo
    from repro.ir.callgraph import ModuleFingerprints
    from repro.rangeanalysis.analysis import RangeAnalysis

# The analysis modules themselves import ``repro.passes.pass_base`` (whose
# package __init__ imports this module), so they are imported lazily inside
# the methods below to keep the import graph acyclic.


class CacheStatistics:
    """Hit/miss counters, for tests, benchmarks and ``repro stats``.

    ``hits``/``misses`` aggregate every lookup; :meth:`record` additionally
    keeps per-kind counters (``essa``, ``ranges``, ``lessthan``,
    ``evaluation``, ...) so the stats surface can show *which* table a cold
    run is missing in.
    """

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.by_kind: Dict[str, Dict[str, int]] = {}

    def record(self, kind: str, hit: bool) -> None:
        """Count one lookup of ``kind``, updating the aggregates too."""
        counters = self.by_kind.setdefault(kind, {"hits": 0, "misses": 0})
        if hit:
            self.hits += 1
            counters["hits"] += 1
        else:
            self.misses += 1
            counters["misses"] += 1

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "hit_ratio": self.hit_ratio,
        }

    def __repr__(self) -> str:
        return "<CacheStatistics hits={} misses={} invalidations={}>".format(
            self.hits, self.misses, self.invalidations)


def _module_content_hash(module: Module) -> str:
    """The module's content hash under the engine's addressing convention
    (printed IR minus the name line, so renamed-but-identical modules match)."""
    from repro.engine.store import text_hash
    from repro.engine.worker import module_content_text

    return text_hash(module_content_text(module))


class _ModuleSnapshot:
    """One refresh baseline: the fingerprints and function objects of one
    compile of a module (keyed by module name across recompiles)."""

    __slots__ = ("prints", "functions", "module_hash")

    def __init__(self, prints: "ModuleFingerprints",
                 functions: Dict[str, Function], module_hash: str) -> None:
        self.prints = prints
        self.functions = functions
        self.module_hash = module_hash


class RefreshResult:
    """What :meth:`FunctionAnalysisCache.refresh` decided about one edit."""

    __slots__ = ("dirty", "clean", "removed", "migrated")

    def __init__(self, dirty: List[str], clean: List[str],
                 removed: List[str], migrated: int) -> None:
        #: function names whose own IR changed (or that are new) — their
        #: cached state was dropped and must be recomputed.
        self.dirty = dirty
        #: function names whose own IR is unchanged.
        self.clean = clean
        #: function names present in the previous snapshot only.
        self.removed = removed
        #: evaluation payloads carried over to the new function objects.
        self.migrated = migrated

    def __repr__(self) -> str:
        return "<RefreshResult dirty={} clean={} removed={} migrated={}>".format(
            len(self.dirty), len(self.clean), len(self.removed), self.migrated)


class FunctionAnalysisCache:
    """Memoizes range analysis, e-SSA status and less-than analysis.

    All tables key on object identity (functions and modules hash by
    identity), matching the rest of the code base.  :meth:`refresh` bridges
    identities across recompiles: it diffs call-graph-aware fingerprints
    (:mod:`repro.ir.callgraph`) against the previous snapshot of the same
    module name and migrates still-valid state onto the new objects.
    """

    def __init__(self) -> None:
        self._essa: Dict[Function, EssaInfo] = {}
        self._ranges: Dict[Function, RangeAnalysis] = {}
        self._function_lessthan: Dict[Function, "LessThanAnalysis"] = {}
        self._module_lessthan: Dict[Tuple[Module, bool], "LessThanAnalysis"] = {}
        self._function_disambiguators: Dict[Function, "PointerDisambiguator"] = {}
        self._module_disambiguators: Dict[Tuple[Module, bool], "PointerDisambiguator"] = {}
        self._evaluations: Dict[Tuple[Function, str], object] = {}
        #: per-function label index over ``_evaluations`` so invalidation
        #: touches only that function's entries instead of scanning them all.
        self._function_evaluations: Dict[Function, Set[str]] = {}
        #: previous-compile range analyses, consumed by :meth:`ranges` to run
        #: an incremental re-solve instead of a cold one (see ``refresh``).
        self._range_hints: Dict[Function, RangeAnalysis] = {}
        #: the *pre-conversion* range analyses that drove each e-SSA
        #: conversion, kept as next-generation seeds, plus the hints
        #: :meth:`ensure_essa` consumes (the pre/post forms have different
        #: value signatures, so the two hint families never mix).
        self._pre_ranges: Dict[Function, RangeAnalysis] = {}
        self._pre_range_hints: Dict[Function, RangeAnalysis] = {}
        #: refresh baselines by module name.
        self._snapshots: Dict[str, _ModuleSnapshot] = {}
        self.statistics = CacheStatistics()

    # -- e-SSA conversion ---------------------------------------------------------
    def ensure_essa(self, function: Function) -> EssaInfo:
        """Convert ``function`` to e-SSA form once; later calls are hits.

        The conversion mutates the IR, so analyses cached for the
        pre-conversion form are dropped here — this is the one mutation the
        cache itself performs and can therefore track.
        """
        from repro.essa.transform import EssaInfo, convert_to_essa
        from repro.rangeanalysis.analysis import RangeAnalysis

        info = self._essa.get(function)
        if info is not None:
            self.statistics.record("essa", hit=True)
            return info
        self.statistics.record("essa", hit=False)
        if getattr(function, "essa_form", False):
            # Converted outside the cache: nothing to do, record an empty
            # summary so later calls hit.
            info = EssaInfo()
        else:
            pre_ranges = RangeAnalysis(
                function, previous=self._pre_range_hints.pop(function, None))
            self._pre_ranges[function] = pre_ranges
            # Freeze the reuse signatures before the conversion rewrites the
            # IR in place, so the next generation's pre-conversion solve can
            # still match them.
            pre_ranges.snapshot()
            info = convert_to_essa(function, pre_ranges)
            self._drop_function_entries(function)
        self._essa[function] = info
        return info

    # -- range analysis ------------------------------------------------------------
    def ranges(self, function: Function) -> RangeAnalysis:
        """The (memoized) range analysis of ``function`` in its current form."""
        from repro.rangeanalysis.analysis import RangeAnalysis

        cached = self._ranges.get(function)
        if cached is not None:
            self.statistics.record("ranges", hit=True)
            return cached
        self.statistics.record("ranges", hit=False)
        # A hint is the previous compile's finished analysis of (an edit of)
        # this function: the solver copies every component whose structure
        # and external inputs are unchanged, bit-identical to a cold solve.
        analysis = RangeAnalysis(function,
                                 previous=self._range_hints.pop(function, None))
        self._ranges[function] = analysis
        return analysis

    def hint_previous_ranges(self, function: Function,
                             previous: "RangeAnalysis") -> None:
        """Seed the next :meth:`ranges` miss on ``function`` with a previous
        compile's analysis for an incremental re-solve."""
        self._range_hints[function] = previous

    # -- less-than analysis -----------------------------------------------------------
    def lessthan(self, function: Function) -> "LessThanAnalysis":
        """The (memoized) per-function less-than analysis (builds e-SSA)."""
        from repro.core.lessthan.analysis import LessThanAnalysis

        cached = self._function_lessthan.get(function)
        if cached is not None:
            self.statistics.record("lessthan", hit=True)
            return cached
        self.statistics.record("lessthan", hit=False)
        analysis = LessThanAnalysis(function, build_essa=True, cache=self)
        self._function_lessthan[function] = analysis
        return analysis

    def module_lessthan(self, module: Module,
                        interprocedural: bool = True) -> "LessThanAnalysis":
        """The (memoized) whole-module less-than analysis."""
        from repro.core.lessthan.analysis import LessThanAnalysis

        key = (module, interprocedural)
        cached = self._module_lessthan.get(key)
        if cached is not None:
            self.statistics.record("lessthan", hit=True)
            return cached
        self.statistics.record("lessthan", hit=False)
        analysis = LessThanAnalysis(module, build_essa=True,
                                    interprocedural=interprocedural, cache=self)
        self._module_lessthan[key] = analysis
        return analysis

    # -- disambiguators ------------------------------------------------------------
    def function_disambiguator(self, function: Function) -> "PointerDisambiguator":
        """A shared, table-backed disambiguator over :meth:`lessthan`."""
        from repro.core.disambiguation import PointerDisambiguator

        cached = self._function_disambiguators.get(function)
        if cached is not None:
            self.statistics.record("disambiguator", hit=True)
            return cached
        self.statistics.record("disambiguator", hit=False)
        analysis = self.lessthan(function)
        disambiguator = PointerDisambiguator(analysis)
        self._function_disambiguators[function] = disambiguator
        return disambiguator

    def module_disambiguator(self, module: Module,
                             interprocedural: bool = True) -> "PointerDisambiguator":
        """A shared, table-backed disambiguator over :meth:`module_lessthan`."""
        from repro.core.disambiguation import PointerDisambiguator

        key = (module, interprocedural)
        cached = self._module_disambiguators.get(key)
        if cached is not None:
            self.statistics.record("disambiguator", hit=True)
            return cached
        self.statistics.record("disambiguator", hit=False)
        analysis = self.module_lessthan(module, interprocedural)
        disambiguator = PointerDisambiguator(analysis)
        self._module_disambiguators[key] = disambiguator
        return disambiguator

    # -- evaluation payloads -------------------------------------------------------
    def get_evaluation(self, function: Function, label: str) -> Optional[object]:
        """The memoized evaluation payload of ``(function, label)``, if any.

        Payloads are opaque, picklable objects (the execution engine stores
        verdict counters plus the per-pair verdict stream).  They live beside
        the live analysis objects so that a payload warm-loaded from a
        persistent :class:`~repro.engine.store.AnalysisStore` short-circuits
        the whole analysis pipeline: a hit here means neither range analysis,
        e-SSA conversion, the constraint solve nor the O(n²) query loop runs
        for that function.
        """
        cached = self._evaluations.get((function, label))
        self.statistics.record("evaluation", hit=cached is not None)
        return cached

    def put_evaluation(self, function: Function, label: str, payload: object) -> None:
        """Record the evaluation payload of ``(function, label)``.

        Called both by the engine after computing a function fresh and when
        warm-loading persisted results from an analysis store.
        """
        self._evaluations[(function, label)] = payload
        self._function_evaluations.setdefault(function, set()).add(label)

    def evaluation_count(self) -> int:
        return len(self._evaluations)

    # -- invalidation -----------------------------------------------------------------
    def _drop_function_entries(self, function: Function) -> None:
        # Live analysis objects only: evaluation payloads are content-addressed
        # by the engine against the *pre-conversion* IR and describe the result
        # of the full pipeline, so the cache's own e-SSA conversion (which
        # routes through here) must not drop them.  Explicit `invalidate`
        # (an outside IR mutation) drops them below.
        self._ranges.pop(function, None)
        self._function_lessthan.pop(function, None)
        self._function_disambiguators.pop(function, None)

    def _drop_function_evaluations(self, function: Function) -> None:
        # The per-function label index makes this O(entries for *this*
        # function); the old full-table scan cost O(all entries) per
        # invalidation, quadratic over a churn session.
        for label in self._function_evaluations.pop(function, ()):
            self._evaluations.pop((function, label), None)

    def _drop_one_evaluation(self, function: Function, label: str) -> None:
        self._evaluations.pop((function, label), None)
        labels = self._function_evaluations.get(function)
        if labels is not None:
            labels.discard(label)
            if not labels:
                del self._function_evaluations[function]

    def invalidate(self, function: Optional[Function] = None) -> None:
        """Drop cached state for ``function`` (or everything, when ``None``).

        Module-level analyses covering the function's module are dropped too,
        since their constraints embed the function's instructions.  Sibling
        functions are invalidated *per call-graph reachability*, not
        wholesale: an edit's interprocedural facts can only reach the edited
        function's transitive callees (facts flow caller → callee) and its
        dependency fingerprint only covers its transitive callers, so
        evaluation payloads of functions outside both closures survive.  The
        reachability is read from the post-mutation call graph; an edit that
        *removes* call edges should invalidate both endpoints (or everything)
        explicitly.
        """
        self.statistics.invalidations += 1
        if function is None:
            self._essa.clear()
            self._ranges.clear()
            self._function_lessthan.clear()
            self._module_lessthan.clear()
            self._function_disambiguators.clear()
            self._module_disambiguators.clear()
            self._evaluations.clear()
            self._function_evaluations.clear()
            self._range_hints.clear()
            self._pre_ranges.clear()
            self._pre_range_hints.clear()
            self._snapshots.clear()
            return
        from repro.ir.callgraph import CallGraph

        self._essa.pop(function, None)
        self._drop_function_entries(function)
        self._drop_function_evaluations(function)
        self._range_hints.pop(function, None)
        self._pre_ranges.pop(function, None)
        self._pre_range_hints.pop(function, None)
        module = function.parent
        if module is not None:
            for key in [k for k in self._module_lessthan if k[0] is module]:
                del self._module_lessthan[key]
            for key in [k for k in self._module_disambiguators if k[0] is module]:
                del self._module_disambiguators[key]
            graph = CallGraph(module)
            if function.name in graph.callees:
                coupled = (graph.transitive_callers(function.name)
                           | graph.transitive_callees(function.name))
                coupled.discard(function.name)
                for other in module.defined_functions():
                    if other is not function and other.name in coupled:
                        self._drop_function_evaluations(other)

    # -- incremental refresh -----------------------------------------------------------
    def refresh(self, module: Module) -> RefreshResult:
        """Diff ``module`` against the previous snapshot of the same module
        name and invalidate exactly the edit's blast radius.

        The first call per module name records a baseline (every function
        reported dirty).  Later calls classify each function by its own-IR
        hash, then for every *clean* function migrate each evaluation payload
        whose fingerprint scope (see
        :func:`repro.engine.workunit.label_fingerprint_scope`) is unchanged
        onto the new compile's function object — region-scoped entries
        survive edits outside ``{function} ∪ transitive callers``,
        dependency-scoped entries survive edits outside the callee closure,
        module-scoped entries only a byte-identical module.  Dirty functions
        additionally get their previous range analysis registered as an
        incremental-re-solve hint (consumed by :meth:`ranges`).  Stale state
        of the previous compile's objects is purged.

        Snapshots hash whatever form the functions are currently in, so call
        ``refresh`` at a consistent pipeline point (before e-SSA conversion,
        like the engine's content addressing).
        """
        from repro.engine.workunit import label_fingerprint_scope
        from repro.ir.callgraph import module_fingerprints

        prints = module_fingerprints(module)
        functions = {function.name: function
                     for function in module.defined_functions()}
        module_hash = _module_content_hash(module)
        snapshot = _ModuleSnapshot(prints, functions, module_hash)
        previous = self._snapshots.get(module.name)
        self._snapshots[module.name] = snapshot
        if previous is None:
            return RefreshResult(dirty=sorted(functions), clean=[],
                                 removed=[], migrated=0)

        dirty = [name for name in sorted(functions)
                 if prints.own[name] != previous.prints.own.get(name)]
        dirty_set = set(dirty)
        clean = [name for name in sorted(functions) if name not in dirty_set]
        removed = [name for name in sorted(previous.functions)
                   if name not in functions]
        for name in sorted(functions):
            self.statistics.record("refresh", hit=name not in dirty_set)

        migrated = 0
        for name in clean:
            old_function = previous.functions.get(name)
            if old_function is None:
                continue
            for label in sorted(self._function_evaluations.get(old_function, ())):
                scope = label_fingerprint_scope(label)
                if scope == "module":
                    valid = previous.module_hash == module_hash
                elif scope == "region":
                    valid = (previous.prints.region.get(name)
                             == prints.region[name])
                else:
                    valid = (previous.prints.fingerprint.get(name)
                             == prints.fingerprint[name])
                if not valid:
                    if old_function is functions[name]:
                        # In-place refresh: the stale payload sits on the
                        # *current* object and must go.
                        self._drop_one_evaluation(old_function, label)
                    continue
                payload = self._evaluations.get((old_function, label))
                if payload is not None and old_function is not functions[name]:
                    self.put_evaluation(functions[name], label, payload)
                    migrated += 1

        # Previous-compile range analyses become incremental-re-solve seeds
        # for the new objects; for clean functions the solver reuses every
        # component, for dirty ones only the edit's def-use frontier re-runs.
        for name, function in functions.items():
            old_function = previous.functions.get(name)
            if old_function is None or old_function is function:
                continue
            old_ranges = self._ranges.get(old_function)
            if old_ranges is not None:
                self._range_hints[function] = old_ranges
            old_pre = self._pre_ranges.get(old_function)
            if old_pre is not None:
                self._pre_range_hints[function] = old_pre

        # Purge the previous compile's (now unreachable) objects, and stale
        # state when refreshing the same compile in place.
        for name, old_function in previous.functions.items():
            if old_function is functions.get(name):
                if name in dirty_set:
                    self._essa.pop(old_function, None)
                    self._drop_function_entries(old_function)
                    self._drop_function_evaluations(old_function)
                    self._pre_ranges.pop(old_function, None)
                continue
            self._essa.pop(old_function, None)
            self._drop_function_entries(old_function)
            self._drop_function_evaluations(old_function)
            self._range_hints.pop(old_function, None)
            self._pre_ranges.pop(old_function, None)
            self._pre_range_hints.pop(old_function, None)
        old_modules = {old_function.parent
                       for old_function in previous.functions.values()
                       if old_function.parent is not None
                       and old_function.parent is not module}
        stale_modules = set(old_modules)
        if dirty or removed:
            stale_modules.add(module)
        for stale in stale_modules:
            for key in [k for k in self._module_lessthan if k[0] is stale]:
                del self._module_lessthan[key]
            for key in [k for k in self._module_disambiguators if k[0] is stale]:
                del self._module_disambiguators[key]
        return RefreshResult(dirty=dirty, clean=clean, removed=removed,
                             migrated=migrated)

    # -- introspection ---------------------------------------------------------------
    def cached_functions(self) -> int:
        return len(self._ranges)

    def __repr__(self) -> str:
        return "<FunctionAnalysisCache functions={} {}>".format(
            self.cached_functions(), self.statistics)
