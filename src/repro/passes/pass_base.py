"""Base classes for passes.

A *pass* is a named unit of work over the IR.  There are two axes:

* scope: :class:`FunctionPass` runs per function, :class:`ModulePass` runs
  once over a whole module;
* kind: :class:`AnalysisPass` computes a result without changing the IR,
  :class:`TransformPass` mutates the IR and reports whether it changed
  anything.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.ir.function import Function
from repro.ir.module import Module


class Pass:
    """Common base: a pass has a stable ``name`` used for caching and logs."""

    name = "pass"

    def __repr__(self) -> str:
        return "<{} {}>".format(type(self).__name__, self.name)


class FunctionPass(Pass):
    """A pass whose unit of work is a single function."""

    def run_on_function(self, function: Function) -> Any:  # pragma: no cover - interface
        raise NotImplementedError


class ModulePass(Pass):
    """A pass whose unit of work is a whole module."""

    def run_on_module(self, module: Module) -> Any:  # pragma: no cover - interface
        raise NotImplementedError


class AnalysisPass(FunctionPass):
    """A function pass that computes a result and never mutates the IR.

    Results are cached by the :class:`~repro.passes.manager.PassManager`
    keyed on ``(pass name, function)`` until invalidated.
    """


class TransformPass(FunctionPass):
    """A function pass that may mutate the IR.

    ``run_on_function`` must return True when the IR changed so the manager
    can invalidate cached analyses for that function.
    """
