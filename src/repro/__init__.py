"""Pointer Disambiguation via Strict Inequalities — a Python reproduction.

This package reproduces the system described in *Pointer Disambiguation via
Strict Inequalities* (Maalej, Paisante, Ramos, Gonnord, Pereira — CGO 2017):
a sparse "less-than" dataflow analysis over an e-SSA program representation,
used to prove that two pointers cannot alias because one is strictly smaller
than the other.

High-level entry points
-----------------------

* :class:`repro.api.Session` — **the** unified facade: fluent
  ``Session(config).compile(src).analyze().disambiguate()`` pipeline,
  ``Session.evaluate`` / ``Session.run_workload`` over the execution
  engine, one shared analysis cache and store handle.
* :class:`repro.api.ReproConfig` — every knob (workers, store, solver
  strategies, truncation, synth seeds) as one validated, frozen dataclass
  with the precedence chain *explicit argument > config field > ``REPRO_*``
  env var > default*.
* ``python -m repro`` — the CLI (``eval``, ``print-ir``, ``stats``,
  ``store``) over the same facade.
* :class:`repro.core.LessThanAnalysis` — compute strict less-than sets for a
  function or module.
* :class:`repro.core.StrictInequalityAliasAnalysis` — the alias analysis
  built on top of them (``LT`` in the paper's tables).
* :class:`repro.alias.BasicAliasAnalysis`,
  :class:`repro.alias.AndersenAliasAnalysis` — the baselines (``BA``, ``CF``).
* :func:`repro.alias.evaluate_module` — the ``aa-eval`` harness.
* :func:`repro.frontend.compile_source` — compile mini-C sources to the IR.
* :mod:`repro.synth` — synthetic workloads used by the benchmark harness.

See ``examples/quickstart.py`` for a five-minute tour.
"""

__version__ = "1.0.0"

from repro import alias, api, core, essa, ir, pdg, rangeanalysis

__all__ = ["alias", "api", "core", "essa", "ir", "pdg", "rangeanalysis",
           "__version__"]
