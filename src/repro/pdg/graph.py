"""Data structures of the Program Dependence Graph."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.ir.values import Value
from repro.util.dot import DotGraph


class PDGNode:
    """Base class of PDG vertices."""

    def __init__(self, label: str) -> None:
        self.label = label

    def __repr__(self) -> str:
        return "<{} {}>".format(type(self).__name__, self.label)


class ValueNode(PDGNode):
    """A vertex representing one SSA value (variable)."""

    def __init__(self, value: Value) -> None:
        super().__init__("%" + value.short_name())
        self.value = value


class MemoryNode(PDGNode):
    """A vertex representing an equivalence class of memory references.

    ``references`` are the pointer values through which the class is
    accessed.  Two references end up in the same node when the alias
    analysis used to build the graph could not prove them disjoint.
    """

    def __init__(self, index: int, references: Sequence[Value]) -> None:
        super().__init__("mem#{}".format(index))
        self.index = index
        self.references: List[Value] = list(references)

    @property
    def reference_count(self) -> int:
        return len(self.references)


class PDGEdge:
    """A dependence edge with a kind ("data", "memory" or "control")."""

    def __init__(self, source: PDGNode, target: PDGNode, kind: str = "data") -> None:
        self.source = source
        self.target = target
        self.kind = kind

    def __repr__(self) -> str:
        return "<PDGEdge {} -{}-> {}>".format(self.source.label, self.kind, self.target.label)


class ProgramDependenceGraph:
    """A program dependence graph for one function."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value_nodes: Dict[Value, ValueNode] = {}
        self.memory_nodes: List[MemoryNode] = []
        self.edges: List[PDGEdge] = []
        self._memory_node_of_reference: Dict[Value, MemoryNode] = {}

    # -- construction -------------------------------------------------------------
    def value_node(self, value: Value) -> ValueNode:
        if value not in self.value_nodes:
            self.value_nodes[value] = ValueNode(value)
        return self.value_nodes[value]

    def add_memory_node(self, references: Sequence[Value]) -> MemoryNode:
        node = MemoryNode(len(self.memory_nodes), references)
        self.memory_nodes.append(node)
        for reference in references:
            self._memory_node_of_reference[reference] = node
        return node

    def memory_node_for(self, reference: Value) -> Optional[MemoryNode]:
        return self._memory_node_of_reference.get(reference)

    def add_edge(self, source: PDGNode, target: PDGNode, kind: str = "data") -> PDGEdge:
        edge = PDGEdge(source, target, kind)
        self.edges.append(edge)
        return edge

    # -- queries -------------------------------------------------------------------
    @property
    def memory_node_count(self) -> int:
        return len(self.memory_nodes)

    @property
    def value_node_count(self) -> int:
        return len(self.value_nodes)

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    def edges_of_kind(self, kind: str) -> List[PDGEdge]:
        return [edge for edge in self.edges if edge.kind == kind]

    def predecessors(self, node: PDGNode) -> List[PDGNode]:
        return [edge.source for edge in self.edges if edge.target is node]

    def successors(self, node: PDGNode) -> List[PDGNode]:
        return [edge.target for edge in self.edges if edge.source is node]

    # -- export ----------------------------------------------------------------------
    def to_dot(self) -> str:
        graph = DotGraph("pdg_" + self.name)
        for node in self.value_nodes.values():
            graph.add_node(node.label, shape="ellipse")
        for node in self.memory_nodes:
            graph.add_node(node.label, shape="box")
        for edge in self.edges:
            graph.add_edge(edge.source.label, edge.target.label, label=edge.kind)
        return graph.to_dot()
