"""Program Dependence Graph construction.

The applicability experiment of the paper (Figure 12) measures how a more
precise alias analysis improves the Program Dependence Graph built by the
FlowTracker system: every memory reference is mapped to a *memory node*, and
references that may alias share a node.  A perfect alias analysis gives one
node per independent location; no alias information collapses everything
into a single node.  The experiment counts memory nodes.

This package rebuilds that machinery: :class:`ProgramDependenceGraph` holds
value nodes, memory nodes and dependence edges; :class:`PDGBuilder`
constructs it for a function given an alias analysis.
"""

from repro.pdg.graph import MemoryNode, PDGEdge, PDGNode, ProgramDependenceGraph, ValueNode
from repro.pdg.builder import PDGBuilder, build_pdg, count_memory_nodes

__all__ = [
    "MemoryNode",
    "PDGEdge",
    "PDGNode",
    "ProgramDependenceGraph",
    "ValueNode",
    "PDGBuilder",
    "build_pdg",
    "count_memory_nodes",
]
