"""Building program dependence graphs.

Memory nodes are computed by partitioning the static memory references of a
function (the pointer operands of loads and stores) with the supplied alias
analysis: two references fall into the same node unless the analysis proves
them NoAlias.  Data-dependence edges connect operands to the instructions
that use them; loads and stores are additionally connected to the memory node
they touch, mirroring FlowTracker's construction ("an instruction such as
``a[i] = b`` creates a data dependence edge from ``b`` to the memory node
``a[i]``").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.alias.interface import AliasAnalysis

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.passes.analysis_cache import FunctionAnalysisCache
from repro.alias.results import AliasResult, MemoryLocation
from repro.ir.function import Function
from repro.ir.instructions import Instruction, Load, Phi, Store
from repro.ir.module import Module
from repro.ir.values import Argument, Value
from repro.pdg.graph import ProgramDependenceGraph
from repro.util.unionfind import UnionFind


def _is_ssa_variable(value: Value) -> bool:
    return isinstance(value, (Argument, Instruction))


class PDGBuilder:
    """Builds :class:`ProgramDependenceGraph` instances for functions.

    ``alias_analysis`` may be omitted when a
    :class:`~repro.passes.analysis_cache.FunctionAnalysisCache` is supplied:
    the builder then partitions memory references with the cached
    strict-inequality analysis, sharing every sub-analysis with other
    clients of the cache.
    """

    def __init__(self, alias_analysis: Optional[AliasAnalysis] = None,
                 cache: Optional["FunctionAnalysisCache"] = None) -> None:
        if alias_analysis is None:
            if cache is None:
                raise ValueError("PDGBuilder needs an alias analysis or a cache")
            from repro.core.sraa import StrictInequalityAliasAnalysis

            alias_analysis = StrictInequalityAliasAnalysis(cache=cache)
        self.alias_analysis = alias_analysis
        self.cache = cache

    # -- memory partitioning ------------------------------------------------------
    def memory_references(self, function: Function) -> List[Value]:
        """The static memory references of ``function``, in program order.

        Each load/store contributes its pointer operand once (the same SSA
        pointer used twice is still a single static reference).
        """
        references: List[Value] = []
        seen = set()
        for inst in function.instructions():
            pointer: Optional[Value] = None
            if isinstance(inst, Load):
                pointer = inst.pointer
            elif isinstance(inst, Store):
                pointer = inst.pointer
            if pointer is None or id(pointer) in seen:
                continue
            seen.add(id(pointer))
            references.append(pointer)
        return references

    def partition_references(self, function: Function) -> List[List[Value]]:
        """Group references into alias classes according to the analysis."""
        self.alias_analysis.prepare_function(function)
        references = self.memory_references(function)
        groups = UnionFind()
        for reference in references:
            groups.make_set(reference)
        # Batched queries: one MemoryLocation per reference, reused across
        # the whole pair loop.
        locations = [MemoryLocation(reference) for reference in references]
        for i, j, verdict in self.alias_analysis.alias_many(locations):
            if verdict is not AliasResult.NO_ALIAS:
                groups.union(references[i], references[j])
        return groups.groups()

    # -- graph construction ----------------------------------------------------------
    def build(self, function: Function) -> ProgramDependenceGraph:
        pdg = ProgramDependenceGraph(function.name)
        for group in self.partition_references(function):
            pdg.add_memory_node(group)
        for inst in function.instructions():
            if inst.produces_value():
                target = pdg.value_node(inst)
            else:
                target = None
            # Data dependences: operand -> user.
            for operand in inst.operands:
                if _is_ssa_variable(operand) and target is not None:
                    pdg.add_edge(pdg.value_node(operand), target, kind="data")
            # Memory dependences.
            if isinstance(inst, Load):
                node = pdg.memory_node_for(inst.pointer)
                if node is not None:
                    pdg.add_edge(node, pdg.value_node(inst), kind="memory")
            elif isinstance(inst, Store):
                node = pdg.memory_node_for(inst.pointer)
                if node is not None:
                    if _is_ssa_variable(inst.value):
                        pdg.add_edge(pdg.value_node(inst.value), node, kind="memory")
                    if _is_ssa_variable(inst.pointer):
                        pdg.add_edge(pdg.value_node(inst.pointer), node, kind="memory")
        return pdg


def build_pdg(function: Function, alias_analysis: Optional[AliasAnalysis] = None,
              cache: Optional["FunctionAnalysisCache"] = None) -> ProgramDependenceGraph:
    """Convenience wrapper: build the PDG of ``function`` with ``alias_analysis``."""
    return PDGBuilder(alias_analysis, cache=cache).build(function)


def count_memory_nodes(module: Module, alias_analysis: Optional[AliasAnalysis] = None,
                       cache: Optional["FunctionAnalysisCache"] = None) -> int:
    """Total memory nodes over every defined function of ``module``.

    This is the metric of Figure 12: the more precise the alias analysis,
    the more memory nodes (fewer references are merged together).
    """
    builder = PDGBuilder(alias_analysis, cache=cache)
    total = 0
    for function in module.defined_functions():
        total += builder.build(function).memory_node_count
    return total
