"""Per-benchmark profiles modelling the SPEC CPU2006 programs of Figure 9.

We cannot ship SPEC, so each benchmark is replaced by a synthetic program
assembled from the kernel library and the random generator.  A profile
controls the *mix* that matters for the experiment:

* ``pointer_kernels`` — number of kernel instances drawn from the
  pointer-arithmetic-heavy pool (two-index loops, pointer walks, stencils):
  the code the strict-inequality analysis (LT) is good at;
* ``alloc_kernels`` — number of instances drawn from the allocation-heavy
  pool (multiple ``malloc`` buffers, distinct local arrays): the code the
  basic analysis (BA) is good at;
* ``random_programs`` / ``random_statements`` — Csmith-like filler that adds
  bulk and a mix of both behaviours.

The absolute query counts will not match the paper (their programs are
orders of magnitude larger), but the *ordering* of the profiles follows the
paper's Figure 9: lbm/milc/bzip2-like programs are dominated by pointer
arithmetic (LT alone competitive with or better than BA), while sjeng,
namd, omnetpp or dealII-like programs are dominated by distinct allocation
sites and call-heavy code (BA far ahead of LT).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class SpecProfile:
    """Synthetic stand-in for one SPEC CPU2006 benchmark."""

    name: str
    pointer_kernels: int
    alloc_kernels: int
    random_programs: int
    random_statements: int
    #: number of ``int*`` parameters of each random filler function; a high
    #: count models pointer-argument-heavy code (where BA is weak), zero
    #: models allocation-heavy code (where BA is strong).
    random_parameters: int
    #: seed offset so every profile gets a distinct but reproducible program.
    seed: int

    @property
    def scale(self) -> int:
        return self.pointer_kernels + self.alloc_kernels + self.random_programs


#: kernels that stress pointer arithmetic (LT's home turf).
POINTER_KERNEL_POOL: Tuple[str, ...] = (
    "ins_sort", "partition", "copy_reverse", "pointer_walk", "reverse_in_place",
    "two_pointer_sum", "stencil3", "prefix_sum", "merge_sorted",
    "sliding_window_max", "memcopy", "vector_add", "dot_product",
    "find_max_index", "binary_search", "matrix_row_sum",
)

#: kernels dominated by distinct allocation sites and calls (BA's home turf).
ALLOC_KERNEL_POOL: Tuple[str, ...] = (
    "alloc_buffers", "queue_simulation", "saxpy_calls", "histogram",
)

#: the sixteen SPEC CPU2006 benchmarks of Figure 9, ordered as in the paper
#: (by total number of queries).  The mixes mirror the paper's findings about
#: which benchmarks are pointer-arithmetic heavy.
SPEC_PROFILES: Dict[str, SpecProfile] = {
    "lbm":        SpecProfile("lbm",        pointer_kernels=6,  alloc_kernels=1,  random_programs=1, random_statements=20, random_parameters=5, seed=101),
    "mcf":        SpecProfile("mcf",        pointer_kernels=4,  alloc_kernels=2,  random_programs=1, random_statements=20, random_parameters=4, seed=102),
    "astar":      SpecProfile("astar",      pointer_kernels=3,  alloc_kernels=4,  random_programs=1, random_statements=25, random_parameters=2, seed=103),
    "libquantum": SpecProfile("libquantum", pointer_kernels=2,  alloc_kernels=5,  random_programs=1, random_statements=25, random_parameters=1, seed=104),
    "sjeng":      SpecProfile("sjeng",      pointer_kernels=1,  alloc_kernels=7,  random_programs=1, random_statements=30, random_parameters=0, seed=105),
    "milc":       SpecProfile("milc",       pointer_kernels=7,  alloc_kernels=2,  random_programs=1, random_statements=30, random_parameters=5, seed=106),
    "soplex":     SpecProfile("soplex",     pointer_kernels=4,  alloc_kernels=4,  random_programs=2, random_statements=30, random_parameters=3, seed=107),
    "bzip2":      SpecProfile("bzip2",      pointer_kernels=8,  alloc_kernels=3,  random_programs=2, random_statements=30, random_parameters=4, seed=108),
    "hmmer":      SpecProfile("hmmer",      pointer_kernels=3,  alloc_kernels=6,  random_programs=2, random_statements=30, random_parameters=2, seed=109),
    "gobmk":      SpecProfile("gobmk",      pointer_kernels=8,  alloc_kernels=6,  random_programs=2, random_statements=35, random_parameters=4, seed=110),
    "namd":       SpecProfile("namd",       pointer_kernels=1,  alloc_kernels=8,  random_programs=2, random_statements=35, random_parameters=0, seed=111),
    "omnetpp":    SpecProfile("omnetpp",    pointer_kernels=1,  alloc_kernels=9,  random_programs=3, random_statements=35, random_parameters=0, seed=112),
    "h264ref":    SpecProfile("h264ref",    pointer_kernels=3,  alloc_kernels=9,  random_programs=3, random_statements=35, random_parameters=1, seed=113),
    "perlbench":  SpecProfile("perlbench",  pointer_kernels=2,  alloc_kernels=10, random_programs=3, random_statements=35, random_parameters=0, seed=114),
    "dealII":     SpecProfile("dealII",     pointer_kernels=3,  alloc_kernels=12, random_programs=3, random_statements=40, random_parameters=0, seed=115),
    "gcc":        SpecProfile("gcc",        pointer_kernels=6,  alloc_kernels=14, random_programs=4, random_statements=40, random_parameters=1, seed=116),
}


def spec_benchmark_names() -> List[str]:
    """Profile names in the paper's order (ascending query counts)."""
    return list(SPEC_PROFILES)
