"""Benchmark program construction.

The evaluation needs two collections of programs:

* a "test-suite-like" collection of increasing size (the 100 largest
  benchmarks of the LLVM test suite in Figure 8, and the 50 largest programs
  of Figure 11), and
* a "SPEC-like" collection of sixteen named programs whose pointer-arithmetic
  versus allocation-site mix follows :mod:`repro.synth.spec_profiles`
  (Figures 9 and 10).

Programs are assembled by composing kernel sources (with per-instance
renaming so a module may contain several copies of the same kernel) and
Csmith-like random functions into a single mini-C translation unit, then
compiling it with the frontend.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.api.config import resolved_synth_seed
from repro.frontend import compile_source
from repro.ir.module import Module
from repro.synth.csmith import CsmithConfig, RandomProgramGenerator
from repro.synth.kernels import KERNEL_SOURCES
from repro.synth.spec_profiles import (
    ALLOC_KERNEL_POOL,
    POINTER_KERNEL_POOL,
    SPEC_PROFILES,
    SpecProfile,
)

#: function names defined by each kernel (needed for per-instance renaming).
_KERNEL_FUNCTIONS: Dict[str, Tuple[str, ...]] = {
    name: tuple(re.findall(r"(?:int|void)\s*\*?\s*(\w+)\s*\(", source))
    for name, source in KERNEL_SOURCES.items()
}


@dataclass
class WorkloadProgram:
    """A named benchmark program: its source text and its compiled module."""

    name: str
    source: str
    module: Module = field(repr=False)

    @property
    def instruction_count(self) -> int:
        return self.module.instruction_count()


def _rename_functions(source: str, kernel: str, suffix: str) -> str:
    """Give every function defined by ``kernel`` a unique, per-instance name."""
    renamed = source
    for function_name in _KERNEL_FUNCTIONS[kernel]:
        renamed = re.sub(r"\b{}\b".format(re.escape(function_name)),
                         "{}_{}".format(function_name, suffix), renamed)
    return renamed


def _random_function_source(seed: int, statements: int, pointer_depth: int, suffix: str,
                            parameter_count: int = 0) -> str:
    """One Csmith-like function (without its ``main``) renamed with ``suffix``."""
    # Parameterised functions model code that mostly works on incoming
    # pointers (SPEC-like): few local arrays, few straight-line constant-index
    # statements, and one long streaming derived-pointer chain per parameter
    # (the lbm-style access pattern that only LT disambiguates).
    if parameter_count > 0:
        config = CsmithConfig(seed=seed, pointer_depth=pointer_depth,
                              statement_count=max(4, statements // 4), loop_count=2,
                              parameter_count=parameter_count, array_count=1,
                              chain_loops=parameter_count, chain_length=8)
    else:
        config = CsmithConfig(seed=seed, pointer_depth=pointer_depth,
                              statement_count=statements, loop_count=2)
    generator = RandomProgramGenerator(config)
    source = generator.generate_source()
    # Drop the generated main (each composed program gets a single main at the
    # end) and rename the work function.
    source = source.split("int main()")[0]
    return source.replace("work(", "work_{}(".format(suffix))


def compose_source(name: str, kernel_instances: Sequence[str],
                   random_specs: Sequence[Sequence[int]] = ()) -> str:
    """Compose one benchmark program's *source text* without compiling it.

    This is the coordinator-side half of :func:`compose_program`: the
    cross-process execution engine ships source text to worker processes
    (compiled IR does not pickle), so benchmark drivers that fan programs
    out only need the text.  ``name`` participates for interface symmetry
    and future per-program markers; composition itself is a pure function of
    the kernel names and random specs.
    """
    del name  # composition does not embed the name today
    pieces: List[str] = []
    for index, kernel in enumerate(kernel_instances):
        pieces.append(_rename_functions(KERNEL_SOURCES[kernel], kernel, "k{}".format(index)))
    for index, spec in enumerate(random_specs):
        seed, statements, pointer_depth = spec[0], spec[1], spec[2]
        parameter_count = spec[3] if len(spec) > 3 else 0
        pieces.append(_random_function_source(seed, statements, pointer_depth,
                                              "r{}".format(index), parameter_count))
    pieces.append("int main() { return 0; }\n")
    return "\n".join(pieces)


def compose_program(name: str, kernel_instances: Sequence[str],
                    random_specs: Sequence[Sequence[int]] = ()) -> WorkloadProgram:
    """Build one benchmark module from kernel names and random-function specs.

    ``random_specs`` is a sequence of ``(seed, statements, pointer_depth)`` or
    ``(seed, statements, pointer_depth, parameter_count)`` tuples.  The
    composed program also receives a ``main`` that does nothing (benchmarks
    only analyse the code statically).
    """
    source = compose_source(name, kernel_instances, random_specs)
    module = compile_source(source, module_name=name)
    return WorkloadProgram(name=name, source=source, module=module)


# ---------------------------------------------------------------------------
# The test-suite-like collection (Figures 8 and 11)
# ---------------------------------------------------------------------------

def testsuite_recipes(count: int = 100, base_seed: Optional[int] = None) \
        -> List[Tuple[str, List[str], List[Tuple[int, int, int, int]]]]:
    """The ``(name, kernels, random_specs)`` recipe of every collection program.

    All RNG draws happen here, in one place, so the compiled
    (:func:`build_testsuite_programs`) and source-only
    (:func:`build_testsuite_sources`) views of the collection are guaranteed
    to describe the same programs.  ``base_seed=None`` defers to the active
    :class:`~repro.api.config.ReproConfig` / ``REPRO_SYNTH_SEED`` (default 7).
    """
    if base_seed is None:
        base_seed = resolved_synth_seed()
    rng = random.Random(base_seed)
    pools = list(POINTER_KERNEL_POOL) + list(ALLOC_KERNEL_POOL)
    recipes: List[Tuple[str, List[str], List[Tuple[int, int, int, int]]]] = []
    for index in range(count):
        kernel_count = 1 + index // 8
        kernels = [rng.choice(pools) for _ in range(kernel_count)]
        statements = 10 + index
        # Alternate between closed (local-array) and parameterised random
        # functions so the collection mixes allocation-heavy code with
        # pointer-argument-heavy code, like a real benchmark suite does.
        parameters = 3 if index % 2 == 1 else 0
        random_specs = [(base_seed * 1000 + index, statements, 2, parameters)]
        recipes.append(("testsuite_{:03d}".format(index), kernels, random_specs))
    return recipes


def build_testsuite_programs(count: int = 100,
                             base_seed: Optional[int] = None) -> List[WorkloadProgram]:
    """``count`` benchmark programs of (roughly) increasing size.

    Program ``i`` contains ``1 + i // 8`` kernel instances plus one random
    function whose statement count grows with ``i``, which yields the size
    spread the paper's Figure 8 plots on a log scale.
    """
    return [compose_program(name, kernels, random_specs)
            for name, kernels, random_specs in testsuite_recipes(count, base_seed)]


def build_testsuite_sources(count: int = 100,
                            base_seed: Optional[int] = None) -> List[Tuple[str, str]]:
    """``(name, source)`` pairs of the collection, without compiling.

    The execution engine's coordinator hands these straight to worker
    processes; whichever process runs a unit pays its (one) compilation.
    """
    return [(name, compose_source(name, kernels, random_specs))
            for name, kernels, random_specs in testsuite_recipes(count, base_seed)]


# ---------------------------------------------------------------------------
# The SPEC-like collection (Figures 9 and 10)
# ---------------------------------------------------------------------------

def spec_recipe(profile: SpecProfile) \
        -> Tuple[str, List[str], List[Tuple[int, int, int, int]]]:
    """The ``(name, kernels, random_specs)`` recipe of one SPEC-like program."""
    rng = random.Random(profile.seed)
    kernels: List[str] = []
    for _ in range(profile.pointer_kernels):
        kernels.append(rng.choice(POINTER_KERNEL_POOL))
    for _ in range(profile.alloc_kernels):
        kernels.append(rng.choice(ALLOC_KERNEL_POOL))
    random_specs = [
        (profile.seed * 100 + index, profile.random_statements, 2, profile.random_parameters)
        for index in range(profile.random_programs)
    ]
    return "spec_" + profile.name, kernels, random_specs


def build_spec_module(profile: SpecProfile) -> WorkloadProgram:
    """Build the synthetic program standing in for one SPEC benchmark."""
    return compose_program(*spec_recipe(profile))


def _selected_profiles(names: Optional[Iterable[str]]) -> List[SpecProfile]:
    selected = list(names) if names is not None else list(SPEC_PROFILES)
    profiles: List[SpecProfile] = []
    for name in selected:
        if name not in SPEC_PROFILES:
            raise KeyError("unknown SPEC profile {!r}".format(name))
        profiles.append(SPEC_PROFILES[name])
    return profiles


def spec_benchmarks(names: Optional[Iterable[str]] = None) -> List[WorkloadProgram]:
    """Build the sixteen SPEC-like benchmark programs (or a subset)."""
    return [build_spec_module(profile) for profile in _selected_profiles(names)]


def spec_sources(names: Optional[Iterable[str]] = None) -> List[Tuple[str, str]]:
    """``(name, source)`` pairs of the SPEC-like programs, without compiling."""
    return [(recipe[0], compose_source(*recipe))
            for recipe in (spec_recipe(profile)
                           for profile in _selected_profiles(names))]
