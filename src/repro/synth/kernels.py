"""Hand-written mini-C kernels used throughout the evaluation.

The collection is designed to cover the idioms the paper discusses:

* the two motivating sorting routines of Figure 1 (``ins_sort`` and
  ``partition``) where ``v[i]`` and ``v[j]`` never alias inside an iteration;
* the pointer-walk idiom of Section 3.6 (``for (int* p = a; p < pe; p++)``);
* two-index loops walking an array from both ends;
* allocation-heavy code where the basic analysis (BA) shines;
* mixed kernels exercising calls, nested loops and loads of pointers.
"""

from __future__ import annotations

from typing import Dict, List

from repro.frontend import compile_source
from repro.ir.module import Module

KERNEL_SOURCES: Dict[str, str] = {
    # -- Figure 1 (a) of the paper -------------------------------------------------
    "ins_sort": """
void ins_sort(int* v, int N) {
  int i, j;
  for (i = 0; i < N - 1; i++) {
    for (j = i + 1; j < N; j++) {
      if (v[i] > v[j]) {
        int tmp = v[i];
        v[i] = v[j];
        v[j] = tmp;
      }
    }
  }
}
""",
    # -- Figure 1 (b) of the paper -------------------------------------------------
    "partition": """
void partition(int *v, int N) {
  int i, j, p, tmp;
  p = v[N / 2];
  for (i = 0, j = N - 1; 1; i++, j--) {
    while (v[i] < p) i++;
    while (p < v[j]) j--;
    if (i >= j)
      break;
    tmp = v[i];
    v[i] = v[j];
    v[j] = tmp;
  }
}
""",
    # -- the introduction's loop ----------------------------------------------------
    "copy_reverse": """
void copy_reverse(int* v, int N) {
  int i, j;
  for (i = 0, j = N; i < j; i++, j--) {
    v[i] = v[j];
  }
}
""",
    # -- pointer walk (Section 3.6 idiom) --------------------------------------------
    "pointer_walk": """
int pointer_walk(int* p, int n) {
  int* pe = p + n;
  int total = 0;
  int* pi;
  for (pi = p; pi < pe; pi++) {
    total += *pi;
  }
  return total;
}
""",
    "reverse_in_place": """
void reverse_in_place(int* v, int n) {
  int lo = 0;
  int hi = n - 1;
  while (lo < hi) {
    int tmp = v[lo];
    v[lo] = v[hi];
    v[hi] = tmp;
    lo++;
    hi--;
  }
}
""",
    "two_pointer_sum": """
int two_pointer_sum(int* v, int n, int target) {
  int lo = 0;
  int hi = n - 1;
  int hits = 0;
  while (lo < hi) {
    int s = v[lo] + v[hi];
    if (s == target) { hits++; lo++; hi--; }
    else if (s < target) { lo++; }
    else { hi--; }
  }
  return hits;
}
""",
    "vector_add": """
void vector_add(int* a, int* b, int* c, int n) {
  int i;
  for (i = 0; i < n; i++) {
    c[i] = a[i] + b[i];
  }
}
""",
    "dot_product": """
int dot_product(int* a, int* b, int n) {
  int total = 0;
  int i;
  for (i = 0; i < n; i++) total += a[i] * b[i];
  return total;
}
""",
    "stencil3": """
void stencil3(int* src, int* dst, int n) {
  int i;
  for (i = 1; i < n - 1; i++) {
    dst[i] = (src[i - 1] + src[i] + src[i + 1]) / 3;
  }
}
""",
    "prefix_sum": """
void prefix_sum(int* v, int n) {
  int i;
  for (i = 1; i < n; i++) {
    v[i] = v[i] + v[i - 1];
  }
}
""",
    "histogram": """
void histogram(int* values, int n, int* bins, int nbins) {
  int i;
  for (i = 0; i < n; i++) {
    int b = values[i] % nbins;
    if (b < 0) b = 0 - b;
    bins[b] = bins[b] + 1;
  }
}
""",
    "binary_search": """
int binary_search(int* v, int n, int key) {
  int lo = 0;
  int hi = n;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (v[mid] < key) lo = mid + 1;
    else hi = mid;
  }
  return lo;
}
""",
    "find_max_index": """
int find_max_index(int* v, int n) {
  int best = 0;
  int i;
  for (i = 1; i < n; i++) {
    if (v[i] > v[best]) best = i;
  }
  return best;
}
""",
    "memcopy": """
void memcopy(int* dst, int* src, int n) {
  int i;
  for (i = 0; i < n; i++) dst[i] = src[i];
}
""",
    "sliding_window_max": """
int sliding_window_max(int* v, int n, int w) {
  int best = 0;
  int i, j;
  for (i = 0; i + w <= n; i++) {
    int local = v[i];
    for (j = i + 1; j < i + w; j++) {
      if (v[j] > local) local = v[j];
    }
    if (local > best) best = local;
  }
  return best;
}
""",
    # -- allocation-heavy code (where BA is strong) -----------------------------------
    "alloc_buffers": """
int alloc_buffers(int n) {
  int* a = malloc(n);
  int* b = malloc(n);
  int* c = malloc(n);
  int i;
  for (i = 0; i < n; i++) {
    a[i] = i;
    b[i] = i * 2;
    c[i] = a[i] + b[i];
  }
  return c[n - 1];
}
""",
    "queue_simulation": """
int queue_simulation(int n) {
  int* ring = malloc(n);
  int head = 0;
  int tail = 0;
  int produced = 0;
  int consumed = 0;
  while (produced < n) {
    ring[tail] = produced;
    tail = (tail + 1) % n;
    produced++;
    if (produced % 3 == 0) {
      consumed += ring[head];
      head = (head + 1) % n;
    }
  }
  return consumed;
}
""",
    "matrix_row_sum": """
int matrix_row_sum(int* m, int rows, int cols, int* out) {
  int r, c;
  int total = 0;
  for (r = 0; r < rows; r++) {
    int acc = 0;
    for (c = 0; c < cols; c++) {
      acc += m[r * cols + c];
    }
    out[r] = acc;
    total += acc;
  }
  return total;
}
""",
    "merge_sorted": """
void merge_sorted(int* a, int na, int* b, int nb, int* out) {
  int i = 0;
  int j = 0;
  int k = 0;
  while (i < na && j < nb) {
    if (a[i] <= b[j]) { out[k] = a[i]; i++; }
    else { out[k] = b[j]; j++; }
    k++;
  }
  while (i < na) { out[k] = a[i]; i++; k++; }
  while (j < nb) { out[k] = b[j]; j++; k++; }
}
""",
    "saxpy_calls": """
int scale(int a, int x) { return a * x; }
int saxpy_calls(int* x, int* y, int n, int a) {
  int i;
  int checksum = 0;
  for (i = 0; i < n; i++) {
    y[i] = scale(a, x[i]) + y[i];
    checksum += y[i];
  }
  return checksum;
}
""",
}


def kernel_names() -> List[str]:
    """Names of every available kernel, in a stable order."""
    return sorted(KERNEL_SOURCES)


def kernel_module(name: str) -> Module:
    """Compile the kernel ``name`` to an IR module."""
    if name not in KERNEL_SOURCES:
        raise KeyError("unknown kernel {!r}; available: {}".format(name, ", ".join(kernel_names())))
    return compile_source(KERNEL_SOURCES[name], module_name=name)
