"""Synthetic workloads for the evaluation harness.

The paper evaluates on SPEC CPU2006, the LLVM test-suite and Csmith-generated
programs — none of which can be redistributed or rebuilt offline.  This
package provides the substitutes (documented in ``DESIGN.md``):

* :mod:`repro.synth.kernels` — hand-written mini-C kernels that make heavy
  use of pointer arithmetic (the paper's Figure 1 programs among them);
* :mod:`repro.synth.csmith` — a random program generator in the spirit of
  Csmith, tuned the way the paper tunes it (single function plus ``main``,
  constant indices, configurable pointer nesting depth);
* :mod:`repro.synth.workloads` — benchmark suites assembled from the above:
  a 100-program "test-suite-like" collection of growing size and a
  16-program "SPEC-like" collection whose per-program mix of pointer
  arithmetic and allocation sites follows the profiles in
  :mod:`repro.synth.spec_profiles`.
"""

from repro.synth.kernels import KERNEL_SOURCES, kernel_module, kernel_names
from repro.synth.csmith import CsmithConfig, RandomProgramGenerator, generate_random_module
from repro.synth.workloads import (
    WorkloadProgram,
    build_spec_module,
    build_testsuite_programs,
    build_testsuite_sources,
    compose_source,
    spec_benchmarks,
    spec_sources,
)
from repro.synth.spec_profiles import SPEC_PROFILES, SpecProfile

__all__ = [
    "KERNEL_SOURCES",
    "kernel_module",
    "kernel_names",
    "CsmithConfig",
    "RandomProgramGenerator",
    "generate_random_module",
    "WorkloadProgram",
    "build_spec_module",
    "spec_benchmarks",
    "spec_sources",
    "build_testsuite_programs",
    "build_testsuite_sources",
    "compose_source",
    "SPEC_PROFILES",
    "SpecProfile",
]
