"""A Csmith-like random program generator.

The applicability experiment of the paper (Figure 12) uses Csmith to produce
120 random C programs with a single function (plus ``main``), an average of
six static allocation sites, compile-time-constant indices and a pointer
nesting depth swept from 2 to 7.  This module generates mini-C programs with
exactly those characteristics.  The generator is deterministic for a given
seed so the benchmark harness is reproducible.

Generated programs are also *executable* (they only touch memory in bounds),
which the property-based tests exploit: they run the programs under the
reference interpreter and check the adequacy invariant of the less-than
analysis on the recorded traces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.frontend import compile_source
from repro.ir.module import Module

#: size of every local array the generator declares; indices are drawn well
#: below this bound so the programs never access memory out of bounds, even
#: after the bounded pointer walks the generator may emit.
ARRAY_SIZE = 64

#: maximum total distance a level-1 pointer may be walked forward; keeps all
#: accesses through walked pointers inside the arrays.
MAX_WALK = 8


@dataclass
class CsmithConfig:
    """Tuning knobs of the random program generator."""

    seed: int = 0
    #: pointer nesting depth (2..7 in the paper's experiment).
    pointer_depth: int = 2
    #: number of local arrays (static allocation sites); the paper reports an
    #: average of six per program.
    array_count: int = 6
    #: number of random statements in the body of the generated function.
    statement_count: int = 30
    #: number of small constant-bound loops to sprinkle in.
    loop_count: int = 2
    #: number of ``int*`` parameters of the work function.  Csmith-style
    #: closed programs use 0 (everything is a local array); the SPEC-like
    #: workloads use a few so that part of the memory traffic goes through
    #: incoming pointers, which the basic alias analysis cannot track.
    parameter_count: int = 0
    #: number of "streaming" loops that build a chain of derived pointers
    #: (``c0 = base + i; c1 = c0 + 1; ...``) — the lbm/milc-style pointer
    #: arithmetic that only the strict-inequality analysis disambiguates.
    chain_loops: int = 0
    #: length of each derived-pointer chain.
    chain_length: int = 4


class RandomProgramGenerator:
    """Generates one mini-C program per :class:`CsmithConfig`."""

    def __init__(self, config: CsmithConfig) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        self.arrays: List[str] = []           # local arrays and int* parameters
        self.parameters: List[str] = []
        self.pointers: List[List[str]] = []   # pointers[d] = names of depth d+1 pointers
        self.walked: dict = {}                # level-1 pointer name -> total forward walk

    # -- helpers --------------------------------------------------------------------
    def _const(self, lo: int = 0, hi: int = 15) -> int:
        return self.rng.randint(lo, hi)

    def _array(self) -> str:
        return self.rng.choice(self.arrays)

    def _pointer(self, depth: int) -> str:
        return self.rng.choice(self.pointers[depth - 1])

    def _deref_to_int_pointer(self, depth: int) -> str:
        """An expression of type ``int*`` obtained by dereferencing a deeper pointer."""
        name = self._pointer(depth)
        return "(" + "*" * (depth - 1) + name + ")"

    # -- program pieces ----------------------------------------------------------------
    def _declarations(self) -> List[str]:
        lines: List[str] = []
        # Incoming pointer parameters behave like arrays for indexing purposes.
        self.arrays.extend(self.parameters)
        for index in range(self.config.array_count):
            name = "arr{}".format(index)
            self.arrays.append(name)
            lines.append("  int {}[{}];".format(name, ARRAY_SIZE))
        # Depth-1 pointers are derived from arrays with constant offsets.
        level1: List[str] = []
        for index in range(max(2, self.config.array_count // 2)):
            name = "p1_{}".format(index)
            level1.append(name)
            lines.append("  int* {} = {} + {};".format(name, self._array(), self._const(0, 4)))
        self.pointers.append(level1)
        # Deeper pointers take the address of the previous level.
        for depth in range(2, self.config.pointer_depth + 1):
            level: List[str] = []
            for index in range(2):
                name = "p{}_{}".format(depth, index)
                level.append(name)
                target = self._pointer(depth - 1)
                lines.append("  int{} {} = &{};".format("*" * depth, name, target))
            self.pointers.append(level)
        return lines

    def _statement(self) -> str:
        choice = self.rng.randrange(6)
        if choice == 0:
            # Constant-index store into an array.
            return "  {}[{}] = {};".format(self._array(), self._const(), self._const(0, 99))
        if choice == 1:
            # Constant-index store through a level-1 pointer.  The index stays
            # small enough that even a fully walked pointer remains in bounds.
            return "  {}[{}] = {}[{}] + {};".format(
                self._pointer(1), self._const(0, 15),
                self._array(), self._const(), self._const(0, 9))
        if choice == 2:
            # Store through a dereferenced deep pointer (constant index).
            depth = self.rng.randint(2, self.config.pointer_depth)
            return "  {}[{}] = {};".format(
                self._deref_to_int_pointer(depth), self._const(0, 4), self._const(0, 99))
        if choice == 3:
            # Accumulate a read into the checksum.
            return "  checksum += {}[{}];".format(self._array(), self._const())
        if choice == 4:
            # Read through a deep pointer.
            depth = self.rng.randint(2, self.config.pointer_depth)
            return "  checksum += {}[{}];".format(self._deref_to_int_pointer(depth), self._const(0, 4))
        # Derived-pointer chain: walk a level-1 pointer forward by a constant,
        # bounded so that later constant-index accesses stay inside the array.
        name = self._pointer(1)
        step = self._const(1, 2)
        if self.walked.get(name, 0) + step > MAX_WALK:
            return "  {}[{}] = {};".format(self._array(), self._const(), self._const(0, 99))
        self.walked[name] = self.walked.get(name, 0) + step
        return "  {0} = {0} + {1};".format(name, step)

    def _loop(self, index: int) -> List[str]:
        """A small constant-bound loop reading and writing one array.

        The first two loops of every program are pinned to the shapes that
        matter most for the evaluation — a two-index loop (the paper's
        motivating pattern) and a stencil over consecutive elements — so that
        every generated program contains accesses whose independence only the
        strict-inequality analysis can establish.  Subsequent loops pick a
        shape at random.

        Each loop works on its own dedicated array (an extra allocation
        site): mixing variable-index and constant-index accesses to the same
        array would collapse them into a single memory node regardless of the
        analysis, hiding the effect the experiment measures.
        """
        array = "larr{}".format(index)
        other = self._array()
        bound = self.rng.randint(4, 15)
        var = "i{}".format(index)
        if index == 0:
            body_kind = 1
        elif index == 1:
            body_kind = 3
        else:
            body_kind = self.rng.randrange(4)
        lines = ["  int {}[{}];".format(array, ARRAY_SIZE), "  int {};".format(var)]
        if body_kind == 0:
            lines.append("  for ({0} = 0; {0} < {1}; {0}++) {{".format(var, bound))
            lines.append("    {0}[{1}] = {0}[{1}] + {2};".format(array, var, self._const(1, 5)))
            lines.append("  }")
        elif body_kind == 1:
            # Two-index loop walking the array from both ends (the paper's
            # motivating pattern, which only LT disambiguates).
            var_hi = "j{}".format(index)
            lines.append("  int {};".format(var_hi))
            lines.append("  for ({0} = 0, {1} = {2}; {0} < {1}; {0}++, {1}--) {{".format(
                var, var_hi, bound))
            lines.append("    {0}[{1}] = {0}[{2}];".format(array, var, var_hi))
            lines.append("  }")
        elif body_kind == 3:
            # Stencil over consecutive elements: v[i], v[t1], v[t2], ... where
            # t1 = i + 1, t2 = t1 + 1, ...  The chained index variables give
            # the less-than analysis a strict order over every pair of
            # offsets, so it can separate all the accesses; the basic analysis
            # sees variable offsets off the same base and separates none.
            width = self.rng.randint(3, 5)
            lines.append("  for ({0} = 0; {0} < {1}; {0}++) {{".format(var, bound))
            previous = var
            temps = []
            for step in range(1, width + 1):
                temp = "t{}_{}".format(index, step)
                lines.append("    int {} = {} + 1;".format(temp, previous))
                temps.append(temp)
                previous = temp
            terms = " + ".join("{}[{}]".format(array, temp) for temp in temps)
            lines.append("    {0}[{1}] = {2};".format(array, var, terms))
            lines.append("  }")
        else:
            lines.append("  for ({0} = 0; {0} < {1}; {0}++) {{".format(var, bound))
            lines.append("    {0}[{1}] = {2}[{1}] + 1;".format(array, var, other))
            lines.append("  }")
        return lines

    def _chain_loop(self, index: int) -> List[str]:
        """A streaming loop building a chain of derived pointers off one base.

        All pointers of the chain are strictly ordered (each is the previous
        one plus one), and the base is preferably an incoming parameter, so
        only the less-than analysis can prove the accesses independent.
        """
        base = self.rng.choice(self.parameters) if self.parameters else self._array()
        bound = self.rng.randint(4, 15)
        var = "s{}".format(index)
        lines = ["  int {};".format(var)]
        lines.append("  for ({0} = 0; {0} < {1}; {0}++) {{".format(var, bound))
        previous = None
        for link in range(self.config.chain_length):
            name = "c{}_{}".format(index, link)
            if previous is None:
                lines.append("    int* {} = {} + {};".format(name, base, var))
            else:
                lines.append("    int* {} = {} + 1;".format(name, previous))
            previous = name
        first = "c{}_0".format(index)
        last = previous
        lines.append("    *{} = *{} + *{};".format(first, last, first))
        lines.append("  }")
        return lines

    # -- entry points --------------------------------------------------------------------
    def generate_source(self) -> str:
        """Produce the program text: one work function plus ``main``."""
        self.arrays = []
        self.pointers = []
        self.walked = {}
        self.parameters = ["q{}".format(i) for i in range(self.config.parameter_count)]
        signature = ", ".join("int* {}".format(name) for name in self.parameters)
        lines: List[str] = ["int work({}) {{".format(signature), "  int checksum = 0;"]
        lines.extend(self._declarations())
        for index in range(self.config.loop_count):
            lines.extend(self._loop(index))
        for index in range(self.config.chain_loops):
            lines.extend(self._chain_loop(index))
        for _ in range(self.config.statement_count):
            lines.append(self._statement())
        lines.append("  return checksum;")
        lines.append("}")
        lines.append("")
        lines.append("int main() {")
        for index in range(self.config.parameter_count):
            lines.append("  int buf{}[{}];".format(index, ARRAY_SIZE))
        call_args = ", ".join("buf{}".format(i) for i in range(self.config.parameter_count))
        lines.append("  return work({});".format(call_args))
        lines.append("}")
        return "\n".join(lines) + "\n"

    def generate_module(self, name: Optional[str] = None) -> Module:
        source = self.generate_source()
        module_name = name or "csmith_seed{}_depth{}".format(
            self.config.seed, self.config.pointer_depth)
        return compile_source(source, module_name=module_name)


def generate_random_module(seed: int, pointer_depth: int = 2,
                           statement_count: int = 30, loop_count: int = 2,
                           array_count: int = 6) -> Module:
    """One-call convenience wrapper used by benchmarks and tests."""
    config = CsmithConfig(seed=seed, pointer_depth=pointer_depth,
                          array_count=array_count,
                          statement_count=statement_count, loop_count=loop_count)
    return RandomProgramGenerator(config).generate_module()
