"""Chrome trace-event export for :class:`~repro.obs.timeline.Timeline`.

Emits the JSON-object flavour of the Trace Event Format — a top-level
``{"traceEvents": [...]}`` — loadable in ``about:tracing`` and Perfetto.
Each span becomes a complete event (``"ph": "X"``) with microsecond
``ts``/``dur``; each lane becomes a thread, named via ``"ph": "M"``
``thread_name`` metadata so the UI shows ``main`` and ``worker-<pid>``
rows.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping

from repro.obs.timeline import MAIN_LANE, Timeline

#: a single logical process groups all lanes in the trace viewer.
TRACE_PID = 1


def to_chrome_trace(timeline: Timeline) -> Dict[str, object]:
    """The timeline as a Chrome trace-event JSON object."""
    lane_tids: Dict[str, int] = {}
    for lane in timeline.lanes():
        # main gets tid 0; worker lanes follow in sorted order.
        lane_tids[lane] = 0 if lane == MAIN_LANE else len(lane_tids) + (
            0 if MAIN_LANE in lane_tids else 1)
    events: List[Dict[str, object]] = []
    for lane, tid in lane_tids.items():
        events.append({
            "ph": "M",
            "pid": TRACE_PID,
            "tid": tid,
            "name": "thread_name",
            "args": {"name": lane},
        })
    for span in timeline:
        events.append({
            "ph": "X",
            "pid": TRACE_PID,
            "tid": lane_tids[str(span["lane"])],
            "name": str(span["name"]),
            "ts": float(span["ts"]) * 1e6,
            "dur": float(span["dur"]) * 1e6,
            "args": dict(span.get("args") or {}),
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, timeline: Timeline) -> int:
    """Write the trace JSON to ``path``; returns the span count."""
    payload = to_chrome_trace(timeline)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return len(timeline)


def validate_chrome_trace(payload: Mapping[str, object]) -> List[str]:
    """Schema-check a trace payload; returns problems (empty = valid).

    Covers the subset of the Trace Event Format this exporter emits, which
    is also what the CI tracing leg asserts: a ``traceEvents`` list whose
    entries carry a known ``ph``, string ``name``, integer ``pid``/``tid``,
    and — for complete events — non-negative numeric ``ts``/``dur``.
    """
    problems: List[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    for index, event in enumerate(events):
        where = "traceEvents[{}]".format(index)
        if not isinstance(event, Mapping):
            problems.append("{}: not an object".format(where))
            continue
        phase = event.get("ph")
        if phase not in ("X", "B", "E", "M", "C", "i", "I"):
            problems.append("{}: unknown ph {!r}".format(where, phase))
        if not isinstance(event.get("name"), str):
            problems.append("{}: name is not a string".format(where))
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append("{}: {} is not an int".format(where, key))
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or isinstance(
                        value, bool) or value < 0:
                    problems.append(
                        "{}: {} is not a non-negative number".format(
                            where, key))
        args = event.get("args", {})
        if not isinstance(args, Mapping):
            problems.append("{}: args is not an object".format(where))
    return problems
