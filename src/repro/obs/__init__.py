"""repro.obs — the observability plane: tracing, metrics, timelines.

Importable from every layer (it depends only on the stdlib).  The usual
entry point is the process-wide :data:`TRACER`::

    from repro.obs import TRACER

    with TRACER.span("essa.transform", fn=function.name):
        ...

See :mod:`repro.obs.tracer` for the span/timer semantics,
:mod:`repro.obs.timeline` for merged shard timelines, and
:mod:`repro.obs.chrome` for the ``--trace`` Chrome trace-event export.
"""

from repro.obs.chrome import (to_chrome_trace, validate_chrome_trace,
                              write_chrome_trace)
from repro.obs.timeline import MAIN_LANE, Timeline
from repro.obs.tracer import (NOOP_SPAN, MetricsRegistry, Span, Timer,
                              Tracer, TRACER)

__all__ = [
    "TRACER",
    "Tracer",
    "Span",
    "Timer",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Timeline",
    "MAIN_LANE",
    "to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
]
