"""Phase-scoped tracing: spans, always-on timers and the metrics registry.

The instrument plane of the pipeline.  Every layer (frontend, mem2reg,
e-SSA, both fixed-point solvers, the disambiguator, the execution engine)
opens *spans* around its phases::

    from repro.obs import TRACER

    with TRACER.span("range.solve", fn=function.name):
        ...

Spans nest: the tracer keeps a stack, so each finished span records its
depth and its *self* time (duration minus the time spent in child spans).
The buffer of finished spans is a list of plain picklable dicts — worker
processes drain it into their result payloads and the coordinator merges
the shards onto one :class:`~repro.obs.timeline.Timeline` with per-worker
lanes.

**The disabled path is a no-op costing one attribute check.**  When
``TRACER.enabled`` is false, :meth:`Tracer.span` returns a shared singleton
whose ``__enter__``/``__exit__`` do nothing: no clock reads, no
allocation, no buffer growth.  That is the contract the solver hot-path
benchmark gates (disabled tracing within 2% of an uninstrumented run).

:meth:`Tracer.timer` is the *always-on* variant: it measures wall time
whether or not tracing is enabled (and additionally records a span when it
is).  The solvers route their ``solve_time_seconds`` statistics through it,
so timing collection has exactly one home — and wall times stay out of
verdict payloads, which is what keeps ``eval --json`` output byte-identical
between traced and untraced runs.

This module imports nothing from the rest of the package (like
:mod:`repro.api.config`), so any layer may depend on it without cycles.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Sequence


class _NoopSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    #: mirrors :attr:`Span.duration` so callers may read it unconditionally.
    duration = 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *_exc: object) -> bool:
        return False

    def annotate(self, **_attrs: object) -> None:
        """Discard attributes (the enabled span attaches them)."""


NOOP_SPAN = _NoopSpan()


class Span:
    """One phase-scoped measurement, used as a context manager.

    On exit the span appends a plain-dict record to its tracer's buffer:
    ``name``, ``ts`` (start, process-local ``perf_counter`` seconds),
    ``dur``, ``self`` (duration minus child-span time), ``depth`` and
    ``args`` (the keyword attributes given to :meth:`Tracer.span`).
    """

    __slots__ = ("_tracer", "name", "args", "start", "duration",
                 "_child_seconds", "_depth")

    def __init__(self, tracer: "Tracer", name: str,
                 args: Dict[str, object]) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self.start = 0.0
        self.duration = 0.0
        self._child_seconds = 0.0
        self._depth = 0

    def annotate(self, **attrs: object) -> None:
        """Attach attributes discovered mid-phase (e.g. result counts)."""
        self.args.update(attrs)

    def __enter__(self) -> "Span":
        stack = self._tracer._stack
        self._depth = len(stack)
        stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *_exc: object) -> bool:
        end = time.perf_counter()
        self.duration = end - self.start
        tracer = self._tracer
        stack = tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # pragma: no cover - unbalanced exits
            stack.remove(self)
        if stack:
            stack[-1]._child_seconds += self.duration
        tracer._spans.append({
            "name": self.name,
            "ts": self.start,
            "dur": self.duration,
            "self": max(self.duration - self._child_seconds, 0.0),
            "depth": self._depth,
            "args": self.args,
        })
        return False


class Timer:
    """An always-on stopwatch, optionally recording a span.

    ``seconds`` is measured with ``perf_counter`` regardless of the tracer
    state, so statistics that must survive untraced runs (the solvers'
    ``solve_time_seconds``) keep working; when tracing is enabled the
    wrapped span lands in the buffer too.
    """

    __slots__ = ("seconds", "_span", "_start")

    def __init__(self, span: object) -> None:
        self._span = span
        self._start = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "Timer":
        self._span.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.seconds = time.perf_counter() - self._start
        return bool(self._span.__exit__(*exc))


class MetricsRegistry:
    """One home for counters and gauges across the whole pipeline.

    Absorbs the pre-existing counter families — fixed-point
    :class:`~repro.util.worklist.SolverInfo` counters, analysis-store
    ``hits``/``misses``, :class:`~repro.passes.analysis_cache.
    CacheStatistics` — into flat dot-named counters so dashboards and
    :meth:`repro.api.session.Session.metrics` read one registry instead of
    four ad-hoc structs.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}

    def add(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def absorb(self, prefix: str, mapping: Mapping[str, object]) -> None:
        """Fold a statistics dict in as ``prefix.key`` counters.

        Nested dicts recurse (``solver.pops.scc``); non-numeric leaves and
        ratio-style floats computed elsewhere are kept as gauges when the
        key ends in ``_ratio``/``_rate``, counters otherwise.
        """
        for key, value in mapping.items():
            name = "{}.{}".format(prefix, key)
            if isinstance(value, Mapping):
                self.absorb(name, value)
            elif isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            elif key.endswith(("_ratio", "_rate")):
                self.set_gauge(name, float(value))
            else:
                self.add(name, value)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
        }

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()


class Tracer:
    """The process-wide tracer: span factory, buffer and metrics registry.

    One instance (:data:`TRACER`) exists per process.  ``enabled`` starts
    false; the :class:`~repro.api.session.Session` enables it when its
    config carries a ``trace`` path, the CLI enables it for
    ``stats --timings``, and worker processes enable it from the shipped
    coordinator config in their pool initializer.
    """

    __slots__ = ("enabled", "metrics", "_spans", "_stack", "_epoch")

    def __init__(self) -> None:
        self.enabled = False
        self.metrics = MetricsRegistry()
        self._spans: List[Dict[str, object]] = []
        self._stack: List[Span] = []
        self._epoch: Optional[float] = None

    # -- recording ---------------------------------------------------------------
    def span(self, name: str, **attrs: object):
        """A context manager timing one phase; shared no-op when disabled."""
        if not self.enabled:
            return NOOP_SPAN
        return Span(self, name, attrs)

    def timer(self, name: str, **attrs: object) -> Timer:
        """An always-measuring :class:`Timer` (span recorded when enabled)."""
        if not self.enabled:
            return Timer(NOOP_SPAN)
        return Timer(Span(self, name, attrs))

    def count(self, name: str, value: float = 1) -> None:
        """Bump a registry counter (dropped while disabled)."""
        if self.enabled:
            self.metrics.add(name, value)

    # -- lifecycle ---------------------------------------------------------------
    def enable(self) -> None:
        """Start a fresh capture (clears the buffer and the registry)."""
        if not self.enabled:
            self.reset()
            self.enabled = True

    def disable(self) -> None:
        """Stop recording; the captured buffer stays readable."""
        self.enabled = False

    def reset(self) -> None:
        self._spans = []
        self._stack = []
        self.metrics.clear()

    @contextmanager
    def suppress(self) -> Iterator[None]:
        """Stop recording for a ``with`` block, restoring the previous state.

        The self-check suite re-drives production code paths (the
        disambiguator's pair queries) purely as an oracle; suppressing
        around those calls keeps a verified run's captured timeline
        span-identical to an unverified one.  Spans already open keep
        recording — only spans *started* inside the block are dropped.
        """
        was_enabled = self.enabled
        self.enabled = False
        try:
            yield
        finally:
            self.enabled = was_enabled

    @contextmanager
    def capture(self) -> Iterator["Tracer"]:
        """Enable for a ``with`` block, disabling (buffer kept) on exit."""
        was_enabled = self.enabled
        self.enable()
        try:
            yield self
        finally:
            if not was_enabled:
                self.disable()

    # -- the shard protocol --------------------------------------------------------
    def clock_epoch(self) -> float:
        """This process's wall-clock anchor: ``time.time() - perf_counter()``.

        Captured once per process so every span batch a worker ships uses
        the same offset — which is what keeps per-lane timestamps monotonic
        after the coordinator merges shard buffers.
        """
        if self._epoch is None:
            self._epoch = time.time() - time.perf_counter()
        return self._epoch

    def drain(self) -> List[Dict[str, object]]:
        """Detach and return the finished-span buffer (worker-side shipping)."""
        spans, self._spans = self._spans, []
        return spans

    def absorb_shard(self, spans: Sequence[Mapping[str, object]], lane: str,
                     epoch: Optional[float] = None) -> None:
        """Merge a worker's drained span buffer into this tracer's buffer.

        ``lane`` names the timeline lane (``worker-<pid>``); ``epoch`` is the
        worker's :meth:`clock_epoch`, used to rebase its process-local
        timestamps onto this process's clock so one merged timeline stays
        coherent.  The same-lane relative order is preserved exactly.
        """
        if not self.enabled or not spans:
            return
        offset = 0.0
        if epoch is not None:
            offset = epoch - self.clock_epoch()
        for span in spans:
            record = dict(span)
            record["ts"] = float(record.get("ts", 0.0)) + offset
            record["lane"] = lane
            self._spans.append(record)

    # -- views -------------------------------------------------------------------
    def spans(self) -> List[Dict[str, object]]:
        """A snapshot of the finished-span buffer (records are shared)."""
        return list(self._spans)

    def timeline(self):
        """The captured buffer as a :class:`~repro.obs.timeline.Timeline`."""
        from repro.obs.timeline import Timeline

        return Timeline(self._spans)

    def __repr__(self) -> str:
        return "<Tracer enabled={} spans={}>".format(
            self.enabled, len(self._spans))


#: the process-wide tracer every instrumentation site imports.
TRACER = Tracer()
