"""Merged span timelines: per-phase summaries and per-lane skew.

A :class:`Timeline` is the coordinator-side view of the span records
captured by :class:`~repro.obs.tracer.Tracer` — including shard buffers
shipped back from worker processes, which land on distinct *lanes*
(``worker-<pid>``; locally recorded spans sit on the ``main`` lane).

The merge rules mirror ``DisambiguationStatistics.merge``: combining two
timelines is lossless concatenation followed by a deterministic sort on
``(lane, ts, name)``, so merging the same shards in any arrival order
produces the same timeline.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

MAIN_LANE = "main"


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = max(int(math.ceil(q / 100.0 * len(sorted_values))), 1)
    return sorted_values[min(rank, len(sorted_values)) - 1]


class Timeline:
    """An ordered collection of finished span records.

    Records are the plain dicts the tracer buffers (``name``/``ts``/
    ``dur``/``self``/``depth``/``args`` plus an optional ``lane``).  The
    constructor copies and normalises: every record gets a ``lane`` key and
    the collection is sorted by ``(lane, ts, name)`` so downstream output
    (Chrome export, the ``stats --timings`` table) is deterministic.
    """

    def __init__(self, spans: Optional[Iterable[Mapping[str, object]]] = None
                 ) -> None:
        records: List[Dict[str, object]] = []
        for span in spans or ():
            record = dict(span)
            record.setdefault("lane", MAIN_LANE)
            records.append(record)
        records.sort(key=lambda r: (str(r["lane"]), float(r["ts"]),
                                    str(r["name"])))
        self.spans = records

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Dict[str, object]]:
        return iter(self.spans)

    def merge(self, other: "Timeline") -> "Timeline":
        """A new timeline holding both span sets (order-independent)."""
        return Timeline(self.spans + other.spans)

    # -- views -------------------------------------------------------------------
    def lanes(self) -> List[str]:
        """Lane names, ``main`` first, workers in sorted order after."""
        names = {str(span["lane"]) for span in self.spans}
        ordered = sorted(names - {MAIN_LANE})
        return ([MAIN_LANE] if MAIN_LANE in names else []) + ordered

    def phases(self) -> List[str]:
        """Distinct span names, sorted."""
        return sorted({str(span["name"]) for span in self.spans})

    def phase_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-phase aggregates: count, total/self seconds, min/max/p50/p99."""
        grouped: Dict[str, List[float]] = {}
        selves: Dict[str, float] = {}
        for span in self.spans:
            name = str(span["name"])
            grouped.setdefault(name, []).append(float(span["dur"]))
            selves[name] = selves.get(name, 0.0) + float(span.get(
                "self", span["dur"]))
        summary: Dict[str, Dict[str, float]] = {}
        for name, durs in grouped.items():
            durs.sort()
            summary[name] = {
                "count": len(durs),
                "total": sum(durs),
                "self": selves[name],
                "min": durs[0],
                "max": durs[-1],
                "p50": _percentile(durs, 50.0),
                "p99": _percentile(durs, 99.0),
            }
        return summary

    def lane_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-lane busy time (sum of top-level span durations) and skew.

        ``skew`` is ``max/min`` across lanes' busy time (1.0 when balanced;
        reported on every lane for table convenience).  Only depth-0 spans
        count so nested phases aren't double-billed.
        """
        busy: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for span in self.spans:
            lane = str(span["lane"])
            counts[lane] = counts.get(lane, 0) + 1
            if int(span.get("depth", 0)) == 0:
                busy[lane] = busy.get(lane, 0.0) + float(span["dur"])
        if not counts:
            return {}
        values = [busy.get(lane, 0.0) for lane in counts]
        low, high = min(values), max(values)
        skew = (high / low) if low > 0 else float("inf") if high > 0 else 1.0
        return {
            lane: {
                "spans": counts[lane],
                "busy": busy.get(lane, 0.0),
                "min": low,
                "max": high,
                "skew": skew,
            }
            for lane in sorted(counts)
        }

    def timing_rows(self) -> List[Dict[str, object]]:
        """`stats --timings` table rows, slowest phase (by total) first."""
        summary = self.phase_summary()
        rows = [dict(stats, phase=name) for name, stats in summary.items()]
        rows.sort(key=lambda row: (-float(row["total"]), str(row["phase"])))
        return rows
