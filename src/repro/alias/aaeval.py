"""The alias-analysis evaluator (LLVM's ``aa-eval`` pass).

The evaluation methodology of the paper is built on ``aa-eval``: within each
function, every pair of pointer values is queried and the analysis is scored
by the fraction of pairs it reports as NoAlias.  This module reimplements
that harness: it collects the pointer values of a function, issues one query
per unordered pair, and aggregates verdict counts per function, per module
and per benchmark suite.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.alias.interface import AliasAnalysis
from repro.alias.results import AliasResult, MemoryLocation
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.module import Module
from repro.ir.values import Argument, Value


class AliasEvaluation:
    """Aggregated verdict counts for a set of alias queries."""

    def __init__(self) -> None:
        self.no_alias = 0
        self.may_alias = 0
        self.partial_alias = 0
        self.must_alias = 0

    @property
    def total_queries(self) -> int:
        return self.no_alias + self.may_alias + self.partial_alias + self.must_alias

    @property
    def no_alias_ratio(self) -> float:
        total = self.total_queries
        return self.no_alias / total if total else 0.0

    def record(self, result: AliasResult) -> None:
        if result is AliasResult.NO_ALIAS:
            self.no_alias += 1
        elif result is AliasResult.MUST_ALIAS:
            self.must_alias += 1
        elif result is AliasResult.PARTIAL_ALIAS:
            self.partial_alias += 1
        else:
            self.may_alias += 1

    def merge(self, other: "AliasEvaluation") -> "AliasEvaluation":
        merged = AliasEvaluation()
        merged.no_alias = self.no_alias + other.no_alias
        merged.may_alias = self.may_alias + other.may_alias
        merged.partial_alias = self.partial_alias + other.partial_alias
        merged.must_alias = self.must_alias + other.must_alias
        return merged

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "AliasEvaluation":
        """Rebuild an evaluation from :meth:`as_dict` output.

        Only the four verdict counters are read; derived fields (``queries``,
        ``no_alias_ratio``) are recomputed.  This is the deserialization hook
        of the cross-process engine, whose workers ship verdict counts between
        processes as plain dictionaries.
        """
        evaluation = cls()
        evaluation.no_alias = int(data.get("no_alias", 0))
        evaluation.may_alias = int(data.get("may_alias", 0))
        evaluation.partial_alias = int(data.get("partial_alias", 0))
        evaluation.must_alias = int(data.get("must_alias", 0))
        return evaluation

    def as_dict(self) -> Dict[str, float]:
        return {
            "queries": self.total_queries,
            "no_alias": self.no_alias,
            "may_alias": self.may_alias,
            "partial_alias": self.partial_alias,
            "must_alias": self.must_alias,
            "no_alias_ratio": self.no_alias_ratio,
        }

    def __repr__(self) -> str:
        return "<AliasEvaluation queries={} no-alias={} ({:.1%})>".format(
            self.total_queries, self.no_alias, self.no_alias_ratio)


def collect_pointer_values(function: Function) -> List[Value]:
    """Every pointer-typed SSA value of ``function`` (arguments first)."""
    pointers: List[Value] = []
    for argument in function.arguments:
        if argument.type.is_pointer():
            pointers.append(argument)
    for inst in function.instructions():
        if inst.produces_value() and inst.type.is_pointer():
            pointers.append(inst)
    return pointers


def collect_memory_locations(function: Function,
                             size: Optional[int] = 1) -> List[MemoryLocation]:
    """One reusable :class:`MemoryLocation` per pointer value of ``function``.

    The seed evaluator allocated a fresh location per *pair* (O(n²)
    allocations); building them once here and passing the list to
    :func:`alias_many` / :meth:`AliasAnalysis.alias_many` is the batched fast
    path.
    """
    return [MemoryLocation(pointer, size)
            for pointer in collect_pointer_values(function)]


def alias_many(analysis: AliasAnalysis,
               locations: Sequence[MemoryLocation]) -> AliasEvaluation:
    """Aggregate the verdicts of every unordered pair of ``locations``."""
    evaluation = AliasEvaluation()
    # Tally with local counters: one attribute store per batch instead of a
    # method call per pair (this loop runs O(n²) times per function).
    no = may = partial = must = 0
    no_verdict = AliasResult.NO_ALIAS
    must_verdict = AliasResult.MUST_ALIAS
    partial_verdict = AliasResult.PARTIAL_ALIAS
    for _i, _j, verdict in analysis.alias_many(locations):
        if verdict is no_verdict:
            no += 1
        elif verdict is must_verdict:
            must += 1
        elif verdict is partial_verdict:
            partial += 1
        else:
            may += 1
    evaluation.no_alias = no
    evaluation.may_alias = may
    evaluation.partial_alias = partial
    evaluation.must_alias = must
    return evaluation


def evaluate_function_verdicts(function: Function, analysis: AliasAnalysis,
                               size: Optional[int] = 1) -> "Tuple[AliasEvaluation, str]":
    """Like :func:`evaluate_function`, but also record the verdict stream.

    Returns ``(evaluation, codes)`` where ``codes`` is one
    :attr:`AliasResult.code` character per unordered pair in ``(i, j)``
    iteration order.  The code string is what the cross-process engine
    persists and compares to certify that sharded and store-warmed runs are
    bit-identical to the serial path.
    """
    analysis.prepare_function(function)
    locations = collect_memory_locations(function, size)
    evaluation = AliasEvaluation()
    codes: List[str] = []
    for _i, _j, verdict in analysis.alias_many(locations):
        evaluation.record(verdict)
        codes.append(verdict.code)
    return evaluation, "".join(codes)


def evaluate_function(function: Function, analysis: AliasAnalysis,
                      size: Optional[int] = 1) -> AliasEvaluation:
    """Query every unordered pair of pointer values of ``function``.

    Locations are constructed once and the batched
    :meth:`AliasAnalysis.alias_many` entry point is used, which yields
    verdicts identical to the pair-by-pair loop.
    """
    analysis.prepare_function(function)
    return alias_many(analysis, collect_memory_locations(function, size))


def evaluate_module(module: Module, analysis: AliasAnalysis,
                    size: Optional[int] = 1) -> AliasEvaluation:
    """Evaluate every defined function of ``module`` and sum the counts."""
    evaluation = AliasEvaluation()
    for function in module.defined_functions():
        evaluation = evaluation.merge(evaluate_function(function, analysis, size))
    return evaluation


class AliasEvaluator:
    """Convenience wrapper comparing several analyses on the same modules.

    Used by the benchmark harness: feed it named analyses, call
    :meth:`evaluate` per module (benchmark program), and read back one row
    per (module, analysis) pair.
    """

    def __init__(self, analyses: Dict[str, AliasAnalysis]) -> None:
        self.analyses = dict(analyses)
        self.rows: List[Dict[str, object]] = []

    def evaluate(self, name: str, module: Module) -> Dict[str, AliasEvaluation]:
        results: Dict[str, AliasEvaluation] = {}
        for label, analysis in self.analyses.items():
            results[label] = evaluate_module(module, analysis)
        row: Dict[str, object] = {"benchmark": name}
        for label, evaluation in results.items():
            row["{}_no_alias".format(label)] = evaluation.no_alias
            row["{}_ratio".format(label)] = evaluation.no_alias_ratio
        first = next(iter(results.values()))
        row["queries"] = first.total_queries
        self.rows.append(row)
        return results
