"""Type-based alias analysis.

The C standard's strict-aliasing rule says that an object may only be
accessed through an lvalue of a compatible type; compilers exploit it to
declare that pointers to different scalar types do not alias.  The paper
mentions the rule in Section 3.6 ("the C standard says that pointers of
different types cannot alias") as one of the complementary criteria.  This
tiny analysis implements exactly that check over our structural types.
"""

from __future__ import annotations

from repro.alias.interface import AliasAnalysis
from repro.alias.results import AliasResult, MemoryLocation
from repro.ir.types import PointerType


class TypeBasedAliasAnalysis(AliasAnalysis):
    """NoAlias for pointers whose pointee types are structurally different."""

    name = "tbaa"

    def alias(self, loc_a: MemoryLocation, loc_b: MemoryLocation) -> AliasResult:
        type_a = loc_a.pointer.type
        type_b = loc_b.pointer.type
        if not isinstance(type_a, PointerType) or not isinstance(type_b, PointerType):
            return AliasResult.MAY_ALIAS
        if type_a.pointee != type_b.pointee:
            return AliasResult.NO_ALIAS
        return AliasResult.MAY_ALIAS
