"""The abstract alias-analysis interface and the chaining combinator."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.alias.results import AliasResult, MemoryLocation
from repro.ir.function import Function


class AliasAnalysis:
    """Interface of every alias analysis in this project.

    Subclasses implement :meth:`alias`.  ``prepare_function`` is called once
    per function before queries are issued, which lets analyses that need a
    whole-function (or whole-module) precomputation build their data
    structures lazily.
    """

    name = "alias-analysis"

    def prepare_function(self, function: Function) -> None:
        """Hook called before queries about ``function`` are made."""

    def alias(self, loc_a: MemoryLocation, loc_b: MemoryLocation) -> AliasResult:
        raise NotImplementedError  # pragma: no cover - interface

    def alias_many(self, locations: Sequence[MemoryLocation],
                   mask: Optional[Sequence[Tuple[int, int]]] = None) \
            -> Iterator[Tuple[int, int, AliasResult]]:
        """Bulk query: yield ``(i, j, verdict)`` for every unordered pair.

        This is the batched entry point the ``aa-eval`` harness and the PDG
        builder drive: ``MemoryLocation`` objects are constructed once by the
        caller and reused across the whole O(n²) loop, and analyses whose
        per-query cost has a memoizable component (e.g. the strict-inequality
        analysis with its per-value tables) amortize it across the batch.
        Verdicts are identical to issuing :meth:`alias` pair by pair, in the
        same ``(i, j)`` iteration order.

        ``mask``, when given, restricts the batch to exactly those ``(i, j)``
        index pairs, yielded in the given order.  The chain combinator uses it
        to hand later members only the pairs earlier members left unresolved,
        so an expensive analysis never re-answers a query basicaa already
        settled.
        """
        if mask is not None:
            for i, j in mask:
                yield i, j, self.alias(locations[i], locations[j])
            return
        count = len(locations)
        for i in range(count):
            loc_i = locations[i]
            for j in range(i + 1, count):
                yield i, j, self.alias(loc_i, locations[j])

    # Convenience entry point used by tests and examples.
    def alias_values(self, a, b, size: Optional[int] = 1) -> AliasResult:
        return self.alias(MemoryLocation(a, size), MemoryLocation(b, size))

    def __repr__(self) -> str:
        return "<{} {}>".format(type(self).__name__, self.name)


class AliasAnalysisChain(AliasAnalysis):
    """Combine several analyses: the first definitive answer wins.

    This models the evaluation methodology of the paper, where the authors
    report ``BA``, ``LT``, ``BA + LT`` and ``BA + CF`` — each "+" being a
    chain that asks the basic analysis first and falls back to the other.
    """

    def __init__(self, analyses: Sequence[AliasAnalysis], name: Optional[str] = None) -> None:
        if not analyses:
            raise ValueError("an alias analysis chain needs at least one analysis")
        self.analyses: List[AliasAnalysis] = list(analyses)
        self.name = name or " + ".join(a.name for a in self.analyses)

    def prepare_function(self, function: Function) -> None:
        for analysis in self.analyses:
            analysis.prepare_function(function)

    def alias(self, loc_a: MemoryLocation, loc_b: MemoryLocation) -> AliasResult:
        result = AliasResult.MAY_ALIAS
        for analysis in self.analyses:
            result = result.merge(analysis.alias(loc_a, loc_b))
            if result is not AliasResult.MAY_ALIAS:
                return result
        return result

    def alias_many(self, locations: Sequence[MemoryLocation],
                   mask: Optional[Sequence[Tuple[int, int]]] = None) \
            -> Iterator[Tuple[int, int, AliasResult]]:
        """Mask-passing merge of the members' batched answers.

        The first member answers the whole batch; every later member is asked
        only about the pairs all earlier members answered MayAlias (the
        "unresolved" mask).  Merging follows :meth:`alias` exactly — the first
        definitive verdict in member order wins, and a resolved pair is never
        shown to later members — so verdicts and their ``(i, j)`` order are
        identical to the lockstep consumption of full streams, while the
        expensive members skip every pair basicaa already settled.
        """
        if mask is None:
            count = len(locations)
            pairs = [(i, j) for i in range(count) for j in range(i + 1, count)]
        else:
            pairs = [(i, j) for i, j in mask]
        may_alias = AliasResult.MAY_ALIAS
        verdicts: Dict[Tuple[int, int], AliasResult] = dict.fromkeys(pairs, may_alias)
        unresolved = pairs
        for analysis in self.analyses:
            if not unresolved:
                break
            remaining: List[Tuple[int, int]] = []
            for i, j, verdict in analysis.alias_many(locations, mask=unresolved):
                if verdict is may_alias:
                    remaining.append((i, j))
                else:
                    verdicts[(i, j)] = verdict
            unresolved = remaining
        for pair in pairs:
            yield pair[0], pair[1], verdicts[pair]
