"""The abstract alias-analysis interface and the chaining combinator."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.alias.results import AliasResult, MemoryLocation
from repro.ir.function import Function


class AliasAnalysis:
    """Interface of every alias analysis in this project.

    Subclasses implement :meth:`alias`.  ``prepare_function`` is called once
    per function before queries are issued, which lets analyses that need a
    whole-function (or whole-module) precomputation build their data
    structures lazily.
    """

    name = "alias-analysis"

    def prepare_function(self, function: Function) -> None:
        """Hook called before queries about ``function`` are made."""

    def alias(self, loc_a: MemoryLocation, loc_b: MemoryLocation) -> AliasResult:
        raise NotImplementedError  # pragma: no cover - interface

    # Convenience entry point used by tests and examples.
    def alias_values(self, a, b, size: Optional[int] = 1) -> AliasResult:
        return self.alias(MemoryLocation(a, size), MemoryLocation(b, size))

    def __repr__(self) -> str:
        return "<{} {}>".format(type(self).__name__, self.name)


class AliasAnalysisChain(AliasAnalysis):
    """Combine several analyses: the first definitive answer wins.

    This models the evaluation methodology of the paper, where the authors
    report ``BA``, ``LT``, ``BA + LT`` and ``BA + CF`` — each "+" being a
    chain that asks the basic analysis first and falls back to the other.
    """

    def __init__(self, analyses: Sequence[AliasAnalysis], name: Optional[str] = None) -> None:
        if not analyses:
            raise ValueError("an alias analysis chain needs at least one analysis")
        self.analyses: List[AliasAnalysis] = list(analyses)
        self.name = name or " + ".join(a.name for a in self.analyses)

    def prepare_function(self, function: Function) -> None:
        for analysis in self.analyses:
            analysis.prepare_function(function)

    def alias(self, loc_a: MemoryLocation, loc_b: MemoryLocation) -> AliasResult:
        result = AliasResult.MAY_ALIAS
        for analysis in self.analyses:
            result = result.merge(analysis.alias(loc_a, loc_b))
            if result is not AliasResult.MAY_ALIAS:
                return result
        return result
