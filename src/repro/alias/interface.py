"""The abstract alias-analysis interface and the chaining combinator."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.alias.results import AliasResult, MemoryLocation
from repro.ir.function import Function


class AliasAnalysis:
    """Interface of every alias analysis in this project.

    Subclasses implement :meth:`alias`.  ``prepare_function`` is called once
    per function before queries are issued, which lets analyses that need a
    whole-function (or whole-module) precomputation build their data
    structures lazily.
    """

    name = "alias-analysis"

    def prepare_function(self, function: Function) -> None:
        """Hook called before queries about ``function`` are made."""

    def alias(self, loc_a: MemoryLocation, loc_b: MemoryLocation) -> AliasResult:
        raise NotImplementedError  # pragma: no cover - interface

    def alias_many(self, locations: Sequence[MemoryLocation]) \
            -> Iterator[Tuple[int, int, AliasResult]]:
        """Bulk query: yield ``(i, j, verdict)`` for every unordered pair.

        This is the batched entry point the ``aa-eval`` harness and the PDG
        builder drive: ``MemoryLocation`` objects are constructed once by the
        caller and reused across the whole O(n²) loop, and analyses whose
        per-query cost has a memoizable component (e.g. the strict-inequality
        analysis with its per-value tables) amortize it across the batch.
        Verdicts are identical to issuing :meth:`alias` pair by pair, in the
        same ``(i, j)`` iteration order.
        """
        count = len(locations)
        for i in range(count):
            loc_i = locations[i]
            for j in range(i + 1, count):
                yield i, j, self.alias(loc_i, locations[j])

    # Convenience entry point used by tests and examples.
    def alias_values(self, a, b, size: Optional[int] = 1) -> AliasResult:
        return self.alias(MemoryLocation(a, size), MemoryLocation(b, size))

    def __repr__(self) -> str:
        return "<{} {}>".format(type(self).__name__, self.name)


class AliasAnalysisChain(AliasAnalysis):
    """Combine several analyses: the first definitive answer wins.

    This models the evaluation methodology of the paper, where the authors
    report ``BA``, ``LT``, ``BA + LT`` and ``BA + CF`` — each "+" being a
    chain that asks the basic analysis first and falls back to the other.
    """

    def __init__(self, analyses: Sequence[AliasAnalysis], name: Optional[str] = None) -> None:
        if not analyses:
            raise ValueError("an alias analysis chain needs at least one analysis")
        self.analyses: List[AliasAnalysis] = list(analyses)
        self.name = name or " + ".join(a.name for a in self.analyses)

    def prepare_function(self, function: Function) -> None:
        for analysis in self.analyses:
            analysis.prepare_function(function)

    def alias(self, loc_a: MemoryLocation, loc_b: MemoryLocation) -> AliasResult:
        result = AliasResult.MAY_ALIAS
        for analysis in self.analyses:
            result = result.merge(analysis.alias(loc_a, loc_b))
            if result is not AliasResult.MAY_ALIAS:
                return result
        return result

    def alias_many(self, locations: Sequence[MemoryLocation]) \
            -> Iterator[Tuple[int, int, AliasResult]]:
        """Merge the members' batched streams pair by pair.

        Every member iterates the same ``(i, j)`` sequence, so the streams
        are consumed in lockstep and merged exactly like :meth:`alias` does:
        the first definitive verdict in member order wins.
        """
        streams = [analysis.alias_many(locations) for analysis in self.analyses]
        for verdicts in zip(*streams):
            i, j, _ = verdicts[0]
            merged = AliasResult.MAY_ALIAS
            for _i, _j, verdict in verdicts:
                merged = merged.merge(verdict)
                if merged is not AliasResult.MAY_ALIAS:
                    break
            yield i, j, merged
