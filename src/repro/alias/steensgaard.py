"""Unification-based (Steensgaard-style) points-to analysis.

Provided as an additional classic baseline (the paper cites Steensgaard's
almost-linear-time analysis as one of the foundational approaches).  The
implementation is deliberately simple: points-to sets are merged with a
union-find whenever a copy-like constraint links two pointers, which makes
the analysis coarser but very fast — exactly the trade-off the original
algorithm makes.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.alias.interface import AliasAnalysis
from repro.alias.results import AliasResult, MemoryLocation
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    Call,
    Copy,
    GetElementPtr,
    Load,
    Malloc,
    Phi,
    Return,
    Store,
)
from repro.ir.module import Module
from repro.ir.values import Argument, GlobalVariable, Value
from repro.util.unionfind import UnionFind

#: abstract object for pointers whose origin is invisible to the module.
UNKNOWN = "<unknown>"


class SteensgaardPointsTo:
    """Computes unified alias classes for the pointers of a module."""

    def __init__(self, module: Module) -> None:
        self.module = module
        # Every pointer variable owns an abstract "pointee class"; copies
        # unify the pointee classes of their endpoints.
        self._pointee_class = UnionFind()
        self._class_objects: Dict[object, Set[object]] = {}
        self._build()

    # -- helpers --------------------------------------------------------------------
    def _class_of(self, pointer: Value) -> object:
        return self._pointee_class.find(("pointee", id(pointer), pointer.name))

    def _add_object(self, pointer: Value, obj: object) -> None:
        root = self._class_of(pointer)
        self._class_objects.setdefault(root, set()).add(obj)

    def _unify(self, a: Value, b: Value) -> None:
        root_a, root_b = self._class_of(a), self._class_of(b)
        if root_a == root_b:
            return
        merged = self._pointee_class.union(root_a, root_b)
        objects = self._class_objects.pop(root_a, set()) | self._class_objects.pop(root_b, set())
        if objects:
            self._class_objects.setdefault(merged, set()).update(objects)

    # -- constraint collection ---------------------------------------------------------
    def _build(self) -> None:
        called = set()
        for function in self.module.functions:
            for inst in function.instructions():
                if isinstance(inst, Call):
                    called.add(inst.callee)
        for gv in self.module.globals:
            self._add_object(gv, gv)
        for function in self.module.functions:
            for argument in function.arguments:
                if argument.type.is_pointer() and function not in called:
                    self._add_object(argument, UNKNOWN)
            for inst in function.instructions():
                self._visit(inst)

    def _visit(self, inst) -> None:
        if isinstance(inst, (Alloca, Malloc)):
            self._add_object(inst, inst)
        elif isinstance(inst, GetElementPtr):
            self._unify(inst, inst.base)
        elif isinstance(inst, Copy):
            if inst.type.is_pointer():
                self._unify(inst, inst.source)
        elif isinstance(inst, Phi):
            if inst.type.is_pointer():
                for value, _block in inst.incoming():
                    if value.type.is_pointer() and not value.is_constant():
                        self._unify(inst, value)
        elif isinstance(inst, Load):
            if inst.type.is_pointer():
                self._add_object(inst, UNKNOWN)
        elif isinstance(inst, Store):
            # Storing a pointer publishes it; conservatively mark its class.
            if inst.value.type.is_pointer() and not inst.value.is_constant():
                self._add_object(inst.value, UNKNOWN)
        elif isinstance(inst, Call):
            callee = inst.callee
            for index, actual in enumerate(inst.arguments):
                if index >= len(callee.arguments):
                    continue
                formal = callee.arguments[index]
                if formal.type.is_pointer() and actual.type.is_pointer() and not actual.is_constant():
                    self._unify(formal, actual)
            if inst.produces_value() and inst.type.is_pointer():
                if callee.is_declaration():
                    self._add_object(inst, UNKNOWN)
                else:
                    for block in callee.blocks:
                        terminator = block.terminator
                        if isinstance(terminator, Return) and terminator.value is not None:
                            if terminator.value.type.is_pointer() and not terminator.value.is_constant():
                                self._unify(inst, terminator.value)

    # -- queries -----------------------------------------------------------------------
    def objects_of(self, pointer: Value) -> Set[object]:
        root = self._class_of(pointer)
        return self._class_objects.get(root, set())

    def may_alias(self, a: Value, b: Value) -> bool:
        objects_a = self.objects_of(a)
        objects_b = self.objects_of(b)
        if not objects_a or not objects_b:
            # One of the classes has no known object: be conservative.
            return True
        if UNKNOWN in objects_a or UNKNOWN in objects_b:
            return True
        return bool(objects_a & objects_b)


class SteensgaardAliasAnalysis(AliasAnalysis):
    """Alias-analysis facade over :class:`SteensgaardPointsTo`."""

    name = "steensgaard"

    def __init__(self, module: Optional[Module] = None) -> None:
        self._points_to: Optional[SteensgaardPointsTo] = None
        if module is not None:
            self.prepare_module(module)

    def prepare_module(self, module: Module) -> None:
        self._points_to = SteensgaardPointsTo(module)

    def prepare_function(self, function: Function) -> None:
        if self._points_to is None and function.parent is not None:
            self.prepare_module(function.parent)

    def alias(self, loc_a: MemoryLocation, loc_b: MemoryLocation) -> AliasResult:
        if self._points_to is None:
            return AliasResult.MAY_ALIAS
        if loc_a.pointer is loc_b.pointer:
            return AliasResult.MUST_ALIAS
        if not self._points_to.may_alias(loc_a.pointer, loc_b.pointer):
            return AliasResult.NO_ALIAS
        return AliasResult.MAY_ALIAS
