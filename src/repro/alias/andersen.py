"""Inclusion-based (Andersen-style) points-to analysis.

The paper compares ``BA + LT`` against ``BA + CF``, where CF is a
CFL-reachability formulation of inclusion-based alias analysis.  Both CF and
Andersen's classic algorithm compute the same points-to relation for the
queries the evaluation performs, so this module serves as the CF stand-in.

The analysis is interprocedural, flow- and context-insensitive and
field-insensitive: ``gep`` is treated as a copy of its base pointer.  Unknown
pointers (function arguments of externally visible functions, loaded values
with no visible producer) point to a distinguished ``UNKNOWN`` object that
may alias anything.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.alias.interface import AliasAnalysis
from repro.alias.results import AliasResult, MemoryLocation
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    Call,
    Copy,
    GetElementPtr,
    Load,
    Malloc,
    Phi,
    Return,
    Store,
)
from repro.ir.module import Module
from repro.ir.values import Argument, GlobalVariable, NullPointer, Value
from repro.util.worklist import Worklist

#: The abstract object standing for "anything we cannot see".
UNKNOWN = "<unknown>"


class AndersenPointsTo:
    """Computes points-to sets for every pointer value of a module."""

    def __init__(self, module: Module, assume_external_calls: bool = True) -> None:
        self.module = module
        #: whether functions may additionally be called from outside the
        #: module (their arguments then point to UNKNOWN).
        self.assume_external_calls = assume_external_calls
        self.points_to: Dict[Value, Set[object]] = {}
        self._copy_edges: Dict[Value, List[Value]] = {}
        self._loads: List[Tuple[Value, Value]] = []    # (result, address)
        self._stores: List[Tuple[Value, Value]] = []   # (stored value, address)
        self._object_contents: Dict[object, Set[object]] = {}
        self._build_constraints()
        self._solve()

    # -- constraint construction -----------------------------------------------------
    def _pts(self, value: Value) -> Set[object]:
        return self.points_to.setdefault(value, set())

    def _add_copy(self, source: Value, target: Value) -> None:
        self._copy_edges.setdefault(source, []).append(target)

    def _build_constraints(self) -> None:
        called_functions = set()
        for function in self.module.functions:
            for inst in function.instructions():
                if isinstance(inst, Call):
                    called_functions.add(inst.callee)
        for function in self.module.functions:
            externally_visible = (
                self.assume_external_calls and function not in called_functions)
            for argument in function.arguments:
                if argument.type.is_pointer():
                    self._pts(argument)
                    if externally_visible:
                        self._pts(argument).add(UNKNOWN)
            for inst in function.instructions():
                self._constrain_instruction(inst)

    def _constrain_instruction(self, inst) -> None:
        if isinstance(inst, (Alloca, Malloc)):
            self._pts(inst).add(inst)
        elif isinstance(inst, GetElementPtr):
            self._pts(inst)
            self._add_copy(inst.base, inst)
        elif isinstance(inst, Copy):
            if inst.type.is_pointer():
                self._pts(inst)
                self._add_copy(inst.source, inst)
        elif isinstance(inst, Phi):
            if inst.type.is_pointer():
                self._pts(inst)
                for value, _block in inst.incoming():
                    if isinstance(value, NullPointer):
                        continue
                    self._add_copy(value, inst)
        elif isinstance(inst, Load):
            if inst.type.is_pointer():
                self._pts(inst)
                self._loads.append((inst, inst.pointer))
        elif isinstance(inst, Store):
            if inst.value.type.is_pointer():
                self._stores.append((inst.value, inst.pointer))
        elif isinstance(inst, Call):
            callee = inst.callee
            for index, actual in enumerate(inst.arguments):
                if index >= len(callee.arguments):
                    continue
                formal = callee.arguments[index]
                if formal.type.is_pointer() and actual.type.is_pointer():
                    self._pts(formal)
                    self._add_copy(actual, formal)
            if inst.produces_value() and inst.type.is_pointer():
                self._pts(inst)
                if callee.is_declaration():
                    self._pts(inst).add(UNKNOWN)
                else:
                    for block in callee.blocks:
                        terminator = block.terminator
                        if isinstance(terminator, Return) and terminator.value is not None:
                            self._add_copy(terminator.value, inst)
        # Globals are their own objects; they are handled lazily in _seed.

    def _seed_value(self, value: Value) -> None:
        if isinstance(value, GlobalVariable):
            self._pts(value).add(value)
        elif value not in self.points_to and isinstance(value, (Argument, Load, Call)):
            # A pointer with no visible producer: anything.
            if value.type.is_pointer():
                self._pts(value).add(UNKNOWN)

    # -- solving --------------------------------------------------------------------------
    def _solve(self) -> None:
        # Seed global variables and any pointer mentioned in copy edges.
        for source in list(self._copy_edges):
            self._seed_value(source)
        for result, address in self._loads + self._stores:
            self._seed_value(address)
            self._seed_value(result)

        worklist: Worklist[Value] = Worklist(self.points_to.keys())
        while worklist:
            value = worklist.pop()
            current = frozenset(self._pts(value))
            # Propagate along copy edges.
            for target in self._copy_edges.get(value, []):
                if not current <= self._pts(target):
                    self._pts(target).update(current)
                    worklist.push(target)
            # Complex constraints are re-checked globally; with the small
            # modules this project analyses this stays fast and is simple.
            changed = self._apply_memory_constraints()
            for changed_value in changed:
                worklist.push(changed_value)

    def _apply_memory_constraints(self) -> List[Value]:
        changed: List[Value] = []
        for result, address in self._loads:
            for obj in list(self._pts(address)):
                contents = self._object_contents.setdefault(obj, set())
                if obj is UNKNOWN:
                    contents.add(UNKNOWN)
                if not contents <= self._pts(result):
                    self._pts(result).update(contents)
                    changed.append(result)
        for value, address in self._stores:
            value_pts = self._pts(value) if value in self.points_to else {UNKNOWN}
            for obj in list(self._pts(address)):
                contents = self._object_contents.setdefault(obj, set())
                if not value_pts <= contents:
                    contents.update(value_pts)
                    # Objects are not worklist items; loads from them are
                    # re-examined on the next call of this method.
        return changed

    # -- queries -------------------------------------------------------------------------
    def points_to_set(self, pointer: Value) -> FrozenSet[object]:
        if pointer in self.points_to:
            return frozenset(self.points_to[pointer])
        # Walk through derived pointers.
        if isinstance(pointer, GetElementPtr):
            return self.points_to_set(pointer.base)
        if isinstance(pointer, Copy):
            return self.points_to_set(pointer.source)
        if isinstance(pointer, GlobalVariable):
            return frozenset({pointer})
        return frozenset({UNKNOWN})

    def may_alias(self, a: Value, b: Value) -> bool:
        pts_a = self.points_to_set(a)
        pts_b = self.points_to_set(b)
        if not pts_a or not pts_b:
            return True
        if UNKNOWN in pts_a or UNKNOWN in pts_b:
            return True
        return bool(pts_a & pts_b)


class AndersenAliasAnalysis(AliasAnalysis):
    """Alias-analysis facade over :class:`AndersenPointsTo` (the paper's CF)."""

    name = "cf"

    def __init__(self, module: Optional[Module] = None) -> None:
        self._points_to: Optional[AndersenPointsTo] = None
        if module is not None:
            self.prepare_module(module)

    def prepare_module(self, module: Module) -> None:
        self._points_to = AndersenPointsTo(module)

    def prepare_function(self, function: Function) -> None:
        if self._points_to is None and function.parent is not None:
            self.prepare_module(function.parent)

    def alias(self, loc_a: MemoryLocation, loc_b: MemoryLocation) -> AliasResult:
        if self._points_to is None:
            return AliasResult.MAY_ALIAS
        if loc_a.pointer is loc_b.pointer:
            return AliasResult.MUST_ALIAS
        if not self._points_to.may_alias(loc_a.pointer, loc_b.pointer):
            return AliasResult.NO_ALIAS
        return AliasResult.MAY_ALIAS
