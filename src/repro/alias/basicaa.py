"""The basic alias analysis (``BA`` in the paper, LLVM's ``basicaa``).

A stateless collection of heuristics that resolve the majority of easy
queries, mostly by tracking every pointer back to the object it was derived
from:

* pointers rooted at *different* allocation sites (``alloca``, ``malloc``,
  globals) never alias;
* a function-local allocation whose address is taken inside the function
  never aliases an incoming pointer argument;
* the null pointer aliases nothing;
* two pointers derived from the same base with *constant* offsets alias only
  when their access windows overlap — equal offsets are a must-alias,
  disjoint windows are a no-alias.

The strict-inequality analysis is deliberately complementary to these rules:
BA knows nothing about *variable* offsets, which is exactly where the
less-than analysis contributes (Section 3.6 of the paper).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.alias.interface import AliasAnalysis
from repro.alias.results import AliasResult, MemoryLocation
from repro.ir.instructions import Alloca, Call, Copy, GetElementPtr, Load, Malloc, Phi
from repro.ir.values import Argument, GlobalVariable, NullPointer, Value


def underlying_object_and_offset(pointer: Value) -> Tuple[Value, Optional[int]]:
    """Walk ``gep`` and ``copy`` chains back to the underlying object.

    Returns the object plus the accumulated constant offset, or ``None`` for
    the offset as soon as a non-constant index is crossed.
    """
    current = pointer
    offset: Optional[int] = 0
    while True:
        if isinstance(current, GetElementPtr):
            index = current.constant_index()
            if offset is not None and index is not None:
                offset += index
            else:
                offset = None
            current = current.base
            continue
        if isinstance(current, Copy):
            current = current.source
            continue
        return current, offset


def is_identified_object(value: Value) -> bool:
    """Objects whose identity is known exactly: stack, heap and global storage."""
    return isinstance(value, (Alloca, Malloc, GlobalVariable))


def is_identified_local(value: Value) -> bool:
    """Function-local allocations (not visible to callers)."""
    return isinstance(value, (Alloca, Malloc))


class BasicAliasAnalysis(AliasAnalysis):
    """Stateless heuristics in the spirit of LLVM's ``basicaa``."""

    name = "basicaa"

    def alias(self, loc_a: MemoryLocation, loc_b: MemoryLocation) -> AliasResult:
        ptr_a, ptr_b = loc_a.pointer, loc_b.pointer
        if ptr_a is ptr_b:
            return AliasResult.MUST_ALIAS

        obj_a, off_a = underlying_object_and_offset(ptr_a)
        obj_b, off_b = underlying_object_and_offset(ptr_b)

        # The null pointer does not alias any identified object (dereferencing
        # it is undefined behaviour anyway).
        if isinstance(obj_a, NullPointer) or isinstance(obj_b, NullPointer):
            if obj_a is not obj_b:
                return AliasResult.NO_ALIAS

        if obj_a is obj_b:
            return self._same_object(loc_a, loc_b, off_a, off_b)

        # Two distinct identified allocation sites cannot overlap.
        if is_identified_object(obj_a) and is_identified_object(obj_b):
            return AliasResult.NO_ALIAS

        # A local allocation cannot alias a pointer that flowed in from the
        # caller (arguments) or out of memory (loads) because its address has
        # not escaped through those channels within well-formed programs.
        for local, other in ((obj_a, obj_b), (obj_b, obj_a)):
            if is_identified_local(local) and isinstance(other, (Argument, Load, Call)):
                return AliasResult.NO_ALIAS

        return AliasResult.MAY_ALIAS

    def _same_object(self, loc_a: MemoryLocation, loc_b: MemoryLocation,
                     off_a: Optional[int], off_b: Optional[int]) -> AliasResult:
        """Both pointers address the same object; compare constant offsets."""
        if off_a is None or off_b is None:
            return AliasResult.MAY_ALIAS
        if off_a == off_b:
            return AliasResult.MUST_ALIAS
        size_a = loc_a.size if loc_a.size is not None else None
        size_b = loc_b.size if loc_b.size is not None else None
        if size_a is None or size_b is None:
            return AliasResult.MAY_ALIAS
        # Disjoint access windows [off, off + size) never overlap.
        if off_a + size_a <= off_b or off_b + size_b <= off_a:
            return AliasResult.NO_ALIAS
        return AliasResult.PARTIAL_ALIAS
