"""Alias-analysis framework and baseline analyses.

The framework mirrors LLVM's: an :class:`AliasResult` verdict, a
:class:`MemoryLocation` abstraction of a pointer access, an abstract
:class:`AliasAnalysis` interface, a chaining combinator
(:class:`AliasAnalysisChain`) that mimics how LLVM stacks analyses, and the
``aa-eval`` style evaluator used throughout the paper's measurements.

Baselines:

* :class:`BasicAliasAnalysis` — the heuristics of LLVM's ``basicaa`` (BA in
  the paper): distinct allocation sites, distinct globals, constant GEP
  offsets from the same base, null pointers.
* :class:`AndersenAliasAnalysis` — an inclusion-based points-to analysis,
  standing in for the CFL-based analysis (CF) the paper compares against.
* :class:`SteensgaardAliasAnalysis` — a unification-based points-to
  analysis, provided as an additional classic baseline.
* :class:`TypeBasedAliasAnalysis` — the C rule that pointers to different
  scalar types do not alias.
"""

from repro.alias.results import AliasResult, MemoryLocation
from repro.alias.interface import AliasAnalysis, AliasAnalysisChain
from repro.alias.basicaa import BasicAliasAnalysis
from repro.alias.andersen import AndersenAliasAnalysis, AndersenPointsTo
from repro.alias.steensgaard import SteensgaardAliasAnalysis
from repro.alias.tbaa import TypeBasedAliasAnalysis
from repro.alias.aaeval import (
    AliasEvaluation,
    AliasEvaluator,
    alias_many,
    collect_memory_locations,
    evaluate_function,
    evaluate_module,
)

__all__ = [
    "AliasResult",
    "MemoryLocation",
    "AliasAnalysis",
    "AliasAnalysisChain",
    "BasicAliasAnalysis",
    "AndersenAliasAnalysis",
    "AndersenPointsTo",
    "SteensgaardAliasAnalysis",
    "TypeBasedAliasAnalysis",
    "AliasEvaluation",
    "AliasEvaluator",
    "alias_many",
    "collect_memory_locations",
    "evaluate_function",
    "evaluate_module",
]
