"""Alias query verdicts and memory locations."""

from __future__ import annotations

import enum
from typing import Optional

from repro.ir.values import Value


class AliasResult(enum.Enum):
    """The possible answers to the query "may these two locations overlap?".

    The meanings follow LLVM:

    * ``NO_ALIAS`` — the locations never overlap (at any program point where
      both pointers are simultaneously alive, for the strict-inequality
      analysis; see Section 3.5 of the paper for this nuance).
    * ``MAY_ALIAS`` — the analysis cannot prove anything.
    * ``PARTIAL_ALIAS`` — the locations overlap but do not start at the same
      address.
    * ``MUST_ALIAS`` — the locations are provably identical.
    """

    NO_ALIAS = "NoAlias"
    MAY_ALIAS = "MayAlias"
    PARTIAL_ALIAS = "PartialAlias"
    MUST_ALIAS = "MustAlias"

    def __str__(self) -> str:
        return self.value

    @property
    def is_no_alias(self) -> bool:
        return self is AliasResult.NO_ALIAS

    @property
    def code(self) -> str:
        """One-character encoding used by the cross-process engine.

        Verdict streams are serialized as compact strings so that per-pair
        results can be compared bit-for-bit between serial, sharded and
        store-warmed evaluation runs (and persisted cheaply).
        """
        return _RESULT_CODES[self]

    @staticmethod
    def from_code(code: str) -> "AliasResult":
        return _RESULTS_BY_CODE[code]

    def merge(self, other: "AliasResult") -> "AliasResult":
        """Combine the verdicts of two analyses on the same query.

        ``NO_ALIAS`` and ``MUST_ALIAS`` are definitive; ``MAY_ALIAS`` defers
        to the other verdict.  This mirrors how LLVM chains alias analyses:
        the first analysis that returns something other than MayAlias wins.
        """
        if self is AliasResult.MAY_ALIAS:
            return other
        return self


_RESULT_CODES = {
    AliasResult.NO_ALIAS: "N",
    AliasResult.MAY_ALIAS: "M",
    AliasResult.PARTIAL_ALIAS: "P",
    AliasResult.MUST_ALIAS: "U",
}

_RESULTS_BY_CODE = {code: result for result, code in _RESULT_CODES.items()}


class MemoryLocation:
    """A memory access: the pointer plus an optional access size in elements.

    ``size`` is expressed in abstract elements (our IR's unit of pointer
    arithmetic).  ``None`` means the size is unknown.
    """

    __slots__ = ("pointer", "size")

    def __init__(self, pointer: Value, size: Optional[int] = 1) -> None:
        if not pointer.type.is_pointer():
            raise TypeError("MemoryLocation requires a pointer value, got {}".format(pointer.type))
        self.pointer = pointer
        self.size = size

    @staticmethod
    def for_load(load) -> "MemoryLocation":
        return MemoryLocation(load.pointer, 1)

    @staticmethod
    def for_store(store) -> "MemoryLocation":
        return MemoryLocation(store.pointer, 1)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, MemoryLocation)
            and other.pointer is self.pointer
            and other.size == self.size
        )

    def __hash__(self) -> int:
        return hash((id(self.pointer), self.size))

    def __repr__(self) -> str:
        return "MemoryLocation(%{}, size={})".format(self.pointer.name, self.size)
