"""Extended SSA (e-SSA / SSI) construction.

The less-than analysis is *sparse*: each variable has a single abstract state
over its whole live range (Definition 3.2 of the paper, quoted from Tavares
et al.).  To make that sound, the live range of a variable must be split at
every program point where new less-than information appears:

1. at its definition (SSA already guarantees a fresh name there);
2. at subtractions ``x1 = x2 - n`` — a parallel copy ``x3 = x2`` is placed
   next to the subtraction so that the fact ``x1 < x3`` has a variable to
   attach to;
3. after conditionals ``(x1 < x2)?`` — σ-copies of both operands are placed
   on the true and the false edge, carrying the branch information.

This package implements that transformation (the ``vSSA`` pass of the
original artifact) for our IR.
"""

from repro.essa.transform import EssaConstructionPass, EssaInfo, convert_to_essa

__all__ = ["EssaConstructionPass", "EssaInfo", "convert_to_essa"]
