"""The live-range splitting transformation (Figure 5 of the paper).

The transformation has two parts:

* **σ-copies after conditionals** — for a conditional branch whose condition
  is a comparison between scalar variables, a copy of each compared variable
  is inserted at the beginning of the true successor and of the false
  successor, and every use dominated by the copy is renamed.  The copies are
  annotated with the comparison, the side of the comparison they rename and
  the branch they live on, so that the range analysis and the less-than
  constraint generator can recover the branch information sparsely.

* **copies at subtractions** — for an instruction ``x1 = x2 - n`` (or
  ``x1 = x2 + n`` where the range analysis proves ``n`` negative), a copy
  ``x3 = x2`` is inserted immediately after it and uses of ``x2`` dominated
  by that point are renamed.  The copy is annotated with the subtraction so
  the constraint generator can emit ``x1 ∈ LT(x3)``.

Both kinds of copies are ordinary :class:`repro.ir.instructions.Copy`
instructions; they are semantically transparent (removing them restores the
original program), which a test verifies by running the interpreter before
and after the transformation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.dominators import DominatorTree
from repro.ir.function import Function
from repro.ir.instructions import (
    BinaryOp,
    Branch,
    Copy,
    GetElementPtr,
    ICmp,
    Instruction,
    Jump,
    Phi,
)
from repro.ir.values import Argument, ConstantInt, Value
from repro.obs import TRACER
from repro.passes.pass_base import TransformPass
from repro.rangeanalysis.analysis import RangeAnalysis
from repro.rangeanalysis.classify import shrink_base


class EssaInfo:
    """Summary of one e-SSA conversion (returned by :func:`convert_to_essa`)."""

    def __init__(self) -> None:
        self.sigma_copies: List[Copy] = []
        self.subtraction_copies: List[Copy] = []
        self.split_edges: int = 0

    @property
    def total_copies(self) -> int:
        return len(self.sigma_copies) + len(self.subtraction_copies)


def _is_splittable(value: Value) -> bool:
    """Only SSA variables of scalar type get their live ranges split."""
    if isinstance(value, ConstantInt):
        return False
    if isinstance(value, (Argument, Instruction)):
        return value.type.is_scalar()
    return False


def _ensure_dedicated_successor(function: Function, branch: Branch,
                                successor: BasicBlock, info: EssaInfo) -> BasicBlock:
    """Return a block on the edge ``branch -> successor`` with that edge as its
    only incoming edge, splitting the edge when necessary."""
    if len(successor.predecessors()) == 1:
        return successor
    # Critical edge (or an edge into a merge point): insert a dedicated block.
    middle = function.append_block(name=function.next_block_name("sigma"))
    middle.append(Jump(successor))
    branch.replace_successor(successor, middle)
    for phi in successor.phis():
        for index, incoming in enumerate(phi.incoming_blocks):
            if incoming is branch.parent:
                phi.incoming_blocks[index] = middle
    info.split_edges += 1
    return middle


def _rename_dominated_uses(domtree: DominatorTree, original: Value, copy: Copy) -> None:
    """Rewrite uses of ``original`` that are dominated by ``copy`` to use it."""
    for use in list(original.uses):
        user = use.user
        if user is copy:
            continue
        if user.parent is None:
            continue
        if isinstance(user, Phi):
            # The use point of a φ-operand is the end of the incoming block.
            pred = user.incoming_blocks[use.index]
            copy_block = copy.parent
            if copy_block is None:
                continue
            if domtree.dominates(copy_block, pred):
                user.set_operand(use.index, copy)
        else:
            if domtree.instruction_dominates(copy, user):
                user.set_operand(use.index, copy)


def convert_to_essa(function: Function,
                    ranges: Optional[RangeAnalysis] = None) -> EssaInfo:
    """Convert ``function`` to e-SSA form in place.

    ``ranges`` may be supplied to reuse an existing range analysis; when
    omitted a fresh one is computed (it is needed to classify additions with
    variable operands as growths or decrements).
    """
    info = EssaInfo()
    if function.is_declaration():
        return info
    # The transformation is not idempotent (a second run would duplicate the
    # σ-copies), so functions are tagged once converted and re-conversion is
    # a no-op.  This lets several analyses share one e-SSA form safely.
    if getattr(function, "essa_form", False):
        return info
    function.essa_form = True
    if ranges is None:
        ranges = RangeAnalysis(function)
    with TRACER.span("essa.transform", fn=function.name):
        _insert_copies(function, ranges, info)
    return info


def _insert_copies(function: Function, ranges: RangeAnalysis,
                   info: EssaInfo) -> None:
    # --- σ-copies after conditionals -------------------------------------------------
    # First make sure every interesting branch target can host σ-copies
    # (single predecessor), then compute dominance once and insert copies in
    # dominator-tree preorder so that nested conditions naturally chain.
    for block in list(function.blocks):
        terminator = block.terminator
        if not isinstance(terminator, Branch):
            continue
        condition = terminator.condition
        if not isinstance(condition, ICmp):
            continue
        if terminator.true_block is terminator.false_block:
            continue
        if not (_is_splittable(condition.lhs) or _is_splittable(condition.rhs)):
            continue
        _ensure_dedicated_successor(function, terminator, terminator.true_block, info)
        _ensure_dedicated_successor(function, terminator, terminator.false_block, info)

    domtree = DominatorTree(function)

    for block in domtree.dom_tree_preorder():
        # Copies at subtractions (processed before the terminator of the block).
        for inst in list(block.instructions):
            if isinstance(inst, (BinaryOp, GetElementPtr)) and inst.type.is_scalar():
                base = shrink_base(inst, ranges)
                if base is None or not _is_splittable(base):
                    continue
                copy = Copy(base, "", kind="split")
                copy.split_subtraction = inst
                block.insert_after(inst, copy)
                info.subtraction_copies.append(copy)
                _rename_dominated_uses(domtree, base, copy)
        terminator = block.terminator
        if not isinstance(terminator, Branch):
            continue
        condition = terminator.condition
        if not isinstance(condition, ICmp):
            continue
        if terminator.true_block is terminator.false_block:
            continue
        for on_true, successor in ((True, terminator.true_block), (False, terminator.false_block)):
            for side, operand in (("lhs", condition.lhs), ("rhs", condition.rhs)):
                if not _is_splittable(operand):
                    continue
                copy = Copy(operand, "", kind="sigma")
                copy.sigma_condition = condition
                copy.sigma_operand_side = side
                copy.sigma_on_true_branch = on_true
                successor.insert(successor.first_non_phi_index(), copy)
                info.sigma_copies.append(copy)
                _rename_dominated_uses(domtree, operand, copy)


class EssaConstructionPass(TransformPass):
    """Pass-manager wrapper around :func:`convert_to_essa`."""

    name = "essa-construction"

    def __init__(self) -> None:
        self.last_info: Dict[Function, EssaInfo] = {}

    def run_on_function(self, function: Function) -> bool:
        info = convert_to_essa(function)
        self.last_info[function] = info
        return info.total_copies > 0 or info.split_edges > 0
