"""e-SSA well-formedness lint (the σ-node half of the self-check suite).

The range analysis and the less-than constraint generator trust the
annotations :func:`repro.essa.transform.convert_to_essa` leaves on σ-copies:
that the copy sits on the branch edge it claims, that it renames the operand
of the comparison it claims, and that every splittable operand of every
comparison-guarded branch actually *has* its σ-copies.  A σ on the wrong
edge (or a missing one) silently turns a branch refinement into an unsound
range, so the self-check suite (:mod:`repro.verify`) lints exactly these
invariants:

* every σ-copy's block has a single predecessor, and that predecessor's
  terminator is the conditional branch carrying the σ's own condition
  object;
* the block is the successor of the side (``sigma_on_true_branch``) the σ
  claims;
* the σ's source is the very operand (``sigma_operand_side``) of the
  condition it claims to rename, and σ-copies sit in the block's φ/copy
  prefix (before any computation that could observe the unrefined name);
* *completeness*: in a converted function, every comparison-guarded branch
  with distinct successors carries a σ-copy per (edge × splittable operand)
  — the "dropped σ" detector.

Every finding is returned as ``(value_name, message)`` so the caller can
attach per-value diagnostics; an empty list means the function lints clean.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.ir.function import Function
from repro.ir.instructions import Branch, Copy, ICmp, Phi
from repro.essa.transform import _is_splittable


def _describe(value) -> str:
    name = getattr(value, "name", "") or ""
    return "%{}".format(name) if name else repr(value)


def _lint_sigma_copy(copy: Copy, problems: List[Tuple[str, str]]) -> None:
    name = getattr(copy, "name", "") or ""
    condition = getattr(copy, "sigma_condition", None)
    side = getattr(copy, "sigma_operand_side", None)
    on_true = getattr(copy, "sigma_on_true_branch", None)
    if not isinstance(condition, ICmp):
        problems.append((name, "sigma-copy %{} carries no ICmp condition".format(name)))
        return
    if side not in ("lhs", "rhs"):
        problems.append((name, "sigma-copy %{} has operand side {!r} (expected lhs/rhs)".format(
            name, side)))
        return
    block = copy.parent
    if block is None:
        problems.append((name, "sigma-copy %{} is not attached to a block".format(name)))
        return
    predecessors = block.predecessors()
    if len(predecessors) != 1:
        problems.append((name, "sigma-copy %{} sits in block {} with {} predecessors "
                         "(expected a dedicated edge block)".format(
                             name, block.name, len(predecessors))))
        return
    terminator = predecessors[0].terminator
    if not isinstance(terminator, Branch) or terminator.condition is not condition:
        problems.append((name, "sigma-copy %{} is not guarded by its own condition "
                         "(predecessor {} branches on something else)".format(
                             name, predecessors[0].name)))
        return
    expected_block = terminator.true_block if on_true else terminator.false_block
    if expected_block is not block:
        problems.append((name, "sigma-copy %{} claims the {} branch of {} but sits on "
                         "the other edge".format(
                             name, "true" if on_true else "false",
                             _describe(condition))))
    operand = condition.lhs if side == "lhs" else condition.rhs
    if copy.source is not operand:
        problems.append((name, "sigma-copy %{} renames {} but its condition's {} operand "
                         "is {}".format(name, _describe(copy.source), side,
                                        _describe(operand))))
    # σ-copies must stay in the φ/copy prefix of the block: an instruction
    # ahead of them could observe the unrefined name the σ was meant to split.
    for inst in block.instructions:
        if inst is copy:
            break
        if not isinstance(inst, (Phi, Copy)):
            problems.append((name, "sigma-copy %{} appears after non-copy instruction "
                             "{} in block {}".format(
                                 name, _describe(inst), block.name)))
            break


def _lint_completeness(function: Function,
                       problems: List[Tuple[str, str]]) -> None:
    for block in function.blocks:
        terminator = block.terminator
        if not isinstance(terminator, Branch):
            continue
        condition = terminator.condition
        if not isinstance(condition, ICmp):
            continue
        if terminator.true_block is terminator.false_block:
            continue
        for on_true, successor in ((True, terminator.true_block),
                                   (False, terminator.false_block)):
            for side, operand in (("lhs", condition.lhs), ("rhs", condition.rhs)):
                if not _is_splittable(operand):
                    continue
                if any(isinstance(inst, Copy)
                       and getattr(inst, "kind", None) == "sigma"
                       and getattr(inst, "sigma_condition", None) is condition
                       and getattr(inst, "sigma_operand_side", None) == side
                       and getattr(inst, "sigma_on_true_branch", None) is on_true
                       for inst in successor.instructions):
                    continue
                problems.append((getattr(operand, "name", "") or "",
                                 "branch on {} in block {} is missing the σ-copy of "
                                 "its {} operand {} on the {} edge".format(
                                     _describe(condition), block.name, side,
                                     _describe(operand),
                                     "true" if on_true else "false")))


def sigma_problems(function: Function) -> List[Tuple[str, str]]:
    """Every σ-invariant violation of ``function`` as ``(value, message)``.

    Placement problems are checked on every σ-copy present; the completeness
    check (missing σs) only applies to functions tagged ``essa_form`` — a
    plain-SSA function legitimately has none.
    """
    problems: List[Tuple[str, str]] = []
    if function.is_declaration():
        return problems
    for block in function.blocks:
        for inst in block.instructions:
            if isinstance(inst, Copy) and getattr(inst, "kind", None) == "sigma":
                _lint_sigma_copy(inst, problems)
    if getattr(function, "essa_form", False):
        _lint_completeness(function, problems)
    return problems
