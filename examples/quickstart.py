"""Quickstart: disambiguate the pointers of the paper's motivating example.

Run with::

    python examples/quickstart.py

The script compiles the insertion-sort routine of Figure 1(a) of the paper
(*Pointer Disambiguation via Strict Inequalities*, CGO 2017) through the
:class:`repro.api.Session` facade, runs the strict-inequality (less-than)
analysis, and shows that the accesses ``v[i]`` and ``v[j]`` of the inner
loop can never touch the same memory cell — a fact the basic alias
analysis cannot establish.

The same pipeline is available from the command line::

    python -m repro eval examples/ins_sort.c      # aa-eval table
    python -m repro print-ir examples/ins_sort.c  # the SSA IR
"""

from repro.api import Session
from repro.ir import print_function

INS_SORT = """
void ins_sort(int* v, int N) {
  int i, j;
  for (i = 0; i < N - 1; i++) {
    for (j = i + 1; j < N; j++) {
      if (v[i] > v[j]) {
        int tmp = v[i];
        v[i] = v[j];
        v[j] = tmp;
      }
    }
  }
}
"""


def main() -> None:
    # One session owns the analysis cache (and, when configured, the
    # persistent store); every step below shares it.
    session = Session()

    # 1. Compile the C-like source down to the SSA IR.
    unit = session.compile(INS_SORT, name="quickstart")
    function = unit.module.get_function("ins_sort")
    print("=== IR after SSA construction ===")
    print(print_function(function))
    print()

    # 2. The fluent pipeline: analyze() converts the module to e-SSA form
    #    and solves the less-than constraints; disambiguate() then queries
    #    every unordered pointer pair.
    report = unit.analyze().disambiguate()
    print("=== Pairwise verdicts (strict-inequality criteria) ===")
    for pair in report.resolved():
        print("  {:>6} vs {:<6} no-alias via {}".format(
            "%" + pair.pointer_a, "%" + pair.pointer_b, pair.reason.value))
    print("  ... {} of {} pairs proven disjoint ({:.1%})".format(
        report.no_alias_count, report.queries, report.no_alias_ratio))
    print()

    # 3. Aggregate statistics, aa-eval style: the BA baseline, LT alone and
    #    the BA + LT chain over the same module, through the same engine the
    #    benchmarks use.  Verdicts are bit-identical to the CLI
    #    (python -m repro eval) and to the cross-process workload driver.
    result = unit.evaluate(specs=(("basicaa",), ("lt",), ("basicaa", "lt")))
    for label, title in (("basicaa", "BA"), ("lt", "LT"),
                         ("basicaa+lt", "BA + LT")):
        evaluation = result.evaluation(label)
        print("{:8s} resolved {:3d} of {:3d} pointer pairs ({:.1%})".format(
            title, evaluation.no_alias, evaluation.total_queries,
            evaluation.no_alias_ratio))


if __name__ == "__main__":
    main()
