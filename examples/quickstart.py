"""Quickstart: disambiguate the pointers of the paper's motivating example.

Run with::

    python examples/quickstart.py

The script compiles the insertion-sort routine of Figure 1(a) of the paper
(*Pointer Disambiguation via Strict Inequalities*, CGO 2017), runs the
strict-inequality (less-than) analysis, and shows that the accesses ``v[i]``
and ``v[j]`` of the inner loop can never touch the same memory cell — a fact
the basic alias analysis cannot establish.
"""

from repro.alias import AliasAnalysisChain, BasicAliasAnalysis, evaluate_module
from repro.core import PointerDisambiguator, StrictInequalityAliasAnalysis
from repro.frontend import compile_source
from repro.ir import print_function
from repro.ir.instructions import GetElementPtr, Load, Store

INS_SORT = """
void ins_sort(int* v, int N) {
  int i, j;
  for (i = 0; i < N - 1; i++) {
    for (j = i + 1; j < N; j++) {
      if (v[i] > v[j]) {
        int tmp = v[i];
        v[i] = v[j];
        v[j] = tmp;
      }
    }
  }
}
"""


def main() -> None:
    # 1. Compile the C-like source down to the SSA IR.
    module = compile_source(INS_SORT, module_name="quickstart")
    function = module.get_function("ins_sort")
    print("=== IR after SSA construction ===")
    print(print_function(function))
    print()

    # 2. Build the alias analyses: the basic one (BA) and the
    #    strict-inequality one (LT).  Constructing the LT analysis converts
    #    the module to e-SSA form and solves the less-than constraints.
    basic = BasicAliasAnalysis()
    strict = StrictInequalityAliasAnalysis(module)
    chain = AliasAnalysisChain([basic, strict], name="BA + LT")

    # 3. Ask about the memory accesses of the inner loop.
    accesses = [inst.pointer for inst in function.instructions()
                if isinstance(inst, (Load, Store)) and isinstance(inst.pointer, GetElementPtr)]
    disambiguator = PointerDisambiguator(strict.analysis)
    print("=== Pairwise verdicts for the v[...] accesses ===")
    for i in range(len(accesses)):
        for j in range(i + 1, len(accesses)):
            a, b = accesses[i], accesses[j]
            if a.index is b.index:
                continue
            print("  {:>4} vs {:<4}  BA: {:<9}  LT: {:<9}  reason: {}".format(
                "%" + a.name, "%" + b.name,
                str(basic.alias_values(a, b)),
                str(strict.alias_values(a, b)),
                disambiguator.disambiguate(a, b).value))
    print()

    # 4. Aggregate statistics, aa-eval style.
    for label, analysis in (("BA", basic), ("LT", strict), ("BA + LT", chain)):
        evaluation = evaluate_module(module, analysis)
        print("{:8s} resolved {:3d} of {:3d} pointer pairs ({:.1%})".format(
            label, evaluation.no_alias, evaluation.total_queries, evaluation.no_alias_ratio))


if __name__ == "__main__":
    main()
