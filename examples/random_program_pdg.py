"""The applicability experiment (Figure 12) on a single random program.

Generates one Csmith-like program, builds its Program Dependence Graph twice
— once with the basic alias analysis alone and once with BA chained with the
strict-inequality analysis — and reports how many memory nodes each version
has.  More memory nodes means a more precise graph: references that fall
into the same node are the ones the analysis could not tell apart.

Run with::

    python examples/random_program_pdg.py [seed] [pointer_depth]

The DOT renderings of both graphs are written next to this script so they
can be inspected with Graphviz.
"""

import os
import sys

from repro.api import Session
from repro.alias import AliasAnalysisChain, BasicAliasAnalysis
from repro.core import StrictInequalityAliasAnalysis
from repro.pdg import build_pdg
from repro.synth import generate_random_module


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 42
    depth = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    module = generate_random_module(seed=seed, pointer_depth=depth,
                                    statement_count=25, loop_count=3)
    work = module.get_function("work")
    print("Generated program: seed={}, pointer depth={}, {} IR instructions".format(
        seed, depth, module.instruction_count()))

    # The session cache shares e-SSA conversion and range analyses between
    # the strict analysis and both PDG builds.
    session = Session()
    basic = BasicAliasAnalysis()
    strict = StrictInequalityAliasAnalysis(module, cache=session.cache)
    chain = AliasAnalysisChain([basic, strict], name="ba+lt")

    pdg_ba = build_pdg(work, basic)
    pdg_chain = build_pdg(work, chain)

    print("Memory nodes with BA alone : {}".format(pdg_ba.memory_node_count))
    print("Memory nodes with BA + LT  : {}".format(pdg_chain.memory_node_count))
    ratio = (pdg_chain.memory_node_count / pdg_ba.memory_node_count
             if pdg_ba.memory_node_count else float("nan"))
    print("Precision gain             : {:.2f}x".format(ratio))

    out_dir = os.path.dirname(os.path.abspath(__file__))
    ba_path = os.path.join(out_dir, "pdg_ba.dot")
    chain_path = os.path.join(out_dir, "pdg_ba_lt.dot")
    with open(ba_path, "w", encoding="utf-8") as handle:
        handle.write(pdg_ba.to_dot())
    with open(chain_path, "w", encoding="utf-8") as handle:
        handle.write(pdg_chain.to_dot())
    print("DOT files written to {} and {}".format(ba_path, chain_path))


if __name__ == "__main__":
    main()
