"""Using the alias analyses as a client: loop dependence screening.

A vectoriser (or any loop transformation) must know whether the memory
accesses of a loop body can refer to the same location.  This example shows
how the strict-inequality analysis answers that question for three loops:

* ``memcopy``       — ``dst[i] = src[i]``: independent only if ``dst`` and
  ``src`` do not overlap (neither BA nor LT can prove that for arbitrary
  arguments, so the loop stays "may depend");
* ``copy_reverse``  — ``v[i] = v[j]`` with ``i < j``: LT proves the read and
  the write never touch the same cell in an iteration;
* ``prefix_sum``    — ``v[i] = v[i] + v[i-1]``: a genuine loop-carried
  dependence; no analysis may (or does) claim independence.

Run with::

    python examples/loop_dependence.py
"""

from repro.api import Session
from repro.alias import AliasAnalysisChain, AliasResult, BasicAliasAnalysis, MemoryLocation
from repro.core import StrictInequalityAliasAnalysis
from repro.ir.instructions import Load, Store
from repro.ir.loops import LoopInfo
from repro.synth import KERNEL_SOURCES


def classify_loop(session, module, function_name: str) -> str:
    """Return a human-readable verdict about the innermost loop's accesses."""
    function = module.get_function(function_name)
    # The session's cache shares the e-SSA conversion and range analyses
    # across every kernel this example inspects.
    strict = StrictInequalityAliasAnalysis(module, cache=session.cache)
    chain = AliasAnalysisChain([BasicAliasAnalysis(), strict], name="ba+lt")
    loops = LoopInfo(function)
    if not loops.loops:
        return "no loop found"
    loop = min(loops.loops, key=lambda l: len(l.blocks))
    loads = []
    stores = []
    for block in loop.blocks:
        for inst in block.instructions:
            if isinstance(inst, Load):
                loads.append(inst)
            elif isinstance(inst, Store):
                stores.append(inst)
    conflicts = []
    for store in stores:
        for load in loads:
            if store.pointer is load.pointer:
                conflicts.append((store, load, AliasResult.MUST_ALIAS))
                continue
            verdict = chain.alias(MemoryLocation(store.pointer), MemoryLocation(load.pointer))
            if verdict is not AliasResult.NO_ALIAS:
                conflicts.append((store, load, verdict))
    if not conflicts:
        return "independent: every store is disjoint from every load in the body"
    descriptions = ", ".join("store %{} vs load %{} ({})".format(
        s.pointer.name, l.pointer.name, v) for s, l, v in conflicts)
    return "may depend: " + descriptions


def main() -> None:
    session = Session()
    for name in ("memcopy", "copy_reverse", "prefix_sum"):
        module = session.compile(KERNEL_SOURCES[name], name=name).module
        print("{:15s} -> {}".format(name, classify_loop(session, module, name)))
    print()
    print("copy_reverse is the paper's introduction example: only the")
    print("strict less-than relation i < j lets the compiler treat the")
    print("body's read and write as independent within one iteration.")


if __name__ == "__main__":
    main()
