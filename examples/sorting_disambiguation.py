"""Figure 1 of the paper, end to end.

Compiles both motivating kernels (insertion sort and the quicksort
partition), executes them with the reference interpreter to show they are
real, runnable programs, and then compares three alias analyses on every
pair of array accesses:

* ``BA``       — the basic alias analysis (LLVM's ``basicaa`` heuristics),
* ``LT``       — the strict-inequality analysis of the paper,
* ``BA + LT``  — the chain of both, which is how the paper evaluates them.

Run with::

    python examples/sorting_disambiguation.py
"""

from repro.api import Session
from repro.ir.interpreter import Interpreter
from repro.synth import KERNEL_SOURCES, kernel_module


def run_kernel(name: str, values):
    """Execute the kernel on concrete data and return the resulting array."""
    module = kernel_module(name)
    interpreter = Interpreter(module)
    array = interpreter.allocate_array(list(values))
    interpreter.run(name, [array, len(values)])
    return interpreter.read_array(array, len(values))


def analyse_kernel(session: Session, name: str) -> None:
    # aa-eval the kernel through the session facade: BA alone, LT alone,
    # and the BA + LT chain, exactly like the paper's tables.
    unit = session.compile(KERNEL_SOURCES[name], name=name)
    result = unit.evaluate(specs=(("basicaa",), ("lt",), ("basicaa", "lt")))
    print("--- {} ---".format(name))
    for label, title in (("basicaa", "BA"), ("lt", "LT"),
                         ("basicaa+lt", "BA + LT")):
        evaluation = result.evaluation(label)
        print("  {:8s} no-alias {:3d} / {:3d} pairs ({:.1%})".format(
            title, evaluation.no_alias, evaluation.total_queries,
            evaluation.no_alias_ratio))
    print()


def main() -> None:
    print("=== Running the kernels on concrete inputs ===")
    unsorted = [9, 3, 7, 1, 8, 2]
    print("ins_sort({})   -> {}".format(unsorted, run_kernel("ins_sort", unsorted)))
    print("partition({})  -> {}".format(unsorted, run_kernel("partition", unsorted)))
    print()

    print("=== Static disambiguation (the paper's Figure 1 claim) ===")
    session = Session()
    for name in ("ins_sort", "partition", "copy_reverse"):
        analyse_kernel(session, name)

    print("The v[i] / v[j] accesses are resolved only once the strict")
    print("less-than relation i < j is known - interval reasoning cannot")
    print("separate them because the ranges of i and j overlap.")


if __name__ == "__main__":
    main()
