"""Tests for the program dependence graph and its memory-node partition."""

from repro.alias import AliasAnalysisChain, BasicAliasAnalysis
from repro.core import StrictInequalityAliasAnalysis
from repro.pdg import PDGBuilder, build_pdg, count_memory_nodes
from repro.ir import INT, IRBuilder, Module, pointer_to
from tests.helpers import build_two_index_loop_module


def build_constant_index_module():
    """Stores to a[0], a[1], a[2] and b[0]: four distinct locations."""
    module = Module("constidx")
    f = module.create_function("f", INT, [], [])
    entry = f.append_block(name="entry")
    builder = IRBuilder(entry)
    a = builder.alloca(INT, "a", array_size=builder.const(8))
    b = builder.alloca(INT, "b", array_size=builder.const(8))
    for i in range(3):
        slot = builder.gep(a, builder.const(i), "a{}".format(i))
        builder.store(builder.const(i), slot)
    slot_b = builder.gep(b, builder.const(0), "b0")
    builder.store(builder.const(9), slot_b)
    builder.ret(builder.const(0))
    return module, f


def test_memory_references_are_collected_once_per_pointer():
    module, f = build_constant_index_module()
    builder = PDGBuilder(BasicAliasAnalysis())
    references = builder.memory_references(f)
    assert len(references) == 4


def test_basicaa_separates_constant_indices():
    module, f = build_constant_index_module()
    pdg = build_pdg(f, BasicAliasAnalysis())
    assert pdg.memory_node_count == 4
    assert pdg.value_node_count > 0
    assert pdg.edge_count > 0


def test_no_alias_information_collapses_memory_nodes():
    """With an analysis that never disambiguates, there is a single node."""
    from repro.alias.interface import AliasAnalysis
    from repro.alias.results import AliasResult

    class NeverNoAlias(AliasAnalysis):
        name = "pessimistic"

        def alias(self, loc_a, loc_b):
            return AliasResult.MAY_ALIAS

    module, f = build_constant_index_module()
    pdg = build_pdg(f, NeverNoAlias())
    assert pdg.memory_node_count == 1
    assert pdg.memory_nodes[0].reference_count == 4


def test_lt_splits_variable_index_accesses():
    module, function = build_two_index_loop_module()
    ba_only = count_memory_nodes(module, BasicAliasAnalysis())
    sraa = StrictInequalityAliasAnalysis(module)
    chain = AliasAnalysisChain([BasicAliasAnalysis(), sraa], name="ba+lt")
    ba_lt = count_memory_nodes(module, chain)
    # v[i] and v[j] fall into one node for BA but two nodes for BA + LT.
    assert ba_only == 1
    assert ba_lt == 2


def test_store_creates_edge_into_memory_node():
    module, f = build_constant_index_module()
    pdg = build_pdg(f, BasicAliasAnalysis())
    memory_edges = pdg.edges_of_kind("memory")
    assert memory_edges
    # Each store contributes at least the pointer-to-node edge.
    targets = {edge.target for edge in memory_edges}
    assert any(t in pdg.memory_nodes for t in targets)


def test_load_creates_edge_from_memory_node():
    module = Module("loads")
    int_ptr = pointer_to(INT)
    f = module.create_function("f", INT, [int_ptr], ["p"])
    entry = f.append_block(name="entry")
    builder = IRBuilder(entry)
    value = builder.load(f.arguments[0], "value")
    builder.ret(value)
    pdg = build_pdg(f, BasicAliasAnalysis())
    assert pdg.memory_node_count == 1
    memory_edges = pdg.edges_of_kind("memory")
    assert any(edge.source is pdg.memory_nodes[0] for edge in memory_edges)


def test_pdg_dot_output():
    module, f = build_constant_index_module()
    pdg = build_pdg(f, BasicAliasAnalysis())
    dot = pdg.to_dot()
    assert dot.startswith("digraph")
    assert "mem#0" in dot


def test_predecessors_and_successors():
    module, f = build_constant_index_module()
    pdg = build_pdg(f, BasicAliasAnalysis())
    node = pdg.memory_nodes[0]
    preds = pdg.predecessors(node)
    assert preds  # the stored value and/or pointer feed the node
    for pred in preds:
        assert node in pdg.successors(pred)
