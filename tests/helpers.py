"""Shared IR-construction helpers for the test suite.

These builders create the small programs that many tests need: a straight
line function, a diamond CFG, a simple counting loop, the two-pointer loop of
the paper's introduction and the artificial program of Figure 3.
"""

from __future__ import annotations

from typing import Tuple

from repro.ir import (
    Function,
    IRBuilder,
    INT,
    Module,
    pointer_to,
)


def build_straightline_module() -> Tuple[Module, Function]:
    """``f(a, b) { c = a + b; d = c - 1; return d; }``"""
    module = Module("straightline")
    function = module.create_function("f", INT, [INT, INT], ["a", "b"])
    entry = function.append_block(name="entry")
    builder = IRBuilder(entry)
    a, b = function.arguments
    c = builder.add(a, b, "c")
    d = builder.sub(c, builder.const(1), "d")
    builder.ret(d)
    return module, function


def build_diamond_module() -> Tuple[Module, Function]:
    """``f(a, b) { if (a < b) r = a + 1; else r = b + 2; return r; }``"""
    module = Module("diamond")
    function = module.create_function("f", INT, [INT, INT], ["a", "b"])
    entry = function.append_block(name="entry")
    then_block = function.append_block(name="then")
    else_block = function.append_block(name="else")
    join = function.append_block(name="join")
    builder = IRBuilder(entry)
    a, b = function.arguments
    cond = builder.icmp_slt(a, b, "cond")
    builder.branch(cond, then_block, else_block)
    builder.set_insert_point(then_block)
    t = builder.add(a, builder.const(1), "t")
    builder.jump(join)
    builder.set_insert_point(else_block)
    e = builder.add(b, builder.const(2), "e")
    builder.jump(join)
    builder.set_insert_point(join)
    phi = builder.phi(INT, "r")
    phi.add_incoming(t, then_block)
    phi.add_incoming(e, else_block)
    builder.ret(phi)
    return module, function


def build_counting_loop_module(upper: int = 10) -> Tuple[Module, Function]:
    """``f(n) { i = 0; while (i < n) i = i + 1; return i; }``"""
    module = Module("loop")
    function = module.create_function("f", INT, [INT], ["n"])
    entry = function.append_block(name="entry")
    header = function.append_block(name="header")
    body = function.append_block(name="body")
    exit_block = function.append_block(name="exit")
    builder = IRBuilder(entry)
    (n,) = function.arguments
    zero = builder.const(0)
    builder.jump(header)
    builder.set_insert_point(header)
    i_phi = builder.phi(INT, "i")
    cond = builder.icmp_slt(i_phi, n, "cond")
    builder.branch(cond, body, exit_block)
    builder.set_insert_point(body)
    i_next = builder.add(i_phi, builder.const(1), "inext")
    builder.jump(header)
    i_phi.add_incoming(zero, entry)
    i_phi.add_incoming(i_next, body)
    builder.set_insert_point(exit_block)
    builder.ret(i_phi)
    return module, function


def build_two_index_loop_module() -> Tuple[Module, Function]:
    """The introduction's loop: ``for (i=0, j=N; i<j; i++, j--) v[i] = v[j];``

    Returns the module and the function.  Pointers ``v[i]`` and ``v[j]`` are
    formed with ``gep`` so the disambiguation criteria of Definition 3.11(2)
    apply.
    """
    module = Module("two_index_loop")
    int_ptr = pointer_to(INT)
    function = module.create_function("copy_reverse", INT, [int_ptr, INT], ["v", "N"])
    entry = function.append_block(name="entry")
    header = function.append_block(name="header")
    body = function.append_block(name="body")
    exit_block = function.append_block(name="exit")
    builder = IRBuilder(entry)
    v, n = function.arguments
    zero = builder.const(0)
    builder.jump(header)
    builder.set_insert_point(header)
    i_phi = builder.phi(INT, "i")
    j_phi = builder.phi(INT, "j")
    cond = builder.icmp_slt(i_phi, j_phi, "cond")
    builder.branch(cond, body, exit_block)
    builder.set_insert_point(body)
    p_i = builder.gep(v, i_phi, "p_i")
    p_j = builder.gep(v, j_phi, "p_j")
    value = builder.load(p_j, "val")
    builder.store(value, p_i)
    i_next = builder.add(i_phi, builder.const(1), "inext")
    j_next = builder.sub(j_phi, builder.const(1), "jnext")
    builder.jump(header)
    i_phi.add_incoming(zero, entry)
    i_phi.add_incoming(i_next, body)
    j_phi.add_incoming(n, entry)
    j_phi.add_incoming(j_next, body)
    builder.set_insert_point(exit_block)
    builder.ret(i_phi)
    return module, function


def build_figure3_module() -> Tuple[Module, Function]:
    """The artificial program of Figure 3 of the paper.

    The entry defines ``x0`` (modelled as a function argument so its range is
    unknown), then::

        x1 = x0 + 1
        loop: x2 = phi(x1, x3)
              x4 = x2 - 2        (one branch)
              x3 = x2 + 1        (other branch)
        (x4 < x1) ?  -> join with x6 = phi(x4, x3, x4)
    """
    module = Module("figure3")
    function = module.create_function("figure3", INT, [INT], ["x0"])
    entry = function.append_block(name="entry")
    loop_header = function.append_block(name="loop")
    left = function.append_block(name="left")
    right = function.append_block(name="right")
    check = function.append_block(name="check")
    join = function.append_block(name="join")
    builder = IRBuilder(entry)
    (x0,) = function.arguments
    x1 = builder.add(x0, builder.const(1), "x1")
    builder.jump(loop_header)

    builder.set_insert_point(loop_header)
    x2 = builder.phi(INT, "x2")
    cond_dir = builder.icmp_slt(x2, builder.const(100), "dir")
    builder.branch(cond_dir, left, right)

    builder.set_insert_point(left)
    x4 = builder.sub(x2, builder.const(2), "x4")
    builder.jump(check)

    builder.set_insert_point(right)
    x3 = builder.add(x2, builder.const(1), "x3")
    builder.jump(loop_header)

    x2.add_incoming(x1, entry)
    x2.add_incoming(x3, right)

    builder.set_insert_point(check)
    cond = builder.icmp_slt(x4, x1, "cond")
    builder.branch(cond, join, join)

    builder.set_insert_point(join)
    x6 = builder.phi(INT, "x6")
    x6.add_incoming(x4, check)
    builder.ret(x6)
    return module, function
