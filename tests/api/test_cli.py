"""Tests for the ``python -m repro`` command line.

The CLI drives the same ``Session`` facade as library callers; the JSON
parity test asserts its per-pair verdicts are bit-identical to the
in-process path, and one subprocess test exercises the real
``python -m repro`` surface end to end.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.api import Session
from repro.api.cli import main
from repro.frontend import compile_source
from repro.ir.printer import print_module

SOURCE = """
void ins_sort(int* v, int N) {
  int i, j;
  for (i = 0; i < N - 1; i++) {
    for (j = i + 1; j < N; j++) {
      if (v[i] > v[j]) {
        int tmp = v[i];
        v[i] = v[j];
        v[j] = tmp;
      }
    }
  }
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "ins_sort.c"
    path.write_text(SOURCE, encoding="utf-8")
    return str(path)


def test_eval_json_matches_in_process_verdicts(source_file, capsys):
    assert main(["eval", source_file, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)

    with Session() as session:
        results = session.run_workload(
            [("ins_sort", SOURCE)],
            specs=(("basicaa",), ("lt",), ("basicaa", "lt")),
            workers=0, store=False)
    expected = results[0]

    (unit,) = payload["units"]
    assert unit["name"] == "ins_sort"
    assert sorted(unit["labels"]) == sorted(expected.labels)
    for label in expected.labels:
        assert unit["labels"][label]["verdicts"] == expected.verdicts(label)
        assert (unit["labels"][label]["counts"]
                == expected.evaluation(label).as_dict())


def test_eval_table_and_csv(source_file, tmp_path, capsys):
    csv_path = str(tmp_path / "out.csv")
    assert main(["eval", source_file, "--csv", csv_path]) == 0
    out = capsys.readouterr().out
    assert "ins_sort" in out
    assert "basicaa+lt" in out
    with open(csv_path, encoding="utf-8") as handle:
        header = handle.readline()
    assert header.startswith("benchmark,")


def test_eval_synth_smoke(capsys):
    assert main(["eval", "--synth", "testsuite", "--count", "2"]) == 0
    out = capsys.readouterr().out
    assert "testsuite_000" in out
    assert "TOTAL" in out


def test_eval_without_input_is_an_error(capsys):
    assert main(["eval"]) == 2
    assert "eval needs" in capsys.readouterr().err


def test_print_ir_golden(source_file, capsys):
    assert main(["print-ir", source_file]) == 0
    printed = capsys.readouterr().out
    expected = print_module(compile_source(SOURCE, module_name="ins_sort"))
    assert printed == expected


def test_stats_smoke(source_file, capsys):
    assert main(["stats", source_file]) == 0
    out = capsys.readouterr().out
    assert "[less-than solver]" in out
    assert "constraints" in out
    assert "no_alias_ratio" in out


def test_store_info_evict_clear(source_file, tmp_path, capsys):
    store_path = str(tmp_path / "cli-store.sqlite")
    assert main(["eval", source_file, "--store", store_path]) == 0
    capsys.readouterr()

    assert main(["store", "info", store_path]) == 0
    info_out = capsys.readouterr().out
    assert "entries" in info_out
    assert "size_bytes" in info_out

    assert main(["store", "evict", store_path, "--max-mb", "0.000001"]) == 0
    assert "evicted" in capsys.readouterr().out

    assert main(["store", "clear", store_path]) == 0
    assert "cleared" in capsys.readouterr().out


def test_invalid_configuration_exits_2(source_file, capsys):
    assert main(["eval", source_file, "--workers", "-1"]) == 2
    assert "workers" in capsys.readouterr().err
    assert main(["eval", source_file, "--specs", "bogus"]) == 2
    assert "bogus" in capsys.readouterr().err


def test_missing_source_file_exits_2(capsys):
    assert main(["eval", "/nonexistent/path.c"]) == 2
    assert "error" in capsys.readouterr().err


def test_cli_subprocess_end_to_end(tmp_path):
    """The real ``python -m repro`` surface, once, in a subprocess."""
    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(repo_root, "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    env.pop("REPRO_WORKERS", None)  # keep the smoke run serial and fast
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "eval", "--synth", "testsuite",
         "--count", "1"],
        capture_output=True, text=True, env=env, cwd=str(tmp_path),
        timeout=120)
    assert completed.returncode == 0, completed.stderr
    assert "testsuite_000" in completed.stdout


def test_eval_synth_honours_seed_flag(capsys):
    """--seed reaches the synthetic generators (top of the precedence chain)."""
    assert main(["eval", "--synth", "testsuite", "--count", "1", "--json"]) == 0
    default_payload = json.loads(capsys.readouterr().out)
    assert main(["eval", "--synth", "testsuite", "--count", "1", "--json",
                 "--seed", "42"]) == 0
    seeded_payload = json.loads(capsys.readouterr().out)

    from repro.synth import build_testsuite_sources
    assert build_testsuite_sources(count=1, base_seed=42) \
        != build_testsuite_sources(count=1)  # the seed changes the workload
    assert seeded_payload != default_payload


def test_store_commands_refuse_missing_path(tmp_path, capsys):
    missing = str(tmp_path / "typo.sqlite")
    for action in ("info", "evict", "clear"):
        argv = ["store", action, missing]
        if action == "evict":
            argv += ["--max-mb", "1"]
        assert main(argv) == 2
        assert "no analysis store" in capsys.readouterr().err
    assert not os.path.exists(missing)  # nothing was created at the typo


def test_eval_rejects_json_with_csv(source_file, tmp_path, capsys):
    csv_path = str(tmp_path / "out.csv")
    assert main(["eval", source_file, "--json", "--csv", csv_path]) == 2
    assert "mutually exclusive" in capsys.readouterr().err
    assert not os.path.exists(csv_path)
