"""Tests for the ``Session`` facade.

Covers the fluent pipeline, cache/store coherence across calls, the
precedence of explicit arguments over config fields over the environment,
and bit-identity between the facade and the legacy module-level entry
points (which are now shims over it).
"""

import os

import pytest

from repro.api import ReproConfig, Session
from repro.api.session import DisambiguationReport
from repro.core.disambiguation import DisambiguationReason
from repro.engine import evaluate_module, run_workload
from repro.frontend import compile_source

INS_SORT = """
void ins_sort(int* v, int N) {
  int i, j;
  for (i = 0; i < N - 1; i++) {
    for (j = i + 1; j < N; j++) {
      if (v[i] > v[j]) {
        int tmp = v[i];
        v[i] = v[j];
        v[j] = tmp;
      }
    }
  }
}
"""

PARTITION = """
int partition(int* v, int N) {
  int i = 0;
  int j = N - 1;
  while (i < j) {
    if (v[i] > v[j]) {
      int tmp = v[i];
      v[i] = v[j];
      v[j] = tmp;
    }
    i = i + 1;
    j = j - 1;
  }
  return i;
}
"""

SPECS = (("basicaa",), ("lt",), ("basicaa", "lt"))


def _verdict_map(result):
    return {(label, function): codes
            for label in result.labels
            for function, codes in result.verdicts(label).items()}


# -- the fluent pipeline -------------------------------------------------------

def test_fluent_compile_analyze_disambiguate():
    report = Session().compile(INS_SORT, name="quickstart") \
        .analyze().disambiguate()
    assert isinstance(report, DisambiguationReport)
    assert report.queries == 21
    assert report.no_alias_count == 12
    reasons = {pair.reason for pair in report.resolved()}
    assert DisambiguationReason.INDICES_ORDERED in reasons
    assert all(pair.function == "ins_sort" for pair in report.pairs)
    assert 0.0 < report.no_alias_ratio < 1.0


def test_pipeline_evaluate_shares_the_session_cache():
    session = Session()
    unit = session.compile(INS_SORT, name="m").analyze()
    before = session.cache.statistics.hits
    unit.evaluate(specs=(("lt",),))
    # The evaluation reuses the analysis state analyze() already built.
    assert session.cache.statistics.hits > before


def test_print_ir_shows_current_form():
    session = Session()
    unit = session.compile(INS_SORT, name="m")
    pre = unit.print_ir()
    unit.analyze()
    post = unit.print_ir()
    assert "sigma" not in pre
    assert "sigma" in post  # e-SSA conversion inserted sigma-copies


# -- equivalence with the legacy entry points ----------------------------------

def test_session_matches_run_workload_shim():
    units = [("ins_sort", INS_SORT), ("partition", PARTITION)]
    with Session() as session:
        facade = session.run_workload(units, specs=SPECS, workers=0,
                                      store=False)
    legacy = run_workload(units, specs=SPECS, workers=0, store=False)
    assert len(facade) == len(legacy) == 2
    for left, right in zip(facade, legacy):
        assert left.name == right.name
        assert _verdict_map(left) == _verdict_map(right)
        for label in left.labels:
            assert (left.evaluation(label).as_dict()
                    == right.evaluation(label).as_dict())


def test_session_evaluate_matches_evaluate_module_shim():
    module_a = compile_source(INS_SORT, module_name="m")
    module_b = compile_source(INS_SORT, module_name="m")
    with Session() as session:
        facade = session.evaluate(module_a, specs=SPECS, store=False)
    legacy = evaluate_module(module_b, specs=SPECS, store=False)
    assert _verdict_map(facade) == _verdict_map(legacy)


def test_evaluate_source_matches_run_workload():
    with Session() as session:
        sharded = session.evaluate_source("m", INS_SORT, specs=SPECS,
                                          workers=0, store=False)
        listed = session.run_workload([("m", INS_SORT)], specs=SPECS,
                                      workers=0, store=False)[0]
    assert _verdict_map(sharded) == _verdict_map(listed)


# -- cache/store coherence across calls ----------------------------------------

def test_session_store_is_shared_across_calls(tmp_path):
    path = str(tmp_path / "session-store.sqlite")
    with Session(ReproConfig(store_path=path, workers=0)) as session:
        first = session.store
        cold = session.run_workload([("m", INS_SORT)], specs=(("lt",),))
        warm = session.run_workload([("m", INS_SORT)], specs=(("lt",),))
        assert session.store is first  # one handle for the whole session
        assert cold[0].store_misses > 0
        assert warm[0].store_hits > 0
        assert _verdict_map(cold[0]) == _verdict_map(warm[0])
        stats = session.statistics()
        assert stats["store"]["hits"] > 0
        assert stats["store"]["entries"] > 0
    # close() released the handle; a fresh session warm-reads the same file.
    with Session(ReproConfig(store_path=path, workers=0)) as session:
        rewarm = session.run_workload([("m", INS_SORT)], specs=(("lt",),))
        assert rewarm[0].store_hits > 0


def test_store_false_forces_persistence_free_run(tmp_path):
    path = str(tmp_path / "never.sqlite")
    with Session(ReproConfig(store_path=path, workers=0)) as session:
        session.run_workload([("m", INS_SORT)], specs=(("lt",),), store=False)
    assert not os.path.exists(path)


# -- precedence: explicit argument > config > environment ----------------------

def test_explicit_workers_argument_beats_config_and_env(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "2")
    with Session() as session:
        assert session.config.workers == 2  # from the environment
        # The explicit argument wins: serial, in this very process.
        results = session.run_workload([("m", INS_SORT)], specs=(("lt",),),
                                       workers=0, store=False)
        assert results[0].payload["pid"] == os.getpid()


def test_config_workers_field_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "2")
    with Session(ReproConfig(workers=0)) as session:
        results = session.run_workload([("m", INS_SORT)], specs=(("lt",),),
                                       store=False)
        assert results[0].payload["pid"] == os.getpid()


def test_invalid_explicit_workers_argument_raises():
    from repro.api import ConfigError

    with Session() as session:
        with pytest.raises(ConfigError, match="workers"):
            session.run_workload([("m", INS_SORT)], workers=-1)


def test_session_config_reaches_solver_selection(monkeypatch):
    monkeypatch.delenv("REPRO_RANGE_SOLVER", raising=False)
    session = Session(ReproConfig(range_solver="dense", lt_solver="constraint"))
    unit = session.compile(INS_SORT, name="m").analyze()
    analysis = unit.lessthan()
    assert all(ranges.solver == "dense" for ranges in analysis.ranges.values())
    # Verdicts are bit-identical across solver configurations.
    dense = session.evaluate(unit.module, specs=(("lt",),), store=False)
    sparse_session = Session(ReproConfig(range_solver="sparse"))
    sparse = sparse_session.evaluate(
        sparse_session.compile(INS_SORT, name="m").module,
        specs=(("lt",),), store=False)
    assert _verdict_map(dense) == _verdict_map(sparse)


def test_session_keyword_overrides():
    base = ReproConfig(workers=3)
    session = Session(base, workers=1)
    assert session.config.workers == 1
    assert Session(workers=5).config.workers == 5


def test_report_statistics_are_a_snapshot():
    session = Session()
    unit = session.compile(INS_SORT, name="m").analyze()
    first = unit.disambiguate()
    queries_at_first = first.statistics.queries
    second = unit.disambiguate()
    # Later queries through the same session-cached disambiguator must not
    # retroactively mutate an earlier report.
    assert first.statistics is not second.statistics
    assert first.statistics.queries == queries_at_first
    assert second.statistics.queries == 2 * queries_at_first
