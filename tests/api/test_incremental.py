"""``Session.update_source``: the incremental edit-compile-analyze loop.

The contract under test is *determinism first*: whatever the refresh layer
migrates and the solver reuses, the verdict stream of an incremental update
must be bit-identical to a cold solve of the same source — serially, under
every worklist ordering policy, and against a sharded (``REPRO_WORKERS=2``)
cold run.
"""

import pytest

from repro.api import ReproConfig, Session, UpdateResult

BASE = """
int a(int* v, int n) {
  int i;
  for (i = 0; i < n - 1; i++) { v[i] = v[i + 1] + 1; }
  return v[0];
}
int b(int* v, int n) {
  int y = a(v, n);
  if (y < n) { v[y] = y + 2; }
  return v[y];
}
int c(int* v, int n) {
  int z = b(v, n);
  if (z < 30) { z = z + 3; }
  return z;
}
int lone(int* p, int n) {
  int q = p[0];
  if (q < n) { p[q] = q + 1; }
  return p[q];
}
"""

EDITED = BASE.replace("v[i + 1] + 1", "v[i + 1] + 5")

SPECS = (("lt",), ("basicaa", "lt"))


def _verdicts(result):
    verdicts = {}
    for label in result.labels:
        for function_name, codes in result.verdicts(label).items():
            verdicts[(label, function_name)] = codes
    return verdicts


@pytest.mark.parametrize("order", ["fifo", "scc", "loopdepth"])
def test_update_source_matches_cold_solve(order):
    with Session(ReproConfig(worklist_order=order)) as session:
        session.update_source("m", BASE, SPECS)
        update = session.update_source("m", EDITED, SPECS)
    assert isinstance(update, UpdateResult)
    assert update.refresh.dirty == ["a"]
    with Session(ReproConfig(worklist_order=order)) as cold_session:
        cold = cold_session.evaluate_source("m", EDITED, SPECS)
    assert _verdicts(update.result) == _verdicts(cold)


def test_update_source_matches_sharded_cold_solve():
    with Session() as session:
        session.update_source("m", BASE, SPECS)
        update = session.update_source("m", EDITED, SPECS)
    with Session(workers=2) as sharded_session:
        sharded = sharded_session.evaluate_source("m", EDITED, SPECS,
                                                  workers=2)
    assert _verdicts(update.result) == _verdicts(sharded)


def test_update_source_repeated_edits_stay_consistent():
    sources = [BASE, EDITED, EDITED.replace("y + 2", "y + 4"), BASE]
    with Session() as session:
        for source in sources:
            update = session.update_source("m", source, SPECS)
            with Session() as cold_session:
                cold = cold_session.evaluate_source("m", source, SPECS)
            assert _verdicts(update.result) == _verdicts(cold)
    # Refresh diffs against the *previous* update: reverting to BASE undoes
    # the edits to a (second source) and b (third source).
    assert update.refresh.dirty == ["a", "b"]


def test_update_source_hits_the_store_warm(tmp_path):
    store_path = str(tmp_path / "store.sqlite")
    with Session(store_path=store_path) as session:
        session.update_source("m", BASE, (("lt",),))
        before = dict(session.cache.statistics.by_kind["fingerprint"])
        update = session.update_source("m", EDITED, (("lt",),))
        after = session.cache.statistics.by_kind["fingerprint"]
    # lt is region-scoped: the three untouched functions (b, c, lone) hit
    # their fingerprint-keyed entries; only the edited leaf misses.
    assert after["hits"] - before["hits"] == 3
    assert after["misses"] - before["misses"] == 1
    assert update.refresh.migrated >= 3


def test_update_result_repr_mentions_blast_radius():
    with Session() as session:
        session.update_source("m", BASE, (("lt",),))
        update = session.update_source("m", EDITED, (("lt",),))
    text = repr(update)
    assert "dirty=1" in text and "clean=3" in text


def test_stats_cli_reports_fingerprint_section(tmp_path, capsys):
    from repro.api.cli import main

    source_file = tmp_path / "m.c"
    source_file.write_text(BASE)
    assert main(["stats", str(source_file)]) == 0
    out = capsys.readouterr().out
    assert "[fingerprints]" in out
    assert "call_edges" in out
