"""Tests for the typed ``ReproConfig`` boundary.

The documented precedence chain — explicit argument > ``ReproConfig``
field > ``REPRO_*`` environment variable > default — plus validation:
invalid values raise :class:`ConfigError` with a message naming the
offending source, instead of silently falling back.
"""

import pickle

import pytest

from repro.api.config import (
    ConfigError,
    ReproConfig,
    active_config,
    env_flag,
    env_float,
    env_int,
    install_config,
    resolved_class_limit,
    resolved_full_scale,
    resolved_lt_solver,
    resolved_range_solver,
    resolved_store_backend,
    resolved_store_max_bytes,
    resolved_store_path,
    resolved_synth_seed,
    resolved_interval_kernel,
    resolved_workers,
    resolved_worklist_order,
)

ALL_VARS = (
    "REPRO_WORKERS", "REPRO_STORE", "REPRO_STORE_BACKEND",
    "REPRO_STORE_MAX_MB", "REPRO_RANGE_SOLVER", "REPRO_LT_SOLVER",
    "REPRO_WORKLIST_ORDER", "REPRO_INTERVAL_KERNEL", "REPRO_CLASS_LIMIT",
    "REPRO_SYNTH_SEED", "REPRO_FULL", "REPRO_VERIFY",
)


@pytest.fixture(autouse=True)
def clean_environment(monkeypatch):
    for name in ALL_VARS:
        monkeypatch.delenv(name, raising=False)


def test_defaults_without_environment():
    config = ReproConfig()
    assert config.workers == 0
    assert config.store_path is None
    assert config.store_backend is None
    assert config.store_max_mb is None
    assert config.store_max_bytes is None
    assert config.range_solver == "sparse"
    assert config.lt_solver == "sparse"
    assert config.worklist_order == "fifo"
    assert config.interval_kernel == "scalar"
    assert config.class_limit == 64
    assert config.synth_seed == 7
    assert config.full_scale is False
    assert config.verify == "off"


def test_environment_resolution(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "4")
    monkeypatch.setenv("REPRO_STORE", "/tmp/store.sqlite")
    monkeypatch.setenv("REPRO_STORE_BACKEND", "pickle")
    monkeypatch.setenv("REPRO_STORE_MAX_MB", "1.5")
    monkeypatch.setenv("REPRO_RANGE_SOLVER", "dense")
    monkeypatch.setenv("REPRO_LT_SOLVER", "constraint")
    monkeypatch.setenv("REPRO_WORKLIST_ORDER", "scc")
    monkeypatch.setenv("REPRO_INTERVAL_KERNEL", "batch")
    monkeypatch.setenv("REPRO_CLASS_LIMIT", "8")
    monkeypatch.setenv("REPRO_SYNTH_SEED", "11")
    monkeypatch.setenv("REPRO_FULL", "1")
    monkeypatch.setenv("REPRO_VERIFY", "paranoid")
    config = ReproConfig()
    assert config.workers == 4
    assert config.store_path == "/tmp/store.sqlite"
    assert config.store_backend == "pickle"
    assert config.store_max_mb == 1.5
    assert config.store_max_bytes == int(1.5 * 1024 * 1024)
    assert config.range_solver == "dense"
    assert config.lt_solver == "constraint"
    assert config.worklist_order == "scc"
    assert config.interval_kernel == "batch"
    assert config.class_limit == 8
    assert config.synth_seed == 11
    assert config.full_scale is True
    assert config.verify == "paranoid"


def test_explicit_field_beats_environment(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "4")
    monkeypatch.setenv("REPRO_STORE", "/tmp/env-store.sqlite")
    monkeypatch.setenv("REPRO_RANGE_SOLVER", "dense")
    config = ReproConfig(workers=1, store_path=None, range_solver="sparse")
    assert config.workers == 1
    assert config.store_path is None  # explicit None disables the env store
    assert config.range_solver == "sparse"


def test_zero_budget_means_unbounded():
    assert ReproConfig(store_max_mb=0).store_max_bytes is None
    assert ReproConfig(store_max_mb=2).store_max_bytes == 2 * 1024 * 1024


@pytest.mark.parametrize("env_var,value", [
    ("REPRO_WORKERS", "abc"),
    ("REPRO_WORKERS", "-1"),
    ("REPRO_STORE_MAX_MB", "-5"),
    ("REPRO_STORE_MAX_MB", "lots"),
    ("REPRO_STORE_BACKEND", "mysql"),
    ("REPRO_RANGE_SOLVER", "nonsense"),
    ("REPRO_LT_SOLVER", "bogus"),
    ("REPRO_WORKLIST_ORDER", "priority"),
    ("REPRO_INTERVAL_KERNEL", "simd"),
    ("REPRO_CLASS_LIMIT", "-3"),
    ("REPRO_SYNTH_SEED", "x"),
    ("REPRO_FULL", "maybe"),
    ("REPRO_VERIFY", "always"),
])
def test_invalid_environment_values_raise(monkeypatch, env_var, value):
    monkeypatch.setenv(env_var, value)
    with pytest.raises(ConfigError, match=env_var):
        ReproConfig()


@pytest.mark.parametrize("field,value", [
    ("workers", "abc"),
    ("workers", -1),
    ("store_max_mb", -0.5),
    ("store_backend", "mysql"),
    ("range_solver", "nonsense"),
    ("lt_solver", "bogus"),
    ("worklist_order", "priority"),
    ("interval_kernel", "simd"),
    ("class_limit", -3),
    ("verify", "always"),
])
def test_invalid_explicit_values_name_the_field(field, value):
    with pytest.raises(ConfigError, match=field):
        ReproConfig(**{field: value})


def test_replace_revalidates():
    config = ReproConfig(workers=2)
    derived = config.replace(workers=5)
    assert (config.workers, derived.workers) == (2, 5)
    with pytest.raises(ConfigError, match="workers"):
        config.replace(workers=-1)


def test_active_config_wins_over_environment(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "4")
    monkeypatch.setenv("REPRO_RANGE_SOLVER", "dense")
    config = ReproConfig(workers=0, range_solver="sparse", class_limit=0,
                         store_path="/tmp/cfg.sqlite", store_backend="pickle",
                         store_max_mb=1, lt_solver="constraint", synth_seed=3,
                         full_scale=True)
    assert active_config() is None
    assert resolved_workers() == 4  # environment (no active config)
    with config.activate():
        assert active_config() is config
        assert resolved_workers() == 0
        assert resolved_range_solver() == "sparse"
        assert resolved_lt_solver() == "constraint"
        assert resolved_store_path() == "/tmp/cfg.sqlite"
        assert resolved_store_backend() == "pickle"
        assert resolved_store_max_bytes() == 1024 * 1024
        assert resolved_class_limit() is None  # 0 = unlimited
        assert resolved_synth_seed() == 3
        assert resolved_full_scale() is True
        # Nested configs shadow the outer one, then restore it.
        with config.replace(workers=7).activate():
            assert resolved_workers() == 7
        assert resolved_workers() == 0
    assert active_config() is None
    assert resolved_workers() == 4


def test_resolved_class_limit_default():
    assert resolved_class_limit() == 64


def test_worklist_order_precedence(monkeypatch):
    assert resolved_worklist_order() == "fifo"
    monkeypatch.setenv("REPRO_WORKLIST_ORDER", "loopdepth")
    assert resolved_worklist_order() == "loopdepth"
    # An active config's field wins over the environment.
    with ReproConfig(worklist_order="scc").activate():
        assert resolved_worklist_order() == "scc"
    assert resolved_worklist_order() == "loopdepth"


def test_interval_kernel_precedence(monkeypatch):
    assert resolved_interval_kernel() == "scalar"
    monkeypatch.setenv("REPRO_INTERVAL_KERNEL", "numpy")
    assert resolved_interval_kernel() == "numpy"
    # An active config's field wins over the environment.
    with ReproConfig(interval_kernel="batch").activate():
        assert resolved_interval_kernel() == "batch"
    assert resolved_interval_kernel() == "numpy"


def test_install_config_is_idempotent():
    config = ReproConfig(workers=3)
    try:
        install_config(config)
        install_config(config)
        assert resolved_workers() == 3
    finally:
        from repro.api import config as config_module
        config_module._ACTIVE.clear()


def test_config_is_hashable_and_picklable():
    config = ReproConfig(workers=2, store_path="/tmp/s.pkl")
    assert hash(config) == hash(ReproConfig(workers=2, store_path="/tmp/s.pkl"))
    assert pickle.loads(pickle.dumps(config)) == config


def test_env_helpers(monkeypatch):
    assert env_int("REPRO_SCALING_WORKERS", 4) == 4
    monkeypatch.setenv("REPRO_SCALING_WORKERS", "2")
    assert env_int("REPRO_SCALING_WORKERS", 4) == 2
    monkeypatch.setenv("REPRO_MIN_SPEEDUP", "2.5")
    assert env_float("REPRO_MIN_SPEEDUP", 5.0) == 2.5
    monkeypatch.setenv("REPRO_MIN_SPEEDUP", "fast")
    with pytest.raises(ConfigError, match="REPRO_MIN_SPEEDUP"):
        env_float("REPRO_MIN_SPEEDUP", 5.0)
    monkeypatch.setenv("REPRO_FULL", "yes")
    assert env_flag("REPRO_FULL") is True
