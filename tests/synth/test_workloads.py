"""Tests for the benchmark-program composition and the SPEC-like profiles."""

import pytest

from repro.ir import verify_module
from repro.synth import SPEC_PROFILES, build_spec_module, spec_benchmarks, build_testsuite_programs
from repro.synth.spec_profiles import ALLOC_KERNEL_POOL, POINTER_KERNEL_POOL, SpecProfile
from repro.synth.workloads import compose_program


def test_compose_program_renames_duplicate_kernels():
    program = compose_program("dup", ["ins_sort", "ins_sort", "vector_add"])
    names = {f.name for f in program.module.functions}
    assert "ins_sort_k0" in names and "ins_sort_k1" in names
    assert "vector_add_k2" in names
    assert "main" in names
    verify_module(program.module)


def test_compose_program_with_random_functions():
    program = compose_program("mixed", ["memcopy"], [(42, 15, 3)])
    names = {f.name for f in program.module.functions}
    assert any(name.startswith("work_r") for name in names)
    assert program.instruction_count > 0
    assert "memcopy" in program.source


def test_spec_profiles_cover_the_sixteen_benchmarks():
    assert len(SPEC_PROFILES) == 16
    assert "lbm" in SPEC_PROFILES and "gcc" in SPEC_PROFILES
    for profile in SPEC_PROFILES.values():
        assert profile.scale > 0
    # The pools do not overlap.
    assert not set(POINTER_KERNEL_POOL) & set(ALLOC_KERNEL_POOL)


def test_build_spec_module_compiles_and_is_deterministic():
    first = build_spec_module(SPEC_PROFILES["lbm"])
    second = build_spec_module(SPEC_PROFILES["lbm"])
    assert first.source == second.source
    verify_module(first.module)
    assert first.name == "spec_lbm"


def test_spec_benchmarks_subset_selection():
    programs = spec_benchmarks(["lbm", "sjeng"])
    assert [p.name for p in programs] == ["spec_lbm", "spec_sjeng"]
    with pytest.raises(KeyError):
        spec_benchmarks(["not_a_benchmark"])


def test_pointer_heavy_profiles_contain_more_pointer_kernels():
    lbm = SPEC_PROFILES["lbm"]
    sjeng = SPEC_PROFILES["sjeng"]
    assert lbm.pointer_kernels > lbm.alloc_kernels
    assert sjeng.alloc_kernels > sjeng.pointer_kernels


def test_build_testsuite_programs_sizes_grow():
    programs = build_testsuite_programs(count=12)
    assert len(programs) == 12
    sizes = [p.instruction_count for p in programs]
    # Not strictly monotonic (kernels differ) but the last quarter must be
    # larger than the first quarter on average.
    assert sum(sizes[-3:]) > sum(sizes[:3])
    for program in programs[:3]:
        verify_module(program.module)


def test_build_testsuite_programs_are_reproducible():
    first = build_testsuite_programs(count=3)
    second = build_testsuite_programs(count=3)
    assert [p.source for p in first] == [p.source for p in second]
