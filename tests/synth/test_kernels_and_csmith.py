"""Tests for the kernel library and the Csmith-like generator."""

import pytest

from repro.ir import verify_module
from repro.ir.interpreter import Interpreter
from repro.synth import (
    CsmithConfig,
    KERNEL_SOURCES,
    RandomProgramGenerator,
    generate_random_module,
    kernel_module,
    kernel_names,
)


def test_kernel_catalogue_is_nontrivial():
    names = kernel_names()
    assert len(names) >= 15
    assert "ins_sort" in names and "partition" in names
    assert set(names) == set(KERNEL_SOURCES)


@pytest.mark.parametrize("name", kernel_names())
def test_every_kernel_compiles_and_verifies(name):
    module = kernel_module(name)
    verify_module(module)
    assert module.instruction_count() > 0


def test_unknown_kernel_raises():
    with pytest.raises(KeyError):
        kernel_module("does_not_exist")


def test_kernel_execution_spot_checks():
    interp = Interpreter(kernel_module("reverse_in_place"))
    array = interp.allocate_array([1, 2, 3, 4])
    interp.run("reverse_in_place", [array, 4])
    assert interp.read_array(array, 4) == [4, 3, 2, 1]

    interp = Interpreter(kernel_module("dot_product"))
    a = interp.allocate_array([1, 2, 3])
    b = interp.allocate_array([4, 5, 6])
    assert interp.run("dot_product", [a, b, 3]) == 32

    interp = Interpreter(kernel_module("binary_search"))
    v = interp.allocate_array([1, 3, 5, 7, 9])
    assert interp.run("binary_search", [v, 5, 7]) == 3

    interp = Interpreter(kernel_module("alloc_buffers"))
    assert interp.run("alloc_buffers", [4]) == 9


def test_generator_is_deterministic_per_seed():
    config = CsmithConfig(seed=11, pointer_depth=3)
    first = RandomProgramGenerator(config).generate_source()
    second = RandomProgramGenerator(CsmithConfig(seed=11, pointer_depth=3)).generate_source()
    third = RandomProgramGenerator(CsmithConfig(seed=12, pointer_depth=3)).generate_source()
    assert first == second
    assert first != third


def test_generator_single_function_plus_main():
    source = RandomProgramGenerator(CsmithConfig(seed=3)).generate_source()
    assert source.count("int work()") == 1
    assert source.count("int main()") == 1


@pytest.mark.parametrize("depth", [2, 4, 7])
def test_generated_programs_compile_verify_and_run(depth):
    module = generate_random_module(seed=depth * 17, pointer_depth=depth,
                                    statement_count=25, loop_count=2)
    verify_module(module)
    # The programs are closed (no inputs): they must run without memory errors.
    result = Interpreter(module, max_steps=200000).run("main", [])
    assert isinstance(result, int)


def test_generated_program_respects_allocation_site_count():
    config = CsmithConfig(seed=5, array_count=6)
    source = RandomProgramGenerator(config).generate_source()
    assert source.count("int arr") == 6


@pytest.mark.parametrize("seed", range(6))
def test_many_seeds_execute_in_bounds(seed):
    module = generate_random_module(seed=seed, pointer_depth=2 + seed % 6,
                                    statement_count=30)
    result = Interpreter(module, max_steps=200000).run("main", [])
    assert isinstance(result, int)
