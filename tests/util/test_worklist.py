"""Unit tests for :class:`repro.util.Worklist`."""

from repro.util import Worklist


def test_fifo_order():
    wl = Worklist([1, 2, 3])
    assert wl.pop() == 1
    assert wl.pop() == 2
    assert wl.pop() == 3
    assert not wl


def test_duplicate_suppression():
    wl = Worklist()
    assert wl.push("a") is True
    assert wl.push("a") is False
    assert len(wl) == 1
    wl.pop()
    # After popping, the same item may be queued again.
    assert wl.push("a") is True


def test_extend_counts_new_items():
    wl = Worklist([1])
    added = wl.extend([1, 2, 3])
    assert added == 2
    assert len(wl) == 3


def test_contains_tracks_pending_only():
    wl = Worklist([1])
    assert 1 in wl
    wl.pop()
    assert 1 not in wl


def test_pop_and_push_counters():
    wl = Worklist()
    wl.push(1)
    wl.push(2)
    wl.pop()
    wl.pop()
    wl.push(1)
    assert wl.pushes == 3
    assert wl.pops == 2
