"""Unit tests for the shared worklist machinery.

The plain FIFO :class:`Worklist`, the policy-ranked
:class:`PriorityWorklist`, the range solver's ``(sweep, rank)``
:class:`SweepWorklist`, the :class:`SolverInfo` counter struct and the
policy-name validation the config layer leans on.
"""

import pytest

from repro.util import Worklist
from repro.util.worklist import (
    WORKLIST_ORDERS,
    PriorityWorklist,
    SolverInfo,
    SweepWorklist,
    validate_order,
)


def test_fifo_order():
    wl = Worklist([1, 2, 3])
    assert wl.pop() == 1
    assert wl.pop() == 2
    assert wl.pop() == 3
    assert not wl


def test_duplicate_suppression():
    wl = Worklist()
    assert wl.push("a") is True
    assert wl.push("a") is False
    assert len(wl) == 1
    wl.pop()
    # After popping, the same item may be queued again.
    assert wl.push("a") is True


def test_extend_counts_new_items():
    wl = Worklist([1])
    added = wl.extend([1, 2, 3])
    assert added == 2
    assert len(wl) == 3


def test_contains_tracks_pending_only():
    wl = Worklist([1])
    assert 1 in wl
    wl.pop()
    assert 1 not in wl


def test_pop_and_push_counters():
    wl = Worklist()
    wl.push(1)
    wl.push(2)
    wl.pop()
    wl.pop()
    wl.push(1)
    assert wl.pushes == 3
    assert wl.pops == 2


# -- policy registry ----------------------------------------------------------------

def test_validate_order_accepts_every_registered_policy():
    for order in WORKLIST_ORDERS:
        assert validate_order(order) == order


def test_validate_order_rejects_unknown_policies():
    with pytest.raises(ValueError, match="priority"):
        validate_order("priority")


# -- PriorityWorklist ---------------------------------------------------------------

def test_priority_worklist_without_ranks_is_fifo():
    wl = PriorityWorklist(items=["c", "a", "b"])
    assert [wl.pop(), wl.pop(), wl.pop()] == ["c", "a", "b"]
    assert not wl


def test_priority_worklist_pops_in_rank_order():
    wl = PriorityWorklist(ranks={"a": 2, "b": 0, "c": 1},
                          items=["a", "b", "c"])
    assert [wl.pop(), wl.pop(), wl.pop()] == ["b", "c", "a"]


def test_priority_worklist_breaks_ties_by_insertion_order():
    wl = PriorityWorklist(ranks={"x": 1, "y": 1, "z": 0})
    for item in ("y", "x", "z"):
        wl.push(item)
    assert [wl.pop(), wl.pop(), wl.pop()] == ["z", "y", "x"]


def test_priority_worklist_coalesces_duplicate_pushes():
    wl = PriorityWorklist(ranks={"a": 0})
    assert wl.push("a") is True
    assert wl.push("a") is False
    assert wl.coalesced == 1
    assert len(wl) == 1
    assert "a" in wl
    wl.pop()
    assert "a" not in wl
    # After a pop the same item may be scheduled again.
    assert wl.push("a") is True
    assert wl.pushes == 2


# -- SweepWorklist ------------------------------------------------------------------

def test_sweep_worklist_seeds_and_pops_in_rank_order():
    wl = SweepWorklist([2, 0, 1])
    assert len(wl) == 3
    assert wl.next_sweep() == 0
    assert [wl.pop()[1] for _ in range(3)] == [1, 2, 0]
    assert wl.next_sweep() is None
    assert not wl


def test_sweep_rule_same_sweep_forward_next_sweep_backward():
    # A dependent ranked after the changed member is revisited in the same
    # sweep (a dense pass would have seen the update too); one ranked before
    # it waits for the next sweep.
    wl = SweepWorklist([0, 1, 2], seed_sweep=None)
    wl.schedule(0, 1, [2, 0])
    assert wl.pop() == (0, 2)   # rank 2 > rank 1: same sweep
    assert wl.pop() == (1, 0)   # rank 0 < rank 1: next sweep
    assert not wl


def test_sweep_worklist_dedups_per_sweep():
    wl = SweepWorklist([0, 1], seed_sweep=None)
    assert wl.push(0, 1) is True
    assert wl.push(0, 1) is False
    assert wl.coalesced == 1
    # The same index in a different sweep is a distinct entry.
    assert wl.push(1, 1) is True
    assert wl.pop() == (0, 1)
    assert wl.pop() == (1, 1)


# -- SolverInfo ---------------------------------------------------------------------

def _info():
    info = SolverInfo(evaluations=10, widenings=2, narrowings=3,
                      sccs=4, cyclic_sccs=1)
    info.record_pops("fifo", 7)
    info.record_pops("scc", 5)
    return info


def test_solver_info_merge_sums_everything():
    other = SolverInfo(evaluations=1, widenings=1, narrowings=1,
                       sccs=1, cyclic_sccs=1, pops={"scc": 2, "loopdepth": 4})
    merged = _info().merge(other)
    assert merged.evaluations == 11
    assert merged.widenings == 3
    assert merged.narrowings == 4
    assert merged.sccs == 5
    assert merged.cyclic_sccs == 2
    assert merged.pops == {"fifo": 7, "scc": 7, "loopdepth": 4}


def test_solver_info_merge_is_commutative_and_lossless():
    a, b = _info(), SolverInfo(evaluations=3, pops={"fifo": 1})
    assert a.merge(b) == b.merge(a)
    assert a.merge(SolverInfo()) == a


def test_solver_info_record_pops_ignores_zero():
    info = SolverInfo()
    info.record_pops("fifo", 0)
    assert info.pops == {}


def test_solver_info_dict_round_trip():
    original = _info()
    rebuilt = SolverInfo.from_dict(original.as_dict())
    assert rebuilt == original
    assert rebuilt.as_dict() == original.as_dict()
    assert SolverInfo.from_dict({}) == SolverInfo()
