"""Tests for the benchmark harness helpers (heterogeneous row handling)."""

import csv
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                                "benchmarks"))

import harness


HETEROGENEOUS_ROWS = [
    {"benchmark": "a", "queries": 10, "no_alias": 3},
    {"benchmark": "b", "queries": 20, "speedup": 2.5},
    {"benchmark": "TOTAL", "queries": 30, "no_alias": 3, "speedup": 2.5,
     "repeats": 3},
]


def test_union_fieldnames_preserves_first_appearance_order():
    assert harness.union_fieldnames(HETEROGENEOUS_ROWS) == [
        "benchmark", "queries", "no_alias", "speedup", "repeats"]


def test_write_results_with_heterogeneous_rows(tmp_path, monkeypatch):
    monkeypatch.setattr(harness, "RESULTS_DIR", str(tmp_path))
    path = harness.write_results("hetero", HETEROGENEOUS_ROWS)
    with open(path, newline="", encoding="utf-8") as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 3
    # Missing cells come back blank, present cells round-trip.
    assert rows[0]["no_alias"] == "3"
    assert rows[0]["speedup"] == ""
    assert rows[1]["speedup"] == "2.5"
    assert rows[1]["no_alias"] == ""
    assert rows[2]["repeats"] == "3"


def test_write_results_empty_rows_is_a_no_op(tmp_path, monkeypatch):
    monkeypatch.setattr(harness, "RESULTS_DIR", str(tmp_path))
    path = harness.write_results("empty", [])
    assert not os.path.exists(path)


def test_print_table_with_heterogeneous_rows(capsys):
    harness.print_table("title", HETEROGENEOUS_ROWS)
    out = capsys.readouterr().out
    assert "title" in out
    assert "speedup" in out and "repeats" in out
    # One line per row plus the header; no exception despite missing keys.
    assert out.count("\n") >= 5


def test_print_table_empty(capsys):
    harness.print_table("empty", [])
    assert "(no rows)" in capsys.readouterr().out


def test_write_results_is_atomic_and_leaves_no_temp_files(tmp_path, monkeypatch):
    monkeypatch.setattr(harness, "RESULTS_DIR", str(tmp_path))
    harness.write_results("atomic", HETEROGENEOUS_ROWS)
    # Concurrent writers rename distinct temp files into place; after a
    # write, only the final CSV remains.
    assert sorted(os.listdir(str(tmp_path))) == ["atomic.csv"]
    # Overwriting is a whole-file replacement, not an in-place truncate.
    harness.write_results("atomic", HETEROGENEOUS_ROWS[:1])
    with open(str(tmp_path / "atomic.csv"), newline="", encoding="utf-8") as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 1
