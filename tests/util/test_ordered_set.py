"""Unit tests for :class:`repro.util.OrderedSet`."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import OrderedSet


def test_preserves_insertion_order():
    s = OrderedSet([3, 1, 2, 1])
    assert list(s) == [3, 1, 2]


def test_membership_and_len():
    s = OrderedSet("abc")
    assert "a" in s
    assert "z" not in s
    assert len(s) == 3
    assert bool(s)
    assert not bool(OrderedSet())


def test_add_and_discard():
    s = OrderedSet()
    s.add(1)
    s.add(1)
    s.add(2)
    assert list(s) == [1, 2]
    s.discard(1)
    s.discard(42)  # no error
    assert list(s) == [2]


def test_remove_missing_raises():
    s = OrderedSet([1])
    with pytest.raises(KeyError):
        s.remove(2)


def test_pop_returns_oldest():
    s = OrderedSet([5, 6, 7])
    assert s.pop() == 5
    assert list(s) == [6, 7]


def test_union_intersection_difference():
    a = OrderedSet([1, 2, 3])
    b = OrderedSet([2, 3, 4])
    assert list(a.union(b)) == [1, 2, 3, 4]
    assert list(a.intersection(b)) == [2, 3]
    assert list(a.difference(b)) == [1]
    # Non-mutating: originals unchanged.
    assert list(a) == [1, 2, 3]
    assert list(b) == [2, 3, 4]


def test_operator_sugar():
    a = OrderedSet([1, 2])
    b = OrderedSet([2, 3])
    assert (a | b) == {1, 2, 3}
    assert (a & b) == {2}
    assert (a - b) == {1}


def test_update_variants():
    s = OrderedSet([1, 2, 3, 4])
    s.intersection_update([2, 3, 9])
    assert list(s) == [2, 3]
    s.update([5, 2])
    assert list(s) == [2, 3, 5]
    s.difference_update([3])
    assert list(s) == [2, 5]


def test_subset_superset_disjoint():
    a = OrderedSet([1, 2])
    assert a.issubset([1, 2, 3])
    assert not a.issubset([1])
    assert a.issuperset([1])
    assert a.isdisjoint([7, 8])
    assert not a.isdisjoint([2])


def test_equality_with_set_and_ordered_set():
    assert OrderedSet([1, 2]) == {2, 1}
    assert OrderedSet([1, 2]) == OrderedSet([2, 1])
    assert OrderedSet([1]) != OrderedSet([2])


def test_copy_is_independent():
    a = OrderedSet([1])
    b = a.copy()
    b.add(2)
    assert 2 not in a


def test_unhashable():
    with pytest.raises(TypeError):
        hash(OrderedSet())


@given(st.lists(st.integers()), st.lists(st.integers()))
def test_matches_builtin_set_semantics(xs, ys):
    """OrderedSet union/intersection/difference agree with built-in set."""
    a, b = OrderedSet(xs), OrderedSet(ys)
    assert set(a.union(b)) == set(xs) | set(ys)
    assert set(a.intersection(b)) == set(xs) & set(ys)
    assert set(a.difference(b)) == set(xs) - set(ys)


@given(st.lists(st.integers(), min_size=1))
def test_iteration_order_is_first_occurrence_order(xs):
    seen = []
    for x in xs:
        if x not in seen:
            seen.append(x)
    assert list(OrderedSet(xs)) == seen
