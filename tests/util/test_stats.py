"""Unit tests for the statistics helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import coefficient_of_determination, linear_regression, mean, median, summarize


def test_mean_and_median_basic():
    assert mean([1, 2, 3]) == 2
    assert median([1, 2, 3]) == 2
    assert median([1, 2, 3, 4]) == 2.5


def test_mean_empty_raises():
    with pytest.raises(ValueError):
        mean([])
    with pytest.raises(ValueError):
        median([])
    with pytest.raises(ValueError):
        summarize([])


def test_linear_regression_exact_line():
    xs = [0, 1, 2, 3]
    ys = [5, 7, 9, 11]
    slope, intercept = linear_regression(xs, ys)
    assert slope == pytest.approx(2.0)
    assert intercept == pytest.approx(5.0)


def test_linear_regression_requires_two_points():
    with pytest.raises(ValueError):
        linear_regression([1], [1])
    with pytest.raises(ValueError):
        linear_regression([1, 1], [1, 2])
    with pytest.raises(ValueError):
        linear_regression([1, 2], [1])


def test_r_squared_perfect_fit_is_one():
    xs = list(range(10))
    ys = [3 * x + 1 for x in xs]
    assert coefficient_of_determination(xs, ys) == pytest.approx(1.0)


def test_r_squared_constant_y():
    assert coefficient_of_determination([1, 2, 3], [5, 5, 5]) == pytest.approx(1.0)


def test_r_squared_noisy_fit_below_one():
    xs = [0, 1, 2, 3, 4]
    ys = [0, 5, 1, 6, 2]
    r2 = coefficient_of_determination(xs, ys)
    assert 0.0 <= r2 < 1.0


def test_summarize_fields():
    summary = summarize([4, 1, 3, 2])
    assert summary["min"] == 1
    assert summary["max"] == 4
    assert summary["mean"] == 2.5
    assert summary["median"] == 2.5


@given(
    st.lists(st.integers(-1000, 1000), min_size=2, max_size=50).filter(
        lambda xs: len(set(xs)) > 1
    ),
    st.integers(-10, 10),
    st.integers(-100, 100),
)
def test_r_squared_of_exact_linear_data_is_one(xs, slope, intercept):
    ys = [slope * x + intercept for x in xs]
    assert coefficient_of_determination(xs, ys) == pytest.approx(1.0, abs=1e-9)


@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100))
def test_median_is_between_min_and_max(values):
    m = median(values)
    assert min(values) <= m <= max(values)
