"""Unit tests for :class:`repro.util.UnionFind`."""

from hypothesis import given
from hypothesis import strategies as st

from repro.util import UnionFind


def test_singletons_are_their_own_representatives():
    uf = UnionFind()
    uf.make_set("a")
    assert uf.find("a") == "a"
    assert "a" in uf
    assert "b" not in uf


def test_find_registers_unknown_items():
    uf = UnionFind()
    assert uf.find(42) == 42
    assert 42 in uf


def test_union_and_connected():
    uf = UnionFind()
    uf.union(1, 2)
    uf.union(3, 4)
    assert uf.connected(1, 2)
    assert uf.connected(3, 4)
    assert not uf.connected(1, 3)
    uf.union(2, 3)
    assert uf.connected(1, 4)


def test_union_is_idempotent():
    uf = UnionFind()
    root1 = uf.union("x", "y")
    root2 = uf.union("x", "y")
    assert root1 == root2


def test_groups_partition_all_members():
    uf = UnionFind()
    uf.union(1, 2)
    uf.union(3, 4)
    uf.make_set(5)
    groups = uf.groups()
    flattened = sorted(x for group in groups for x in group)
    assert flattened == [1, 2, 3, 4, 5]
    assert len(groups) == 3
    assert len(uf) == 5


@given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20))))
def test_connectivity_matches_graph_reachability(edges):
    """Union-find connectivity equals undirected reachability over the edges."""
    uf = UnionFind()
    adjacency = {}
    for a, b in edges:
        uf.union(a, b)
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)

    def reachable(start, goal):
        seen, stack = {start}, [start]
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            for nxt in adjacency.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    nodes = list(adjacency)
    for a in nodes[:5]:
        for b in nodes[:5]:
            assert uf.connected(a, b) == reachable(a, b)
