"""Unit tests for the DOT graph emitter."""

from repro.util.dot import DotGraph


def test_empty_graph_renders():
    text = DotGraph("Empty").to_dot()
    assert text.startswith("digraph Empty {")
    assert text.rstrip().endswith("}")


def test_nodes_and_edges_appear():
    g = DotGraph()
    g.add_node("a", label="Block A", shape="box")
    g.add_edge("a", "b", label="true")
    text = g.to_dot()
    assert '"a"' in text
    assert '"b"' in text
    assert 'label="Block A"' in text
    assert 'shape="box"' in text
    assert '"a" -> "b"' in text
    assert g.node_count == 2
    assert g.edge_count == 1


def test_undirected_graph_uses_dashes():
    g = DotGraph(directed=False)
    g.add_edge("x", "y")
    assert '"x" -- "y"' in g.to_dot()


def test_labels_are_escaped():
    g = DotGraph()
    g.add_node("n", label='say "hi"\nthere')
    text = g.to_dot()
    assert '\\"hi\\"' in text
    assert "\\n" in text


def test_write_to_file(tmp_path):
    g = DotGraph()
    g.add_edge("a", "b")
    path = tmp_path / "graph.dot"
    g.write(str(path))
    assert path.read_text().startswith("digraph")
