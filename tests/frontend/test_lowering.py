"""Tests for lowering mini-C to IR (checked by executing the result)."""

import pytest

from repro.frontend import LoweringError, compile_source
from repro.ir import verify_module
from repro.ir.interpreter import Interpreter

INS_SORT = """
void ins_sort(int* v, int N) {
  int i, j;
  for (i = 0; i < N - 1; i++) {
    for (j = i + 1; j < N; j++) {
      if (v[i] > v[j]) {
        int tmp = v[i];
        v[i] = v[j];
        v[j] = tmp;
      }
    }
  }
}
"""

PARTITION = """
void partition(int *v, int N) {
  int i, j, p, tmp;
  p = v[N / 2];
  for (i = 0, j = N - 1; 1; i++, j--) {
    while (v[i] < p) i++;
    while (p < v[j]) j--;
    if (i >= j)
      break;
    tmp = v[i];
    v[i] = v[j];
    v[j] = tmp;
  }
}
"""


def run(source, function, args, arrays=None):
    """Compile ``source``, allocate ``arrays`` and run ``function``."""
    module = compile_source(source)
    interp = Interpreter(module)
    concrete_args = []
    allocated = {}
    for arg in args:
        if isinstance(arg, list):
            pointer = interp.allocate_array(arg)
            allocated[id(arg)] = (pointer, len(arg))
            concrete_args.append(pointer)
        else:
            concrete_args.append(arg)
    result = interp.run(function, concrete_args)
    out_arrays = []
    for arg in args:
        if isinstance(arg, list):
            pointer, length = allocated[id(arg)]
            out_arrays.append(interp.read_array(pointer, length))
    return result, out_arrays


def test_simple_arithmetic_function():
    result, _ = run("int f(int a, int b) { return a * 2 + b % 3; }", "f", [5, 7])
    assert result == 11


def test_local_variables_and_assignment():
    source = "int f(int x) { int y = x + 1; int z; z = y * y; return z - 1; }"
    result, _ = run(source, "f", [3])
    assert result == 15


def test_if_else_lowering():
    source = "int mymax(int a, int b) { if (a < b) { return b; } else { return a; } }"
    assert run(source, "mymax", [3, 9])[0] == 9
    assert run(source, "mymax", [9, 3])[0] == 9


def test_while_loop_and_compound_assignment():
    source = "int sum_to(int n) { int total = 0; int i = 1; while (i <= n) { total += i; i++; } return total; }"
    assert run(source, "sum_to", [10])[0] == 55
    assert run(source, "sum_to", [0])[0] == 0


def test_for_loop_over_array_argument():
    source = """
    int sum(int* v, int n) {
        int total = 0;
        int i;
        for (i = 0; i < n; i++) total += v[i];
        return total;
    }
    """
    result, _ = run(source, "sum", [[1, 2, 3, 4, 5], 5])
    assert result == 15


def test_local_array_and_pointer_arithmetic():
    source = """
    int f() {
        int a[8];
        int* p = a;
        int i;
        for (i = 0; i < 8; i++) { p[i] = i * i; }
        return a[5] + *(p + 2);
    }
    """
    assert run(source, "f", [])[0] == 29


def test_logical_operators_in_conditions():
    source = """
    int clamp_indicator(int x, int lo, int hi) {
        if (x >= lo && x <= hi) return 1;
        if (x < lo || x > hi) return 0;
        return 2;
    }
    """
    assert run(source, "clamp_indicator", [5, 0, 10])[0] == 1
    assert run(source, "clamp_indicator", [-3, 0, 10])[0] == 0


def test_break_and_continue():
    source = """
    int count_evens_until_negative(int* v, int n) {
        int i, count = 0;
        for (i = 0; i < n; i++) {
            if (v[i] < 0) break;
            if (v[i] % 2 != 0) continue;
            count++;
        }
        return count;
    }
    """
    assert run(source, "count_evens_until_negative", [[2, 3, 4, -1, 6], 5])[0] == 2


def test_function_calls_and_malloc():
    source = """
    int square(int x) { return x * x; }
    int f(int n) {
        int* buffer = malloc(n);
        int i;
        for (i = 0; i < n; i++) buffer[i] = square(i);
        return buffer[n - 1];
    }
    """
    assert run(source, "f", [6])[0] == 25


def test_unary_operators():
    source = "int f(int x) { int y = -x; return !y + y; }"
    assert run(source, "f", [5])[0] == -5
    assert run(source, "f", [0])[0] == 1


def test_ins_sort_sorts():
    values = [5, 1, 4, 2, 3]
    _result, arrays = run(INS_SORT, "ins_sort", [values, 5])
    assert arrays[0] == [1, 2, 3, 4, 5]


def test_partition_splits_around_pivot():
    values = [9, 1, 8, 2, 7, 3, 6, 4]
    _result, arrays = run(PARTITION, "partition", [values, 8])
    out = arrays[0]
    assert sorted(out) == sorted(values)
    pivot = values[len(values) // 2]
    # After partitioning, some split point separates values <= pivot from >= pivot.
    boundary = max(i for i, value in enumerate(out) if value <= pivot)
    assert all(value <= pivot for value in out[:boundary + 1]) or \
        all(value >= pivot for value in out[boundary + 1:])


def test_verifier_accepts_all_lowered_modules():
    module = compile_source(INS_SORT + PARTITION)
    verify_module(module)
    assert module.get_function("ins_sort") is not None
    assert module.get_function("partition") is not None


def test_lowering_errors():
    with pytest.raises(LoweringError, match="undeclared"):
        compile_source("int f() { return missing; }")
    with pytest.raises(LoweringError, match="undefined function"):
        compile_source("int f() { return g(); }")
    with pytest.raises(LoweringError, match="break"):
        compile_source("int f() { break; return 0; }")
    with pytest.raises(LoweringError, match="not assignable"):
        compile_source("int f() { 3 = 4; return 0; }")
    with pytest.raises(LoweringError, match="void"):
        compile_source("int f() { void x; return 0; }")


def test_void_function_returns_none():
    module = compile_source("void nothing(int x) { x = x + 1; }")
    assert Interpreter(module).run("nothing", [1]) is None
