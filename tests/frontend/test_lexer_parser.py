"""Tests for the mini-C lexer and parser."""

import pytest

from repro.frontend import LexerError, ParseError, ast, parse_program, tokenize


def test_tokenize_basic_program():
    tokens = tokenize("int f(int x) { return x + 1; }")
    kinds = [t.kind for t in tokens]
    texts = [t.text for t in tokens]
    assert kinds[0] == "keyword" and texts[0] == "int"
    assert "ident" in kinds
    assert texts[-2] == "}"
    assert kinds[-1] == "eof"


def test_tokenize_multicharacter_operators():
    tokens = tokenize("a <= b && c != d || e >= f")
    ops = [t.text for t in tokens if t.kind == "op"]
    assert ops == ["<=", "&&", "!=", "||", ">="]


def test_tokenize_comments_and_lines():
    tokens = tokenize("int a; // comment\n/* block\ncomment */ int b;")
    idents = [t.text for t in tokens if t.kind == "ident"]
    assert idents == ["a", "b"]


def test_tokenize_rejects_garbage():
    with pytest.raises(LexerError):
        tokenize("int a = @;")
    with pytest.raises(LexerError):
        tokenize("/* never closed")


def test_parse_function_with_parameters():
    program = parse_program("void ins(int* v, int N) { }")
    assert len(program.functions) == 1
    function = program.functions[0]
    assert function.name == "ins"
    assert function.return_type.base == "void"
    assert [p.name for p in function.parameters] == ["v", "N"]
    assert function.parameters[0].type_spec.pointer_depth == 1


def test_parse_declarations_and_loops():
    source = """
    int sum(int* v, int n) {
        int i, total = 0;
        for (i = 0; i < n; i++) {
            total += v[i];
        }
        return total;
    }
    """
    program = parse_program(source)
    body = program.functions[0].body
    assert isinstance(body.statements[0], ast.DeclarationStmt)
    assert len(body.statements[0].declarators) == 2
    assert isinstance(body.statements[1], ast.ForStmt)
    assert isinstance(body.statements[2], ast.ReturnStmt)


def test_parse_if_else_and_while():
    source = """
    int f(int a, int b) {
        while (a < b) {
            if (a > 0) { a = a - 1; } else { b = b - 1; }
        }
        return a;
    }
    """
    program = parse_program(source)
    loop = program.functions[0].body.statements[0]
    assert isinstance(loop, ast.WhileStmt)
    branch = loop.body.statements[0]
    assert isinstance(branch, ast.IfStmt)
    assert branch.else_branch is not None


def test_parse_operator_precedence():
    program = parse_program("int f() { return 1 + 2 * 3 < 10; }")
    expr = program.functions[0].body.statements[0].value
    # (1 + (2*3)) < 10
    assert isinstance(expr, ast.BinaryExpr) and expr.op == "<"
    assert isinstance(expr.lhs, ast.BinaryExpr) and expr.lhs.op == "+"
    assert isinstance(expr.lhs.rhs, ast.BinaryExpr) and expr.lhs.rhs.op == "*"


def test_parse_index_deref_and_calls():
    program = parse_program("int f(int* p) { return p[2] + *p + g(p, 1); }")
    expr = program.functions[0].body.statements[0].value
    assert isinstance(expr, ast.BinaryExpr)
    assert isinstance(expr.rhs, ast.CallExpr)
    assert expr.rhs.callee == "g"
    assert len(expr.rhs.arguments) == 2


def test_parse_for_with_comma_and_increments():
    source = "void f(int N) { int i; int j; for (i = 0, j = N; i < j; i++, j--) { } }"
    program = parse_program(source)
    loop = program.functions[0].body.statements[2]
    assert isinstance(loop, ast.ForStmt)
    assert isinstance(loop.init, ast.ExpressionStmt)
    assert isinstance(loop.init.expression, ast.BinaryExpr)
    assert loop.init.expression.op == ","
    assert isinstance(loop.step, ast.BinaryExpr)


def test_parse_prefix_increment_desugars_to_compound_assignment():
    program = parse_program("void f(int x) { ++x; --x; x++; }")
    statements = program.functions[0].body.statements
    for statement in statements:
        assert isinstance(statement.expression, ast.AssignExpr)
    assert statements[0].expression.op == "+="
    assert statements[1].expression.op == "-="


def test_parse_errors_are_reported_with_position():
    with pytest.raises(ParseError, match="line"):
        parse_program("int f( { }")
    with pytest.raises(ParseError):
        parse_program("int f() { return 1 }")
    with pytest.raises(ParseError):
        parse_program("int f() { int a[n]; }")
    with pytest.raises(ParseError):
        parse_program("int 3() { }")


def test_program_function_lookup():
    program = parse_program("int a() { return 1; } int b() { return 2; }")
    assert program.function("a") is not None
    assert program.function("missing") is None
