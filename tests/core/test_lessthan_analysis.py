"""End-to-end tests of the less-than analysis on IR programs."""

from repro.core import LessThanAnalysis
from repro.core.lessthan.generation import ConstraintGenerator
from repro.core.lessthan.inequality_graph import InequalityGraph
from repro.ir import Copy, INT, IRBuilder, Module, pointer_to, verify_function
from tests.helpers import (
    build_counting_loop_module,
    build_diamond_module,
    build_figure3_module,
    build_straightline_module,
    build_two_index_loop_module,
)


def find(function, name):
    value = function.value_by_name(name)
    assert value is not None, "no value named {}".format(name)
    return value


def test_straightline_addition_and_subtraction():
    module, function = build_straightline_module()
    analysis = LessThanAnalysis(function)
    a, b = function.arguments
    c = find(function, "c")          # c = a + b (unknown signs: no relation)
    d = find(function, "d")          # d = c - 1
    assert not analysis.is_less_than(a, c)
    assert analysis.lt(d) == frozenset()
    # The split copy of c knows that d < c' (c's new name).
    split = [i for i in function.instructions() if isinstance(i, Copy) and i.kind == "split"]
    assert len(split) == 1
    assert analysis.is_less_than(d, split[0])


def test_positive_increment_creates_relation():
    module = Module("m")
    f = module.create_function("f", INT, [INT], ["x"])
    entry = f.append_block(name="entry")
    builder = IRBuilder(entry)
    x = f.arguments[0]
    y = builder.add(x, builder.const(1), "y")
    z = builder.add(y, builder.const(5), "z")
    builder.ret(z)
    analysis = LessThanAnalysis(f)
    assert analysis.is_less_than(x, y)
    assert analysis.is_less_than(x, z)
    assert analysis.is_less_than(y, z)
    assert not analysis.is_less_than(z, x)
    assert analysis.ordered(x, z)


def test_zero_or_unknown_increment_creates_no_relation():
    module = Module("m")
    f = module.create_function("f", INT, [INT, INT], ["x", "n"])
    entry = f.append_block(name="entry")
    builder = IRBuilder(entry)
    x, n = f.arguments
    y = builder.add(x, builder.const(0), "y")
    z = builder.add(x, n, "z")
    builder.ret(z)
    analysis = LessThanAnalysis(f)
    assert not analysis.is_less_than(x, y)
    assert not analysis.is_less_than(x, z)


def test_counting_loop_i_less_than_n_inside_body():
    module, function = build_counting_loop_module()
    analysis = LessThanAnalysis(function)
    body = function.block_by_name("body")
    # Inside the body (true branch of i < n), the σ-copy of i is < the σ-copy of n.
    sigma_i = [i for i in body.instructions
               if isinstance(i, Copy) and i.kind == "sigma" and i.sigma_operand_side == "lhs"]
    sigma_n = [i for i in body.instructions
               if isinstance(i, Copy) and i.kind == "sigma" and i.sigma_operand_side == "rhs"]
    assert sigma_i and sigma_n
    assert analysis.is_less_than(sigma_i[0], sigma_n[0])
    # The loop phi itself carries no relation with n (it may reach n at exit).
    i_phi = function.block_by_name("header").phis()[0]
    n = function.arguments[0]
    assert not analysis.is_less_than(i_phi, n)


def test_two_index_loop_orders_gep_indices_and_pointers():
    module, function = build_two_index_loop_module()
    analysis = LessThanAnalysis(function)
    body = function.block_by_name("body")
    geps = [i for i in body.instructions if i.opcode == "gep"]
    p_i, p_j = geps
    # Criterion 2 material: the indices are ordered.
    assert analysis.is_less_than(p_i.index, p_j.index)
    # Criterion 1 material: v < v[j] because j > 0 on the true branch.
    v = function.arguments[0]
    assert analysis.is_less_than(v, p_j)


def test_figure3_key_relations():
    module, function = build_figure3_module()
    analysis = LessThanAnalysis(function)
    x0 = function.arguments[0]
    x1 = find(function, "x1")
    x2 = find(function, "x2")
    x3 = find(function, "x3")
    x4 = find(function, "x4")
    x6 = find(function, "x6")
    assert analysis.is_less_than(x0, x1)      # x1 = x0 + 1
    assert analysis.is_less_than(x0, x2)      # through the phi (both inputs > x0)
    # x3 = x2 + 1 uses the sigma-renamed x2, so the relation is with x0 (and
    # with x2's new name), not with the stale phi name itself.
    assert analysis.is_less_than(x0, x3)
    assert analysis.lt(x4) == frozenset()     # x4 = x2 - 2 learns nothing for x4
    assert analysis.lt(x6) == frozenset()     # phi over unrelated values


def test_diamond_branch_information():
    module, function = build_diamond_module()
    analysis = LessThanAnalysis(function)
    then_block = function.block_by_name("then")
    sigma = {(c.sigma_operand_side, c.sigma_on_true_branch): c
             for c in function.instructions()
             if isinstance(c, Copy) and c.kind == "sigma"}
    a_true = sigma[("lhs", True)]
    b_true = sigma[("rhs", True)]
    a_false = sigma[("lhs", False)]
    b_false = sigma[("rhs", False)]
    # True branch of (a < b): a_t < b_t.
    assert analysis.is_less_than(a_true, b_true)
    # False branch: b <= a, no strict relation either way.
    assert not analysis.is_less_than(a_false, b_false)
    assert not analysis.is_less_than(b_false, a_false)


def test_interprocedural_pseudo_phi_links_arguments():
    module = Module("m")
    callee = module.create_function("callee", INT, [INT, INT], ["lo", "hi"])
    centry = callee.append_block(name="entry")
    cb = IRBuilder(centry)
    lo, hi = callee.arguments
    cb.ret(cb.add(lo, hi))
    caller = module.create_function("caller", INT, [INT], ["x"])
    entry = caller.append_block(name="entry")
    builder = IRBuilder(entry)
    x = caller.arguments[0]
    bigger = builder.add(x, builder.const(10), "bigger")
    builder.call(callee, [x, bigger], "res")
    builder.ret(x)
    analysis = LessThanAnalysis(module, interprocedural=True)
    # The pseudo-phi binds the callee formal `hi` to the actual arguments of
    # its call sites, so the caller-side fact x < bigger becomes x < hi.
    assert analysis.is_less_than(x, hi)
    assert not analysis.is_less_than(x, lo)
    # Without the pseudo-phis the formal stays unconstrained.
    fresh_module = Module("fresh")
    g = fresh_module.create_function("g", INT, [INT], ["y"])
    gentry = g.append_block(name="entry")
    IRBuilder(gentry).ret(g.arguments[0])
    intra = LessThanAnalysis(fresh_module, interprocedural=False)
    assert intra.lt(g.arguments[0]) == frozenset()


def test_constraint_generation_is_linear_and_covers_all_values():
    module, function = build_two_index_loop_module()
    analysis = LessThanAnalysis(function)
    # One constraint per argument plus one per value-producing instruction.
    producing = sum(1 for i in function.instructions() if i.produces_value())
    assert analysis.constraint_count() == producing + len(function.arguments)
    assert analysis.statistics.constraint_count == analysis.constraint_count()
    assert analysis.statistics.pops_per_constraint >= 1.0


def test_inequality_graph_matches_lt_sets():
    module, function = build_two_index_loop_module()
    analysis = LessThanAnalysis(function)
    graph = analysis.inequality_graph()
    assert isinstance(graph, InequalityGraph)
    for greater, smaller_set in analysis.lt_sets.items():
        for smaller in smaller_set:
            assert graph.has_edge(smaller, greater)
    dot = graph.to_dot()
    assert dot.startswith("digraph")


def test_analysis_on_already_converted_function():
    module, function = build_diamond_module()
    first = LessThanAnalysis(function)
    # Running the analysis again on the (already e-SSA) function must not
    # duplicate copies or change the verdicts.
    count = function.instruction_count()
    second = LessThanAnalysis(function)
    assert function.instruction_count() == count
    a, b = function.arguments
    assert first.ordered(a, b) == second.ordered(a, b)
    verify_function(function)
