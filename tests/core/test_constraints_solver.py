"""Unit tests for constraint objects and the worklist solver in isolation.

These tests build small constraint systems by hand (mirroring Example 3.4 /
3.5 of the paper) without going through IR, so that the solver's behaviour is
pinned down independently of constraint generation.
"""

import pytest

from repro.core.lessthan.constraints import (
    InitConstraint,
    IntersectionConstraint,
    TOP,
    UnionConstraint,
)
from repro.core.lessthan.solver import ConstraintSolver, default_lt_solver
from repro.ir import INT
from repro.ir.values import Value


def var(name):
    return Value(INT, name)


def test_union_constraint_evaluation():
    x, y, z = var("x"), var("y"), var("z")
    constraint = UnionConstraint(x, [y], [z])
    assert constraint.evaluate({z: frozenset({y})}) == frozenset({y})
    assert constraint.evaluate({z: frozenset()}) == frozenset({y})
    assert constraint.evaluate({z: TOP}) is TOP
    assert "LT(x)" in constraint.describe()


def test_intersection_constraint_evaluation():
    x, a, b = var("x"), var("a"), var("b")
    s, t = var("s"), var("t")
    constraint = IntersectionConstraint(x, [a, b])
    state = {a: frozenset({s, t}), b: frozenset({t})}
    assert constraint.evaluate(state) == frozenset({t})
    # TOP behaves as the identity of intersection.
    assert constraint.evaluate({a: TOP, b: frozenset({s})}) == frozenset({s})
    assert constraint.evaluate({a: TOP, b: TOP}) is TOP


def test_init_constraint_is_empty():
    x = var("x")
    assert InitConstraint(x).evaluate({}) == frozenset()


def test_solver_simple_chain():
    # x1 = x0 + 1 ; x2 = x1 + 1  =>  LT(x1) = {x0}, LT(x2) = {x0, x1}
    x0, x1, x2 = var("x0"), var("x1"), var("x2")
    constraints = [
        InitConstraint(x0),
        UnionConstraint(x1, [x0], [x0]),
        UnionConstraint(x2, [x1], [x1]),
    ]
    solution = ConstraintSolver(constraints).solve()
    assert solution[x0] == frozenset()
    assert solution[x1] == frozenset({x0})
    assert solution[x2] == frozenset({x0, x1})


def test_solver_example_3_5_from_the_paper():
    """The constraint system of Example 3.4 solves to the sets of Example 3.5."""
    names = ["x0", "x1", "x2", "x3", "x4", "x5", "x6", "x1f", "x1t", "x4f", "x4t"]
    v = {name: var(name) for name in names}
    constraints = [
        InitConstraint(v["x0"]),
        UnionConstraint(v["x1"], [v["x0"]], [v["x0"]]),
        IntersectionConstraint(v["x2"], [v["x1"], v["x3"]]),
        UnionConstraint(v["x3"], [v["x2"]], [v["x2"]]),
        InitConstraint(v["x4"]),
        UnionConstraint(v["x5"], [v["x4"]], [v["x2"]]),
        UnionConstraint(v["x1t"], [v["x4t"]], [v["x4t"], v["x1"]]),
        UnionConstraint(v["x1f"], [], [v["x1"]]),
        # Example 3.4 of the paper prints this constraint with an
        # intersection, but rule 5 of Figure 7 (and the solution given in
        # Example 3.5, LT(x4f) = {x0}) requires the union form.
        UnionConstraint(v["x4f"], [], [v["x1f"], v["x4"]]),
        UnionConstraint(v["x4t"], [], [v["x4"]]),
        IntersectionConstraint(v["x6"], [v["x3"], v["x4t"], v["x4"]]),
    ]
    solution = ConstraintSolver(constraints).solve()
    expect = {
        "x0": set(), "x4": set(), "x4t": set(), "x6": set(),
        "x1": {"x0"}, "x2": {"x0"}, "x4f": {"x0"}, "x1f": {"x0"},
        "x3": {"x0", "x2"}, "x5": {"x0", "x4"}, "x1t": {"x0", "x4t"},
    }
    for name, expected_names in expect.items():
        got = {value.name for value in solution[v[name]]}
        assert got == expected_names, "LT({}) = {} != {}".format(name, got, expected_names)


def test_solver_statistics_are_populated():
    x0, x1 = var("x0"), var("x1")
    solver = ConstraintSolver([InitConstraint(x0), UnionConstraint(x1, [x0], [x0])])
    solver.solve()
    stats = solver.statistics
    assert stats.constraint_count == 2
    assert stats.worklist_pops >= 2
    assert stats.pops_per_constraint >= 1.0
    assert stats.solve_time_seconds >= 0.0
    assert stats.as_dict()["constraints"] == 2


def test_solver_handles_cyclic_union_through_phi():
    # Loop: i = phi(0-init, inc); inc = i + 1.  LT(i) must stay empty and
    # LT(inc) must contain i, with no infinite growth.
    init, i, inc = var("init"), var("i"), var("inc")
    constraints = [
        InitConstraint(init),
        IntersectionConstraint(i, [init, inc]),
        UnionConstraint(inc, [i], [i]),
    ]
    solution = ConstraintSolver(constraints).solve()
    assert solution[i] == frozenset()
    assert solution[inc] == frozenset({i})


def test_unconstrained_cycle_degenerates_to_empty():
    a, b = var("a"), var("b")
    constraints = [
        IntersectionConstraint(a, [b]),
        IntersectionConstraint(b, [a]),
    ]
    solution = ConstraintSolver(constraints).solve()
    assert solution[a] == frozenset()
    assert solution[b] == frozenset()


def _example_systems():
    """The constraint systems of the tests above, rebuilt fresh per call."""
    x0, x1, x2 = var("x0"), var("x1"), var("x2")
    chain = [
        InitConstraint(x0),
        UnionConstraint(x1, [x0], [x0]),
        UnionConstraint(x2, [x1], [x1]),
    ]
    init, i, inc = var("init"), var("i"), var("inc")
    cycle = [
        InitConstraint(init),
        IntersectionConstraint(i, [init, inc]),
        UnionConstraint(inc, [i], [i]),
    ]
    a, b = var("a"), var("b")
    degenerate = [
        IntersectionConstraint(a, [b]),
        IntersectionConstraint(b, [a]),
    ]
    return {"chain": chain, "cycle": cycle, "degenerate": degenerate}


def test_sparse_and_constraint_strategies_agree():
    for name, constraints in _example_systems().items():
        sparse = ConstraintSolver(constraints, strategy="sparse").solve()
        legacy = ConstraintSolver(constraints, strategy="constraint").solve()
        assert sparse == legacy, name


def test_sparse_statistics_prove_the_reduction():
    constraints = _example_systems()["cycle"]
    solver = ConstraintSolver(constraints, strategy="sparse")
    solver.solve()
    stats = solver.statistics
    # Every constraint is visited at least once (the seed pass)...
    assert stats.worklist_pops >= stats.constraint_count
    # ...the worklist is keyed by variable...
    assert stats.variable_pops > 0
    # ...and the dict shape carries the new counters.
    as_dict = stats.as_dict()
    for key in ("variable_pops", "coalesced_pushes", "skip_ratio"):
        assert key in as_dict
    assert 0.0 <= stats.skip_ratio <= 1.0


def test_sparse_never_evaluates_more_than_legacy():
    for name, constraints in _example_systems().items():
        sparse = ConstraintSolver(constraints, strategy="sparse")
        legacy = ConstraintSolver(constraints, strategy="constraint")
        sparse.solve()
        legacy.solve()
        assert sparse.statistics.worklist_pops <= legacy.statistics.worklist_pops, name


def test_strategy_selection_via_environment(monkeypatch):
    from repro.api.config import ConfigError

    monkeypatch.setenv("REPRO_LT_SOLVER", "constraint")
    assert default_lt_solver() == "constraint"
    assert ConstraintSolver([]).strategy == "constraint"
    # Invalid values fail loudly at the config boundary (no silent fallback).
    monkeypatch.setenv("REPRO_LT_SOLVER", "bogus")
    with pytest.raises(ConfigError, match="REPRO_LT_SOLVER"):
        default_lt_solver()
    monkeypatch.delenv("REPRO_LT_SOLVER")
    assert ConstraintSolver([]).strategy == "sparse"
    with pytest.raises(ValueError):
        ConstraintSolver([], strategy="unknown")
