"""Cache-coherence suite: cached and uncached pipelines must agree exactly.

The caching subsystem and the batched query engine are pure performance
work: on an unchanged module, the cached pipeline must produce bit-identical
``lt_sets``, disambiguation reasons and ``aa-eval`` verdict counts to the
seed (uncached, pair-by-pair) pipeline.  These tests check that on the
synthetic workloads, plus the invalidation-after-mutation contract.

The e-SSA conversion mutates modules in place, so each pipeline analyses its
own module compiled from the same deterministic source.
"""

from repro.alias import (
    AliasAnalysisChain,
    BasicAliasAnalysis,
    MemoryLocation,
    alias_many,
    collect_memory_locations,
    evaluate_module,
)
from repro.alias.aaeval import AliasEvaluation, collect_pointer_values
from repro.core import (
    LessThanAnalysis,
    PointerDisambiguator,
    StrictInequalityAliasAnalysis,
)
from repro.passes import FunctionAnalysisCache
from repro.synth import build_testsuite_programs, spec_benchmarks


def _workload_pair():
    """The same small synth workloads, compiled twice (analysis mutates IR)."""
    first = build_testsuite_programs(count=3, base_seed=5)
    second = build_testsuite_programs(count=3, base_seed=5)
    return list(zip(first, second))


def _value_key(value):
    function = getattr(value, "function", None)
    if function is None:
        parent = getattr(value, "parent", None)
        function = parent.parent if parent is not None else None
    return (function.name if function is not None else "", value.name)


def _lt_sets_by_name(analysis):
    by_name = {}
    for value, lt_set in analysis.lt_sets.items():
        by_name[_value_key(value)] = frozenset(_value_key(v) for v in lt_set)
    return by_name


def _reasons_by_name(module, disambiguator):
    reasons = {}
    for function in module.defined_functions():
        pointers = collect_pointer_values(function)
        for i in range(len(pointers)):
            for j in range(i + 1, len(pointers)):
                reason = disambiguator.disambiguate(pointers[i], pointers[j])
                reasons[(function.name, pointers[i].name, pointers[j].name)] = reason
    return reasons


def test_cached_and_uncached_lt_sets_are_identical():
    for cached_program, seed_program in _workload_pair():
        cache = FunctionAnalysisCache()
        cached = cache.module_lessthan(cached_program.module)
        seed = LessThanAnalysis(seed_program.module, build_essa=True,
                                interprocedural=True)
        assert _lt_sets_by_name(cached) == _lt_sets_by_name(seed), \
            cached_program.name


def test_cached_and_uncached_disambiguation_reasons_are_identical():
    for cached_program, seed_program in _workload_pair():
        cache = FunctionAnalysisCache()
        cached_disambiguator = cache.module_disambiguator(cached_program.module)
        seed_analysis = LessThanAnalysis(seed_program.module, build_essa=True,
                                         interprocedural=True)
        seed_disambiguator = PointerDisambiguator(seed_analysis, memoize=False)
        cached_reasons = _reasons_by_name(cached_program.module, cached_disambiguator)
        seed_reasons = _reasons_by_name(seed_program.module, seed_disambiguator)
        assert cached_reasons == seed_reasons, cached_program.name


def test_cached_and_uncached_aaeval_counts_are_identical():
    for cached_program, seed_program in _workload_pair():
        cache = FunctionAnalysisCache()
        cached_lt = StrictInequalityAliasAnalysis(cached_program.module, cache=cache)
        seed_lt = StrictInequalityAliasAnalysis(seed_program.module)
        cached_eval = evaluate_module(cached_program.module, cached_lt)
        seed_eval = evaluate_module(seed_program.module, seed_lt)
        assert cached_eval.as_dict() == seed_eval.as_dict(), cached_program.name
        # Chained with BA the counts must agree too.
        cached_chain = AliasAnalysisChain([BasicAliasAnalysis(), cached_lt])
        seed_chain = AliasAnalysisChain([BasicAliasAnalysis(), seed_lt])
        assert (evaluate_module(cached_program.module, cached_chain).as_dict()
                == evaluate_module(seed_program.module, seed_chain).as_dict())


def test_batched_engine_matches_pairwise_queries():
    """alias_many must agree with pair-by-pair alias() on the same module."""
    program = spec_benchmarks(["lbm"])[0]
    cache = FunctionAnalysisCache()
    lt = StrictInequalityAliasAnalysis(program.module, cache=cache)
    for function in program.module.defined_functions():
        locations = collect_memory_locations(function)
        batched = alias_many(lt, locations)
        pairwise = AliasEvaluation()
        for i in range(len(locations)):
            for j in range(i + 1, len(locations)):
                pairwise.record(lt.alias(locations[i], locations[j]))
        assert batched.as_dict() == pairwise.as_dict(), function.name


def test_repeated_cached_evaluation_is_stable():
    program = build_testsuite_programs(count=1, base_seed=9)[0]
    cache = FunctionAnalysisCache()
    lt = StrictInequalityAliasAnalysis(program.module, cache=cache)
    first = evaluate_module(program.module, lt)
    for _ in range(3):
        again = evaluate_module(
            program.module,
            StrictInequalityAliasAnalysis(program.module, cache=cache))
        assert again.as_dict() == first.as_dict()
    # Every repetition after the first hits the cache.
    assert cache.statistics.hits > 0


def test_invalidation_after_mutation_changes_results_coherently():
    """After a mutation + invalidate, cached results match a fresh pipeline."""
    from repro.ir import INT, IRBuilder, Module, pointer_to
    from repro.ir.instructions import GetElementPtr

    module = Module("mut")
    int_ptr = pointer_to(INT)
    function = module.create_function("f", INT, [int_ptr, INT], ["p", "n"])
    entry = function.append_block(name="entry")
    builder = IRBuilder(entry)
    p, n = function.arguments
    q = builder.gep(p, n, "q")
    builder.store(builder.const(1), q)
    builder.ret(builder.const(0))

    cache = FunctionAnalysisCache()
    before = evaluate_module(
        module, StrictInequalityAliasAnalysis(module, cache=cache))

    # Mutation: derive another pointer r = q + n, creating new query pairs.
    r = GetElementPtr(q, n, "r")
    entry.insert(entry.instructions.index(entry.terminator), r)

    cache.invalidate(function)
    after_cached = evaluate_module(
        module, StrictInequalityAliasAnalysis(module, cache=cache))
    after_seed = evaluate_module(module, StrictInequalityAliasAnalysis(module))
    assert after_cached.total_queries > before.total_queries
    assert after_cached.as_dict() == after_seed.as_dict()
