"""Lossless aggregation of per-shard counters on the coordinator."""

from repro.alias import AliasEvaluation, AliasResult
from repro.core.disambiguation import DisambiguationStatistics
from repro.util.worklist import SolverInfo


def _statistics(queries, truncated, largest, memoized, solver=None):
    statistics = DisambiguationStatistics()
    statistics.queries = queries
    statistics.truncated_classes = truncated
    statistics.largest_class = largest
    statistics.memoized_values = memoized
    if solver is not None:
        statistics.solver = solver
    return statistics


def test_disambiguation_statistics_merge_sums_counters_and_maxes_largest():
    merged = _statistics(10, 1, 5, 3).merge(_statistics(7, 2, 9, 4))
    assert merged.queries == 17
    assert merged.truncated_classes == 3
    assert merged.largest_class == 9  # max, not sum: it is itself a maximum
    assert merged.memoized_values == 7


def test_disambiguation_statistics_merge_is_commutative():
    a = _statistics(3, 0, 12, 1)
    b = _statistics(5, 4, 2, 9)
    assert a.merge(b).as_dict() == b.merge(a).as_dict()


def test_disambiguation_statistics_dict_round_trip():
    original = _statistics(10, 1, 5, 3)
    rebuilt = DisambiguationStatistics.from_dict(original.as_dict())
    assert rebuilt.as_dict() == original.as_dict()
    assert DisambiguationStatistics.from_dict({}).as_dict() == \
        DisambiguationStatistics().as_dict()


def test_disambiguation_statistics_merge_sums_solver_counters():
    a = _statistics(1, 0, 1, 0,
                    solver=SolverInfo(evaluations=40, widenings=3, sccs=9,
                                      cyclic_sccs=2, pops={"fifo": 30}))
    b = _statistics(2, 0, 1, 0,
                    solver=SolverInfo(evaluations=15, narrowings=4, sccs=5,
                                      pops={"fifo": 10, "scc": 6}))
    merged = a.merge(b)
    assert merged.solver.evaluations == 55
    assert merged.solver.widenings == 3
    assert merged.solver.narrowings == 4
    assert merged.solver.sccs == 14
    assert merged.solver.cyclic_sccs == 2
    assert merged.solver.pops == {"fifo": 40, "scc": 6}
    # The originals are untouched (merge returns a fresh struct).
    assert a.solver.evaluations == 40
    assert b.solver.evaluations == 15


def test_disambiguation_statistics_solver_survives_dict_round_trip():
    original = _statistics(3, 1, 2, 0,
                           solver=SolverInfo(evaluations=7, pops={"scc": 7}))
    rebuilt = DisambiguationStatistics.from_dict(original.as_dict())
    assert rebuilt.solver == original.solver
    # Legacy payloads without the key deserialize to empty counters.
    assert DisambiguationStatistics.from_dict({}).solver == SolverInfo()


def test_alias_evaluation_dict_round_trip():
    evaluation = AliasEvaluation()
    evaluation.no_alias = 4
    evaluation.may_alias = 2
    evaluation.partial_alias = 1
    evaluation.must_alias = 3
    rebuilt = AliasEvaluation.from_dict(evaluation.as_dict())
    assert rebuilt.as_dict() == evaluation.as_dict()
    assert rebuilt.total_queries == 10


def test_alias_result_codes_round_trip():
    for result in AliasResult:
        assert AliasResult.from_code(result.code) is result
    assert len({result.code for result in AliasResult}) == len(list(AliasResult))
