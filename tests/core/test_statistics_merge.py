"""Lossless aggregation of per-shard counters on the coordinator."""

from repro.alias import AliasEvaluation, AliasResult
from repro.core.disambiguation import DisambiguationStatistics


def _statistics(queries, truncated, largest, memoized):
    statistics = DisambiguationStatistics()
    statistics.queries = queries
    statistics.truncated_classes = truncated
    statistics.largest_class = largest
    statistics.memoized_values = memoized
    return statistics


def test_disambiguation_statistics_merge_sums_counters_and_maxes_largest():
    merged = _statistics(10, 1, 5, 3).merge(_statistics(7, 2, 9, 4))
    assert merged.queries == 17
    assert merged.truncated_classes == 3
    assert merged.largest_class == 9  # max, not sum: it is itself a maximum
    assert merged.memoized_values == 7


def test_disambiguation_statistics_merge_is_commutative():
    a = _statistics(3, 0, 12, 1)
    b = _statistics(5, 4, 2, 9)
    assert a.merge(b).as_dict() == b.merge(a).as_dict()


def test_disambiguation_statistics_dict_round_trip():
    original = _statistics(10, 1, 5, 3)
    rebuilt = DisambiguationStatistics.from_dict(original.as_dict())
    assert rebuilt.as_dict() == original.as_dict()
    assert DisambiguationStatistics.from_dict({}).as_dict() == \
        DisambiguationStatistics().as_dict()


def test_alias_evaluation_dict_round_trip():
    evaluation = AliasEvaluation()
    evaluation.no_alias = 4
    evaluation.may_alias = 2
    evaluation.partial_alias = 1
    evaluation.must_alias = 3
    rebuilt = AliasEvaluation.from_dict(evaluation.as_dict())
    assert rebuilt.as_dict() == evaluation.as_dict()
    assert rebuilt.total_queries == 10


def test_alias_result_codes_round_trip():
    for result in AliasResult:
        assert AliasResult.from_code(result.code) is result
    assert len({result.code for result in AliasResult}) == len(list(AliasResult))
