"""Tests for the related-work baselines used in the ablation benchmark.

Two baselines from Section 5 of the paper:

* a range/value-set based disambiguator, which must *fail* on the Figure 1
  kernels (that failure is the paper's motivation), and
* an ABCD-style demand-driven inequality prover, which handles the
  motivating kernels like LT does, query by query.
"""

from repro.alias import AliasResult
from repro.core import (
    ABCDAliasAnalysis,
    ABCDProver,
    RangeBasedAliasAnalysis,
    StrictInequalityAliasAnalysis,
)
from repro.essa import convert_to_essa
from repro.ir import INT, IRBuilder, Module, pointer_to
from repro.synth import kernel_module
from tests.helpers import build_two_index_loop_module


def body_geps(function, block_name="body"):
    body = function.block_by_name(block_name)
    return [i for i in body.instructions if i.opcode == "gep"]


# ---------------------------------------------------------------------------
# Range-based baseline
# ---------------------------------------------------------------------------

def test_range_based_fails_on_overlapping_index_ranges():
    """The paper's motivation: interval reasoning cannot split v[i] / v[j]."""
    module, function = build_two_index_loop_module()
    convert_to_essa(function)
    rb = RangeBasedAliasAnalysis()
    p_i, p_j = body_geps(function)
    assert rb.alias_values(p_i, p_j) is AliasResult.MAY_ALIAS
    # ...whereas the strict-inequality analysis succeeds on the same pair.
    sraa = StrictInequalityAliasAnalysis(module)
    assert sraa.alias_values(p_i, p_j) is AliasResult.NO_ALIAS


def test_range_based_succeeds_on_disjoint_constant_windows():
    module = Module("m")
    int_ptr = pointer_to(INT)
    f = module.create_function("f", INT, [int_ptr, INT], ["p", "n"])
    entry = f.append_block(name="entry")
    builder = IRBuilder(entry)
    p, n = f.arguments
    low = builder.rem(n, builder.const(4), "low")        # in [-3, 3]
    high = builder.add(builder.rem(n, builder.const(4)), builder.const(100), "high")
    p_low = builder.gep(p, low, "p_low")
    p_high = builder.gep(p, high, "p_high")
    builder.ret(builder.const(0))
    rb = RangeBasedAliasAnalysis()
    assert rb.alias_values(p_low, p_high) is AliasResult.NO_ALIAS


def test_range_based_requires_common_base():
    module = Module("m")
    int_ptr = pointer_to(INT)
    f = module.create_function("f", INT, [int_ptr, int_ptr], ["p", "q"])
    entry = f.append_block(name="entry")
    builder = IRBuilder(entry)
    a = builder.gep(f.arguments[0], builder.const(0), "a")
    b = builder.gep(f.arguments[1], builder.const(100), "b")
    builder.ret(builder.const(0))
    assert RangeBasedAliasAnalysis().alias_values(a, b) is AliasResult.MAY_ALIAS


# ---------------------------------------------------------------------------
# ABCD-style baseline
# ---------------------------------------------------------------------------

def test_abcd_prover_chains_constant_increments():
    module = Module("m")
    f = module.create_function("f", INT, [INT], ["x"])
    entry = f.append_block(name="entry")
    builder = IRBuilder(entry)
    x = f.arguments[0]
    y = builder.add(x, builder.const(1), "y")
    z = builder.add(y, builder.const(2), "z")
    w = builder.sub(z, builder.const(1), "w")
    builder.ret(w)
    prover = ABCDProver(f)
    assert prover.proves_less_than(x, y)
    assert prover.proves_less_than(x, z)
    assert prover.proves_less_than(y, z)
    assert prover.proves_less_than(x, w)      # w = x + 2
    assert not prover.proves_less_than(z, w)  # w = z - 1 < z, not the reverse
    assert not prover.proves_less_than(y, x)


def test_abcd_uses_branch_information_from_essa():
    module, function = build_two_index_loop_module()
    abcd = ABCDAliasAnalysis()
    abcd.prepare_function(function)
    p_i, p_j = body_geps(function)
    assert abcd.alias_values(p_i, p_j) is AliasResult.NO_ALIAS


def _count_no_alias_gep_pairs(function, analysis):
    geps = [i for i in function.instructions() if i.opcode == "gep"]
    count = 0
    for i in range(len(geps)):
        for j in range(i + 1, len(geps)):
            if analysis.alias_values(geps[i], geps[j]) is AliasResult.NO_ALIAS:
                count += 1
    return count


def test_abcd_resolves_branch_guarded_accesses_in_partition():
    """The swap in `partition` is guarded by `if (i >= j) break;`, so the
    ordering comes from a branch — exactly what the demand-driven prover
    handles."""
    module = kernel_module("partition")
    function = module.get_function("partition")
    sraa = StrictInequalityAliasAnalysis(module)
    abcd = ABCDAliasAnalysis()
    abcd.prepare_function(function)
    lt_pairs = _count_no_alias_gep_pairs(function, sraa)
    abcd_pairs = _count_no_alias_gep_pairs(function, abcd)
    assert lt_pairs > 0
    assert abcd_pairs > 0
    assert abcd_pairs <= lt_pairs


def test_abcd_is_weaker_than_lt_on_loop_carried_orderings():
    """In `ins_sort` the fact i < j comes from j's initialisation (j = i + 1)
    flowing around the loop φ.  Our ABCD-style prover resolves cycles
    conservatively (the paper's Section 5 discusses exactly this difference),
    so it proves fewer pairs than the closure-based LT analysis there."""
    module = kernel_module("ins_sort")
    function = module.get_function("ins_sort")
    sraa = StrictInequalityAliasAnalysis(module)
    abcd = ABCDAliasAnalysis()
    abcd.prepare_function(function)
    lt_pairs = _count_no_alias_gep_pairs(function, sraa)
    abcd_pairs = _count_no_alias_gep_pairs(function, abcd)
    assert lt_pairs > 0
    assert abcd_pairs <= lt_pairs


def test_abcd_is_conservative_across_phis():
    """A phi of unrelated values must not be ordered with either input."""
    module, function = build_two_index_loop_module()
    abcd = ABCDAliasAnalysis()
    abcd.prepare_function(function)
    prover = ABCDProver(function)
    header = function.block_by_name("header")
    i_phi, j_phi = header.phis()
    v = function.arguments[0]
    assert not prover.proves_less_than(i_phi, j_phi)
    assert not prover.proves_less_than(v, i_phi)
