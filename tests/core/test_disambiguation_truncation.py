"""Tests for equivalence-class truncation: determinism and statistics."""

from repro.core import (
    DisambiguationStatistics,
    LessThanAnalysis,
    PointerDisambiguator,
)
from repro.core.disambiguation import equivalent_names
from repro.ir import INT, IRBuilder, Module
from repro.ir.instructions import Copy


def _function_with_copies(names):
    """``f(x)`` plus one copy of ``x`` per name, created in the given order."""
    module = Module("m")
    f = module.create_function("f", INT, [INT], ["x"])
    entry = f.append_block(name="entry")
    x = f.arguments[0]
    copies = {}
    for name in names:
        copies[name] = entry.append(Copy(x, name))
    IRBuilder(entry).ret(x)
    return f, x, copies


def test_small_classes_are_complete_and_not_truncated():
    f, x, copies = _function_with_copies(["a", "b", "c"])
    stats = DisambiguationStatistics()
    names = equivalent_names(x, limit=64, statistics=stats)
    assert {n.name for n in names} == {"x", "a", "b", "c"}
    assert stats.truncated_classes == 0
    assert stats.largest_class == 4


def test_truncation_is_reported_and_keeps_root_and_value():
    f, x, copies = _function_with_copies(["a", "b", "c", "d", "e"])
    stats = DisambiguationStatistics()
    names = equivalent_names(copies["e"], limit=3, statistics=stats)
    assert stats.truncated_classes == 1
    assert stats.largest_class == 6
    assert len(names) == 3
    kept = {n.name for n in names}
    # The canonical root and the queried value always survive truncation.
    assert "x" in kept and "e" in kept


def test_truncation_is_independent_of_construction_order():
    """The members kept do not depend on the uses-list (creation) order."""
    order_a = ["a", "b", "c", "d", "e"]
    _fa, xa, _ca = _function_with_copies(order_a)
    _fb, xb, _cb = _function_with_copies(list(reversed(order_a)))
    names_a = {n.name for n in equivalent_names(xa, limit=3)}
    names_b = {n.name for n in equivalent_names(xb, limit=3)}
    assert names_a == names_b
    # Deterministic selection: root plus the smallest names in name order.
    assert names_a == {"x", "a", "b"}


def test_disambiguator_surfaces_truncation_in_statistics():
    f, x, copies = _function_with_copies(["a", "b", "c", "d", "e"])
    analysis = LessThanAnalysis(f, build_essa=False)
    disambiguator = PointerDisambiguator(analysis, class_limit=3)
    disambiguator._class_info(x)
    assert disambiguator.statistics.truncated_classes == 1
    assert disambiguator.statistics.largest_class == 6
    payload = disambiguator.statistics.as_dict()
    assert payload["truncated_classes"] == 1
    assert payload["memoized_values"] == 1


def test_unlimited_traversal_with_limit_none():
    f, x, copies = _function_with_copies(["a", "b", "c", "d", "e"])
    names = equivalent_names(x, limit=None)
    assert len(names) == 6
