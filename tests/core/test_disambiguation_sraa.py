"""Tests for the disambiguation criteria (Definition 3.11) and the SRAA pass."""

from repro.alias import AliasAnalysisChain, AliasResult, BasicAliasAnalysis, MemoryLocation
from repro.alias.aaeval import evaluate_function
from repro.core import (
    DisambiguationReason,
    LessThanAnalysis,
    PointerDisambiguator,
    StrictInequalityAliasAnalysis,
)
from repro.ir import INT, IRBuilder, Module, pointer_to
from tests.helpers import build_two_index_loop_module


def build_pointer_walk_module():
    """``while (p < pe) { *p = 0; p = p + 1; }`` — the pointer idiom of §3.6."""
    module = Module("walk")
    int_ptr = pointer_to(INT)
    f = module.create_function("walk", INT, [int_ptr, int_ptr], ["p", "pe"])
    entry = f.append_block(name="entry")
    header = f.append_block(name="header")
    body = f.append_block(name="body")
    exit_block = f.append_block(name="exit")
    builder = IRBuilder(entry)
    p, pe = f.arguments
    builder.jump(header)
    builder.set_insert_point(header)
    cur = builder.phi(int_ptr, "cur")
    cond = builder.icmp_slt(cur, pe, "cond")
    builder.branch(cond, body, exit_block)
    builder.set_insert_point(body)
    builder.store(builder.const(0), cur)
    nxt = builder.gep(cur, builder.const(1), "nxt")
    builder.jump(header)
    cur.add_incoming(p, entry)
    cur.add_incoming(nxt, body)
    builder.set_insert_point(exit_block)
    builder.ret(builder.const(0))
    return module, f


def test_two_index_loop_criterion_two():
    module, function = build_two_index_loop_module()
    analysis = LessThanAnalysis(function)
    disambiguator = PointerDisambiguator(analysis)
    body = function.block_by_name("body")
    p_i, p_j = [i for i in body.instructions if i.opcode == "gep"]
    reason = disambiguator.disambiguate(p_i, p_j)
    assert reason is DisambiguationReason.INDICES_ORDERED
    assert disambiguator.no_alias(p_i, p_j)
    # The base pointer v and v[j] are separated by criterion 1 (v < v[j]).
    v = function.arguments[0]
    assert disambiguator.disambiguate(v, p_j) is DisambiguationReason.POINTERS_ORDERED


def test_pointer_walk_criterion_one():
    module, function = build_pointer_walk_module()
    analysis = LessThanAnalysis(function)
    disambiguator = PointerDisambiguator(analysis)
    body = function.block_by_name("body")
    store_pointer = [i for i in body.instructions if i.opcode == "store"][0].pointer
    pe = function.arguments[1]
    # Inside the loop body, cur < pe, hence *cur cannot touch *pe.
    assert disambiguator.disambiguate(store_pointer, pe) is DisambiguationReason.POINTERS_ORDERED


def test_same_pointer_is_never_disambiguated():
    module, function = build_two_index_loop_module()
    analysis = LessThanAnalysis(function)
    disambiguator = PointerDisambiguator(analysis)
    v = function.arguments[0]
    assert disambiguator.disambiguate(v, v) is DisambiguationReason.NONE


def test_constant_offsets_are_left_to_other_analyses():
    """LT says nothing about p+1 vs p+2 (Section 3.6's explicit non-goal)."""
    module = Module("m")
    int_ptr = pointer_to(INT)
    f = module.create_function("f", INT, [int_ptr], ["p"])
    entry = f.append_block(name="entry")
    builder = IRBuilder(entry)
    p = f.arguments[0]
    p1 = builder.gep(p, builder.const(1), "p1")
    p2 = builder.gep(p, builder.const(2), "p2")
    builder.store(builder.const(0), p1)
    builder.store(builder.const(1), p2)
    builder.ret(builder.const(0))
    analysis = LessThanAnalysis(f)
    disambiguator = PointerDisambiguator(analysis)
    assert disambiguator.disambiguate(p1, p2) is DisambiguationReason.NONE
    # basicaa handles this case instead, and the chain picks it up.
    sraa = StrictInequalityAliasAnalysis(module)
    chain = AliasAnalysisChain([BasicAliasAnalysis(), sraa], name="ba+lt")
    assert chain.alias_values(p1, p2) is AliasResult.NO_ALIAS


def test_sraa_alias_interface_module_level():
    module, function = build_two_index_loop_module()
    sraa = StrictInequalityAliasAnalysis(module)
    body = function.block_by_name("body")
    p_i, p_j = [i for i in body.instructions if i.opcode == "gep"]
    assert sraa.alias_values(p_i, p_j) is AliasResult.NO_ALIAS
    v = function.arguments[0]
    assert sraa.alias_values(v, p_i) is AliasResult.MAY_ALIAS
    assert sraa.analysis is not None


def test_sraa_per_function_preparation():
    module, function = build_two_index_loop_module()
    sraa = StrictInequalityAliasAnalysis()
    evaluation = evaluate_function(function, sraa)
    assert evaluation.total_queries > 0
    assert evaluation.no_alias > 0


def test_chain_is_at_least_as_precise_as_each_member():
    module, function = build_two_index_loop_module()
    ba = BasicAliasAnalysis()
    sraa = StrictInequalityAliasAnalysis(module)
    chain = AliasAnalysisChain([ba, sraa], name="ba+lt")
    eval_ba = evaluate_function(function, ba)
    eval_lt = evaluate_function(function, sraa)
    eval_chain = evaluate_function(function, chain)
    assert eval_chain.no_alias >= eval_ba.no_alias
    assert eval_chain.no_alias >= eval_lt.no_alias
    assert eval_chain.total_queries == eval_ba.total_queries == eval_lt.total_queries
