"""Timeline merge/summaries and the Chrome trace-event export."""

import json

import pytest

from repro.obs import (MAIN_LANE, Timeline, to_chrome_trace,
                       validate_chrome_trace, write_chrome_trace)


def span(name, ts, dur, lane=None, depth=0, self_seconds=None, args=None):
    record = {"name": name, "ts": ts, "dur": dur, "depth": depth,
              "self": dur if self_seconds is None else self_seconds,
              "args": args or {}}
    if lane is not None:
        record["lane"] = lane
    return record


# ---------------------------------------------------------------------------
# Construction and merge
# ---------------------------------------------------------------------------

def test_spans_default_to_the_main_lane():
    timeline = Timeline([span("a", 0.0, 1.0)])
    assert timeline.lanes() == [MAIN_LANE]


def test_sorting_is_by_lane_then_timestamp():
    timeline = Timeline([
        span("late", 5.0, 1.0, lane="worker-2"),
        span("early", 1.0, 1.0, lane="worker-2"),
        span("main-span", 3.0, 1.0),
    ])
    order = [(record["lane"], record["name"]) for record in timeline]
    assert order == [("main", "main-span"), ("worker-2", "early"),
                     ("worker-2", "late")]


def test_merge_is_order_independent():
    a = Timeline([span("x", 0.0, 1.0, lane="worker-1"),
                  span("y", 2.0, 1.0, lane="worker-1")])
    b = Timeline([span("z", 1.0, 1.0, lane="worker-2")])
    ab, ba = a.merge(b), b.merge(a)
    assert ab.spans == ba.spans


def test_merge_preserves_every_span():
    a = Timeline([span("x", 0.0, 1.0)])
    b = Timeline([span("x", 0.0, 1.0, lane="worker-1")])
    assert len(a.merge(b)) == 2


def test_lanes_lists_main_first_then_workers_sorted():
    timeline = Timeline([
        span("a", 0.0, 1.0, lane="worker-9"),
        span("b", 0.0, 1.0, lane="worker-10"),
        span("c", 0.0, 1.0),
    ])
    assert timeline.lanes() == ["main", "worker-10", "worker-9"]


# ---------------------------------------------------------------------------
# Summaries
# ---------------------------------------------------------------------------

def test_phase_summary_counts_totals_and_extremes():
    timeline = Timeline([
        span("solve", 0.0, 1.0),
        span("solve", 2.0, 3.0),
        span("parse", 0.0, 0.5),
    ])
    summary = timeline.phase_summary()
    assert summary["solve"]["count"] == 2
    assert summary["solve"]["total"] == pytest.approx(4.0)
    assert summary["solve"]["min"] == pytest.approx(1.0)
    assert summary["solve"]["max"] == pytest.approx(3.0)
    assert summary["parse"]["count"] == 1


def test_phase_summary_separates_self_time():
    timeline = Timeline([
        span("outer", 0.0, 2.0, self_seconds=0.5),
        span("inner", 0.0, 1.5, depth=1),
    ])
    summary = timeline.phase_summary()
    assert summary["outer"]["self"] == pytest.approx(0.5)
    assert summary["outer"]["total"] == pytest.approx(2.0)


def test_percentiles_are_nearest_rank():
    durations = [float(i) for i in range(1, 101)]  # 1..100
    timeline = Timeline([span("p", float(i), d)
                         for i, d in enumerate(durations)])
    summary = timeline.phase_summary()["p"]
    assert summary["p50"] == pytest.approx(50.0)
    assert summary["p99"] == pytest.approx(99.0)


def test_p50_of_two_values_is_the_lower():
    timeline = Timeline([span("p", 0.0, 1.0), span("p", 1.0, 9.0)])
    assert timeline.phase_summary()["p"]["p50"] == pytest.approx(1.0)


def test_lane_summary_reports_busy_time_and_skew():
    timeline = Timeline([
        span("u", 0.0, 3.0, lane="worker-1"),
        span("u", 0.0, 1.0, lane="worker-2"),
        span("nested", 0.0, 0.5, lane="worker-2", depth=1),
    ])
    lanes = timeline.lane_summary()
    assert lanes["worker-1"]["busy"] == pytest.approx(3.0)
    # Nested spans are not double-billed.
    assert lanes["worker-2"]["busy"] == pytest.approx(1.0)
    assert lanes["worker-1"]["skew"] == pytest.approx(3.0)


def test_timing_rows_sort_slowest_phase_first():
    timeline = Timeline([
        span("fast", 0.0, 0.1),
        span("slow", 0.0, 5.0),
    ])
    rows = timeline.timing_rows()
    assert [row["phase"] for row in rows] == ["slow", "fast"]


def test_empty_timeline_summaries():
    timeline = Timeline()
    assert timeline.phase_summary() == {}
    assert timeline.lane_summary() == {}
    assert timeline.timing_rows() == []


# ---------------------------------------------------------------------------
# Chrome export
# ---------------------------------------------------------------------------

def test_chrome_trace_emits_complete_events_in_microseconds():
    timeline = Timeline([span("solve", 1.0, 0.25, args={"fn": "main"})])
    payload = to_chrome_trace(timeline)
    events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    (event,) = events
    assert event["name"] == "solve"
    assert event["ts"] == pytest.approx(1.0e6)
    assert event["dur"] == pytest.approx(0.25e6)
    assert event["args"] == {"fn": "main"}


def test_chrome_trace_names_lanes_via_metadata_events():
    timeline = Timeline([
        span("a", 0.0, 1.0),
        span("b", 0.0, 1.0, lane="worker-3"),
    ])
    payload = to_chrome_trace(timeline)
    meta = {e["args"]["name"]: e["tid"]
            for e in payload["traceEvents"] if e["ph"] == "M"}
    assert meta["main"] == 0
    assert meta["worker-3"] == 1
    tids = {e["name"]: e["tid"]
            for e in payload["traceEvents"] if e["ph"] == "X"}
    assert tids == {"a": 0, "b": 1}


def test_chrome_trace_validates_against_own_schema():
    timeline = Timeline([
        span("a", 0.0, 1.0),
        span("b", 0.5, 1.0, lane="worker-1", args={"k": 1}),
    ])
    assert validate_chrome_trace(to_chrome_trace(timeline)) == []


def test_validator_flags_malformed_payloads():
    assert validate_chrome_trace({}) == ["traceEvents is not a list"]
    problems = validate_chrome_trace({"traceEvents": [
        {"ph": "Q", "name": 3, "pid": "x", "tid": 0, "args": []},
        {"ph": "X", "name": "ok", "pid": 1, "tid": 0, "ts": -5, "dur": 1.0},
    ]})
    text = "\n".join(problems)
    assert "unknown ph" in text
    assert "name is not a string" in text
    assert "pid is not an int" in text
    assert "args is not an object" in text
    assert "ts is not a non-negative number" in text


def test_write_chrome_trace_round_trips(tmp_path):
    timeline = Timeline([span("solve", 0.0, 1.0)])
    path = str(tmp_path / "trace.json")
    count = write_chrome_trace(path, timeline)
    assert count == 1
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    assert validate_chrome_trace(payload) == []
