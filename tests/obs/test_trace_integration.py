"""End-to-end tracing: pipeline spans, shard merge, CLI surface, parity."""

import json
from collections import Counter, defaultdict

import pytest

from repro.api.cli import main
from repro.api.config import ReproConfig
from repro.api.session import Session
from repro.obs import TRACER, validate_chrome_trace

SOURCE = """
int main(int n) {
  int a[16];
  int *p = a;
  int *q = a + n;
  int i = 0;
  while (i < n) { *(a + i) = i; i = i + 1; }
  return *p + *q;
}
"""

#: a second unit so pooled runs have work for both workers.
SOURCE_B = """
int sum(int* v, int N) {
  int i;
  int total = 0;
  for (i = 0; i < N; i++) { total = total + v[i]; }
  return total;
}
"""


@pytest.fixture(autouse=True)
def _reset_global_tracer():
    yield
    TRACER.disable()
    TRACER.reset()


def _load_trace(path):
    with open(str(path), "r", encoding="utf-8") as handle:
        return json.load(handle)


def _complete_events(payload):
    return [e for e in payload["traceEvents"] if e["ph"] == "X"]


def _lane_names(payload):
    return {e["args"]["name"] for e in payload["traceEvents"]
            if e["ph"] == "M"}


# ---------------------------------------------------------------------------
# Serial pipeline coverage
# ---------------------------------------------------------------------------

def test_traced_session_covers_every_pipeline_layer(tmp_path):
    trace = tmp_path / "trace.json"
    with Session(ReproConfig(trace=str(trace), workers=0)) as session:
        session.evaluate_source("demo", SOURCE)
    payload = _load_trace(trace)
    assert validate_chrome_trace(payload) == []
    phases = {e["name"] for e in _complete_events(payload)}
    expected = {"frontend.parse", "frontend.lower", "ir.mem2reg",
                "essa.transform", "range.solve", "lt.generate", "lt.solve",
                "disambiguate.pairs", "engine.unit"}
    assert expected <= phases
    assert len(phases) >= 5  # the acceptance floor, with margin


def test_untraced_session_writes_nothing_and_buffers_nothing(tmp_path):
    with Session(ReproConfig(trace=None, workers=0)) as session:
        session.evaluate_source("demo", SOURCE)
    assert TRACER.spans() == []
    assert list(tmp_path.iterdir()) == []


def test_solver_statistics_keep_wall_times_without_tracing():
    with Session(ReproConfig(trace=None, workers=0)) as session:
        unit = session.compile(SOURCE, name="demo")
        lt = unit.lessthan()
    assert lt.statistics.solve_time_seconds > 0.0


# ---------------------------------------------------------------------------
# Shard-buffer merge under a worker pool
# ---------------------------------------------------------------------------

def _traced_pool_run(trace_path):
    with Session(ReproConfig(trace=str(trace_path), workers=2)) as session:
        session.run_workload([("unit_a", SOURCE), ("unit_b", SOURCE_B)],
                             store=False)
    return _load_trace(trace_path)


def test_pool_run_attributes_spans_to_worker_lanes(tmp_path):
    payload = _traced_pool_run(tmp_path / "pool.json")
    assert validate_chrome_trace(payload) == []
    worker_lanes = {lane for lane in _lane_names(payload)
                    if lane.startswith("worker-")}
    assert worker_lanes  # every analysis span came from a worker process
    worker_tids = {e["tid"] for e in payload["traceEvents"]
                   if e["ph"] == "M" and e["args"]["name"] in worker_lanes}
    analysis_events = [e for e in _complete_events(payload)
                       if e["name"] != "engine.unit"]
    assert analysis_events
    assert {e["tid"] for e in analysis_events} <= worker_tids


def test_merged_timestamps_are_monotonic_within_each_lane(tmp_path):
    payload = _traced_pool_run(tmp_path / "pool.json")
    by_lane = defaultdict(list)
    for event in _complete_events(payload):
        by_lane[event["tid"]].append(event["ts"])
    for timestamps in by_lane.values():
        assert timestamps == sorted(timestamps)


def test_pool_span_merge_is_deterministic_across_runs(tmp_path):
    # Worker-to-unit assignment varies with scheduling, so lanes may differ;
    # the merged *content* — which phases ran, how often — must not.
    first = _traced_pool_run(tmp_path / "first.json")
    second = _traced_pool_run(tmp_path / "second.json")
    count_a = Counter(e["name"] for e in _complete_events(first))
    count_b = Counter(e["name"] for e in _complete_events(second))
    assert count_a == count_b


def test_pool_and_serial_runs_record_the_same_phases(tmp_path):
    pooled = _traced_pool_run(tmp_path / "pool.json")
    with Session(ReproConfig(trace=str(tmp_path / "serial.json"),
                             workers=0)) as session:
        session.run_workload([("unit_a", SOURCE), ("unit_b", SOURCE_B)],
                             store=False)
    serial = _load_trace(tmp_path / "serial.json")
    # verify.* spans are asymmetric by design under REPRO_VERIFY=post (the
    # post mode checks in-process solves only, not pool workers); compare
    # the pipeline phases both execution shapes must share.
    assert (Counter(e["name"] for e in _complete_events(pooled)
                    if not e["name"].startswith("verify."))
            == Counter(e["name"] for e in _complete_events(serial)
                       if not e["name"].startswith("verify.")))


def test_payloads_returned_to_callers_carry_no_span_fields(tmp_path):
    with Session(ReproConfig(trace=str(tmp_path / "t.json"),
                             workers=2)) as session:
        results = session.run_workload([("unit_a", SOURCE),
                                        ("unit_b", SOURCE_B)], store=False)
    for result in results:
        assert "spans" not in result.payload
        assert "span_epoch" not in result.payload


# ---------------------------------------------------------------------------
# Session.metrics()
# ---------------------------------------------------------------------------

def test_metrics_exposes_phase_percentiles(tmp_path):
    with Session(ReproConfig(trace=str(tmp_path / "t.json"),
                             workers=0)) as session:
        session.evaluate_source("demo", SOURCE)
        metrics = session.metrics()
    solve = metrics["phases"]["range.solve"]
    for key in ("count", "total", "self", "min", "max", "p50", "p99"):
        assert key in solve
    assert solve["p50"] <= solve["p99"] <= solve["max"] + 1e-12
    assert "cache" in metrics
    assert metrics["lanes"]["main"]["spans"] >= 1


def test_metrics_without_tracing_reports_counters_only():
    with Session(ReproConfig(trace=None, workers=0)) as session:
        session.compile(SOURCE, name="demo").analyze()
        metrics = session.metrics()
    assert metrics["phases"] == {}
    assert metrics["cache"]["misses"] > 0


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "demo.c"
    path.write_text(SOURCE, encoding="utf-8")
    return str(path)


def test_eval_json_is_byte_identical_with_and_without_trace(
        source_file, tmp_path, capsys):
    assert main(["eval", source_file, "--json"]) == 0
    untraced = capsys.readouterr().out
    trace = tmp_path / "out.json"
    assert main(["eval", source_file, "--json", "--trace", str(trace)]) == 0
    captured = capsys.readouterr()
    assert captured.out == untraced  # stdout byte parity
    assert "wrote trace" in captured.err
    payload = _load_trace(trace)
    assert validate_chrome_trace(payload) == []
    assert len({e["name"] for e in _complete_events(payload)}) >= 5


def test_eval_trace_via_environment_variable(source_file, tmp_path,
                                             monkeypatch, capsys):
    trace = tmp_path / "env.json"
    monkeypatch.setenv("REPRO_TRACE", str(trace))
    assert main(["eval", source_file, "--json"]) == 0
    capsys.readouterr()
    assert validate_chrome_trace(_load_trace(trace)) == []


def test_stats_timings_prints_phase_table(source_file, capsys):
    assert main(["stats", source_file, "--timings"]) == 0
    out = capsys.readouterr().out
    assert "[timings]" in out
    for phase in ("range.solve", "lt.solve", "frontend.parse"):
        assert phase in out
    assert "p50" in out and "p99" in out
    # The hit-rate satellite: cache rates are spelled out.
    assert "hit_rate" in out


def test_stats_without_timings_omits_the_table(source_file, capsys):
    assert main(["stats", source_file]) == 0
    assert "[timings]" not in capsys.readouterr().out
