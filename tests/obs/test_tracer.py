"""Tracer semantics: span nesting, the disabled no-op, shard absorption."""

import pickle

import pytest

from repro.obs import NOOP_SPAN, MetricsRegistry, TRACER, Tracer


@pytest.fixture
def tracer():
    return Tracer()


@pytest.fixture(autouse=True)
def _reset_global_tracer():
    yield
    TRACER.disable()
    TRACER.reset()


# ---------------------------------------------------------------------------
# Disabled path
# ---------------------------------------------------------------------------

def test_disabled_span_is_the_shared_noop_singleton(tracer):
    assert tracer.span("a") is NOOP_SPAN
    assert tracer.span("b", fn="f") is NOOP_SPAN


def test_disabled_span_records_nothing(tracer):
    with tracer.span("range.solve", fn="main"):
        with tracer.span("inner"):
            pass
    assert tracer.spans() == []


def test_disabled_counters_are_dropped(tracer):
    tracer.count("cache.hits", 3)
    assert tracer.metrics.counters == {}


def test_noop_span_has_zero_duration_and_discards_annotations(tracer):
    span = tracer.span("x")
    span.annotate(result=7)
    assert span.duration == 0.0


def test_timer_measures_even_when_disabled(tracer):
    with tracer.timer("lt.solve") as timer:
        sum(range(1000))
    assert timer.seconds > 0.0
    assert tracer.spans() == []


# ---------------------------------------------------------------------------
# Enabled path: nesting, ordering, self time
# ---------------------------------------------------------------------------

def test_span_records_name_args_and_duration(tracer):
    tracer.enable()
    with tracer.span("range.solve", fn="main", solver="sparse"):
        pass
    (record,) = tracer.spans()
    assert record["name"] == "range.solve"
    assert record["args"] == {"fn": "main", "solver": "sparse"}
    assert record["dur"] >= 0.0
    assert record["depth"] == 0


def test_nested_spans_record_depth_and_close_inner_first(tracer):
    tracer.enable()
    with tracer.span("outer"):
        with tracer.span("middle"):
            with tracer.span("inner"):
                pass
    names = [record["name"] for record in tracer.spans()]
    assert names == ["inner", "middle", "outer"]  # completion order
    depths = {r["name"]: r["depth"] for r in tracer.spans()}
    assert depths == {"outer": 0, "middle": 1, "inner": 2}


def test_self_time_excludes_children(tracer):
    tracer.enable()
    with tracer.span("outer"):
        with tracer.span("child"):
            sum(range(20000))
    records = {record["name"]: record for record in tracer.spans()}
    outer, child = records["outer"], records["child"]
    assert outer["dur"] >= child["dur"]
    assert outer["self"] <= outer["dur"] - child["dur"] + 1e-9
    assert child["self"] == pytest.approx(child["dur"])


def test_sibling_spans_both_subtract_from_parent(tracer):
    tracer.enable()
    with tracer.span("parent"):
        with tracer.span("a"):
            sum(range(5000))
        with tracer.span("b"):
            sum(range(5000))
    records = {record["name"]: record for record in tracer.spans()}
    children = records["a"]["dur"] + records["b"]["dur"]
    assert records["parent"]["self"] == pytest.approx(
        records["parent"]["dur"] - children, abs=1e-6)


def test_span_timestamps_are_monotonic_in_completion(tracer):
    tracer.enable()
    for index in range(5):
        with tracer.span("step", index=index):
            pass
    starts = [record["ts"] for record in tracer.spans()]
    assert starts == sorted(starts)


def test_annotate_attaches_mid_phase_attributes(tracer):
    tracer.enable()
    with tracer.span("lt.generate") as span:
        span.annotate(constraints=42)
    (record,) = tracer.spans()
    assert record["args"]["constraints"] == 42


def test_timer_records_span_when_enabled(tracer):
    tracer.enable()
    with tracer.timer("range.solve", fn="f") as timer:
        pass
    (record,) = tracer.spans()
    assert record["name"] == "range.solve"
    assert timer.seconds >= 0.0


# ---------------------------------------------------------------------------
# Lifecycle
# ---------------------------------------------------------------------------

def test_enable_clears_previous_capture(tracer):
    tracer.enable()
    with tracer.span("old"):
        pass
    tracer.disable()
    tracer.enable()
    assert tracer.spans() == []


def test_disable_retains_buffer(tracer):
    tracer.enable()
    with tracer.span("kept"):
        pass
    tracer.disable()
    assert [record["name"] for record in tracer.spans()] == ["kept"]


def test_capture_context_restores_disabled_state(tracer):
    with tracer.capture():
        with tracer.span("inside"):
            pass
    assert not tracer.enabled
    assert len(tracer.spans()) == 1


# ---------------------------------------------------------------------------
# The shard protocol
# ---------------------------------------------------------------------------

def test_drain_detaches_the_buffer(tracer):
    tracer.enable()
    with tracer.span("a"):
        pass
    spans = tracer.drain()
    assert [record["name"] for record in spans] == ["a"]
    assert tracer.spans() == []


def test_drained_spans_are_picklable(tracer):
    tracer.enable()
    with tracer.span("engine.unit", unit="p1", kind="aaeval"):
        pass
    spans = tracer.drain()
    assert pickle.loads(pickle.dumps(spans)) == spans


def test_absorb_shard_tags_lane_and_rebases_timestamps(tracer):
    worker = Tracer()
    worker.enable()
    with worker.span("range.solve"):
        pass
    shipped = worker.drain()
    tracer.enable()
    # A worker whose perf_counter origin differs by exactly 100s.
    epoch = tracer.clock_epoch() + 100.0
    tracer.absorb_shard(shipped, "worker-7", epoch)
    (record,) = tracer.spans()
    assert record["lane"] == "worker-7"
    assert record["ts"] == pytest.approx(shipped[0]["ts"] + 100.0)


def test_absorb_shard_is_a_noop_when_disabled(tracer):
    tracer.absorb_shard([{"name": "x", "ts": 0.0, "dur": 0.0}], "worker-1")
    assert tracer.spans() == []


def test_clock_epoch_is_memoized(tracer):
    assert tracer.clock_epoch() == tracer.clock_epoch()


# ---------------------------------------------------------------------------
# The metrics registry
# ---------------------------------------------------------------------------

def test_registry_counters_accumulate():
    registry = MetricsRegistry()
    registry.add("cache.hits")
    registry.add("cache.hits", 4)
    assert registry.counters["cache.hits"] == 5


def test_registry_absorbs_nested_statistics_dicts():
    registry = MetricsRegistry()
    registry.absorb("solver", {
        "evaluations": 10,
        "pops": {"fifo": 3, "scc": 2},
        "hit_ratio": 0.5,
        "order": "fifo",  # non-numeric: skipped
    })
    assert registry.counters["solver.evaluations"] == 10
    assert registry.counters["solver.pops.fifo"] == 3
    assert registry.counters["solver.pops.scc"] == 2
    assert registry.gauges["solver.hit_ratio"] == 0.5
    assert "solver.order" not in registry.counters


def test_registry_snapshot_is_sorted_and_detached():
    registry = MetricsRegistry()
    registry.add("b", 1)
    registry.add("a", 1)
    snapshot = registry.snapshot()
    assert list(snapshot["counters"]) == ["a", "b"]
    registry.add("c", 1)
    assert "c" not in snapshot["counters"]
