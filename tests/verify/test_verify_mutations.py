"""Mutation tests: the verifier must *fail* on seeded bugs.

A checker that never fires proves nothing.  Each test corrupts one solved
artifact the way a real solver bug would — widening a stored interval,
dropping a σ-copy, forging a less-than edge, corrupting a memoized
equivalence class into a bogus NoAlias — and asserts the matching checker
category reports an error-severity diagnostic naming the offending
function and value.
"""

from tests.helpers import build_two_index_loop_module
from repro.alias.aaeval import collect_pointer_values
from repro.core.sraa import StrictInequalityAliasAnalysis
from repro.ir.instructions import Copy
from repro.rangeanalysis.interval import Interval
from repro.verify import verify_alias_analysis


def _prepared():
    module, function = build_two_index_loop_module()
    sraa = StrictInequalityAliasAnalysis(module)
    sraa._prepare_module(module)
    return module, function, sraa


def _errors(report, category):
    return [d for d in report.errors if d.category == category]


def test_widened_interval_is_caught_at_its_users():
    _module, function, sraa = _prepared()
    ranges = sraa.analysis.ranges[function]
    phi = next(v for v in ranges.ranges if getattr(v, "name", "") == "i")
    assert ranges.ranges[phi] != Interval.top()
    ranges.ranges[phi] = Interval.top()
    report = verify_alias_analysis(sraa)
    assert not report.ok
    findings = _errors(report, "range")
    # Widening %i is a precision loss, not unsoundness at %i itself: a wider
    # interval still includes its own transfer output.  The inconsistency
    # surfaces at %i's *users*, whose stored (tight) results no longer
    # include their recomputed (now wide) transfer outputs.
    assert findings, [d.format() for d in report.errors]
    assert all(d.function == function.name for d in findings)
    assert all(d.value for d in findings)
    assert any("not inductive" in d.message for d in findings)


def test_dropped_sigma_is_caught_by_the_essa_linter():
    _module, function, sraa = _prepared()
    sigma = next(i for i in function.instructions()
                 if isinstance(i, Copy) and i.kind == "sigma")
    for use in list(sigma.uses):
        use.user.set_operand(use.index, sigma.source)
    sigma.parent.instructions.remove(sigma)
    sigma.parent = None
    report = verify_alias_analysis(sraa)
    assert not report.ok
    findings = _errors(report, "essa")
    assert findings, [d.format() for d in report.errors]
    assert all(d.function == function.name for d in findings)
    assert any("missing the σ-copy" in d.message for d in findings)
    # The diagnostic names the un-split operand so the bug is actionable.
    assert any(d.value for d in findings)


def test_forged_lt_edge_is_caught_by_the_certificate():
    _module, function, sraa = _prepared()
    analysis = sraa.analysis
    target = next(v for v in analysis.lt_sets
                  if getattr(v, "name", "") == "i")
    other = next(v for v in analysis.lt_sets if v is not target)
    analysis.lt_sets[target] = analysis.lt_sets[target] | {other}
    report = verify_alias_analysis(sraa)
    assert not report.ok
    findings = _errors(report, "lt")
    assert findings, [d.format() for d in report.errors]
    assert any(d.value == "i" for d in findings)
    assert any(d.function == function.name for d in findings)
    assert any("does not justify" in d.message
               or "no constraint targets" in d.message for d in findings)


def test_forged_noalias_is_caught_by_the_verdict_audit():
    _module, function, sraa = _prepared()
    disambiguator = sraa.disambiguators()[0]
    pointers = collect_pointer_values(function)
    victim = pointers[0]
    # Corrupt the memoized class info: pretend the LT union of victim's
    # equivalence class contains another pointer, forging a NoAlias.
    names, lt_union = disambiguator._class_info(victim)
    disambiguator._names[victim] = (
        names, frozenset(set(lt_union) | {pointers[1]}))
    report = verify_alias_analysis(sraa)
    assert not report.ok
    findings = _errors(report, "verdict")
    assert findings, [d.format() for d in report.errors]
    assert all(d.function == function.name for d in findings)
    assert all(d.value for d in findings)
    assert any("NoAlias" in d.message for d in findings)


def test_clean_pipeline_stays_green_after_the_mutation_runs():
    # Guard against mutation tests poisoning shared state (interned
    # intervals, memo tables): a fresh pipeline still verifies clean.
    _module, _function, sraa = _prepared()
    assert verify_alias_analysis(sraa).ok
