"""The ``REPRO_VERIFY`` knob through the engine and the Session facade.

``post`` verifies after every in-process solve; ``paranoid`` additionally
verifies inside pool workers and ships the report back through the shard
payload (absorbed into the coordinator's counters, never leaking into
verdict output).  ``Session.verify()`` is the programmatic surface, and
``statistics()`` exposes the accumulated ``[verify]`` counters.
"""

import json

import pytest

from repro.api import ReproConfig, Session
from repro.verify import COUNTERS

SOURCE = """
int sum(int *a, int n) {
  int s = 0;
  for (int i = 0; i < n; i = i + 1) {
    s = s + a[i];
  }
  return s;
}
"""


@pytest.fixture(autouse=True)
def fresh_counters():
    COUNTERS.reset()
    yield
    COUNTERS.reset()


def _verdict_map(result):
    return {label: result.verdicts(label) for label in result.labels}


def test_post_mode_verifies_in_process_solves():
    with Session(ReproConfig(verify="post", workers=0)) as session:
        session.run_workload([("m", SOURCE)], specs=(("lt",),), store=False)
    assert COUNTERS.runs >= 1
    assert COUNTERS.checks > 0
    assert COUNTERS.errors == 0


def test_off_mode_runs_no_checks():
    with Session(ReproConfig(verify="off", workers=0)) as session:
        session.run_workload([("m", SOURCE)], specs=(("lt",),), store=False)
    assert COUNTERS.runs == 0


def test_post_mode_does_not_change_verdicts():
    with Session(ReproConfig(verify="off", workers=0)) as session:
        plain = session.run_workload([("m", SOURCE)], store=False)
    with Session(ReproConfig(verify="post", workers=0)) as session:
        checked = session.run_workload([("m", SOURCE)], store=False)
    assert _verdict_map(plain[0]) == _verdict_map(checked[0])
    assert plain[0].statistics.as_dict() == checked[0].statistics.as_dict()


def test_paranoid_pool_ships_reports_to_the_coordinator():
    units = [("m{}".format(i), SOURCE) for i in range(3)]
    with Session(ReproConfig(verify="paranoid", workers=2)) as session:
        results = session.run_workload(units, specs=(("lt",),), store=False)
    # The coordinator absorbed each worker's report...
    assert COUNTERS.runs == len(units)
    assert COUNTERS.checks > 0
    assert COUNTERS.errors == 0
    # ...and popped it from the payload, keeping verdict output clean.
    for result in results:
        assert "verify" not in result.payload


def test_post_mode_skips_pool_workers_but_paranoid_does_not():
    units = [("m", SOURCE), ("m2", SOURCE)]
    with Session(ReproConfig(verify="post", workers=2)) as session:
        session.run_workload(units, specs=(("lt",),), store=False)
    # post: workers do not verify, nothing shipped, coordinator saw nothing.
    assert COUNTERS.runs == 0


def test_session_verify_and_statistics_counters():
    with Session() as session:
        unit = session.compile(SOURCE, name="m")
        report = unit.analyze().verify()
        assert report.ok
        assert report.functions == 1
        merged = session.verify()
        assert merged.ok
        stats = session.statistics()
    assert stats["verify"]["runs"] == COUNTERS.runs
    assert stats["verify"]["errors"] == 0
    assert stats["verify"]["checks"] > 0


def test_verify_report_is_json_serializable():
    with Session() as session:
        report = session.compile(SOURCE, name="m").analyze().verify()
    payload = json.loads(json.dumps(report.as_dict()))
    assert payload["functions"] == 1
    assert payload["diagnostics"] == []
