"""The self-check suite is green on every correct pipeline.

The certificate checkers must accept whatever any solver/kernel/order
combination produces — the acceptance matrix of the verifier: the synthetic
SPEC profiles, the hand-built helper modules, and a 40-seed fuzz corpus,
each solved under every ``interval_kernel`` × ``worklist_order`` pair.
"""

import pytest

from tests.helpers import (
    build_counting_loop_module,
    build_diamond_module,
    build_figure3_module,
    build_straightline_module,
    build_two_index_loop_module,
)
from repro.api.config import INTERVAL_KERNELS, ReproConfig, WORKLIST_ORDERS
from repro.core.sraa import StrictInequalityAliasAnalysis
from repro.frontend import compile_source
from repro.synth import generate_random_module, spec_sources
from repro.verify import CATEGORIES, verify_alias_analysis

FUZZ_SEEDS = 40


def _verify_module(module):
    sraa = StrictInequalityAliasAnalysis(module)
    sraa._prepare_module(module)
    return verify_alias_analysis(sraa)


@pytest.mark.parametrize("builder", [
    build_straightline_module,
    build_diamond_module,
    build_counting_loop_module,
    build_two_index_loop_module,
    build_figure3_module,
])
def test_helper_modules_verify_clean(builder):
    module, _function = builder()
    report = _verify_module(module)
    assert report.ok, report.summary()
    assert report.checks_run() > 0


def test_every_spec_profile_verifies_clean():
    for name, source in spec_sources():
        module = compile_source(source, module_name=name)
        report = _verify_module(module)
        assert report.ok, (name, [d.format() for d in report.errors[:5]])
        # A profile without range and LT checks would be vacuous coverage.
        assert report.checked["range"] > 0, name
        assert report.checked["lt"] > 0, name


@pytest.mark.parametrize("kernel", INTERVAL_KERNELS)
@pytest.mark.parametrize("order", WORKLIST_ORDERS)
def test_fuzz_corpus_verifies_under_kernel_and_order(kernel, order):
    config = ReproConfig(interval_kernel=kernel, worklist_order=order,
                         workers=0)
    failures = []
    with config.activate():
        for seed in range(FUZZ_SEEDS):
            module = generate_random_module(seed, pointer_depth=2)
            report = _verify_module(module)
            if not report.ok:
                failures.append(
                    (seed, [d.format() for d in report.errors[:3]]))
    assert not failures, failures


def test_report_counts_every_category():
    module, _function = build_two_index_loop_module()
    report = _verify_module(module)
    for category in CATEGORIES:
        assert report.checked[category] > 0, category


def test_report_dict_round_trip_preserves_everything():
    from repro.verify import VerificationReport

    module, _function = build_two_index_loop_module()
    report = _verify_module(module)
    clone = VerificationReport.from_dict(report.as_dict())
    assert clone.as_dict() == report.as_dict()
    assert clone.summary() == report.summary()
