"""The ``python -m repro check`` subcommand and the stats surfaces.

``check`` is the CI gate: exit 0 when every unit verifies clean, exit 1
when any error-severity diagnostic is found, with ``--json`` for machines.
``stats`` gains a ``[verify]`` section and must not traceback against a
missing or empty configured store (friendly "no data", exit 0).
"""

import json

import pytest

from repro.api.cli import main

SOURCE = """
int sum(int *a, int n) {
  int s = 0;
  for (int i = 0; i < n; i = i + 1) {
    s = s + a[i];
  }
  return s;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "sum.c"
    path.write_text(SOURCE, encoding="utf-8")
    return str(path)


def test_check_clean_source_exits_zero(source_file, capsys):
    assert main(["check", source_file]) == 0
    out = capsys.readouterr().out
    assert "sum: ok" in out
    assert "0 errors" in out


def test_check_json_reports_every_category(source_file, capsys):
    assert main(["check", source_file, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    (unit,) = payload["units"]
    assert unit["name"] == "sum"
    checked = unit["report"]["checked"]
    for category in ("ir", "essa", "range", "lt"):
        assert checked[category] > 0, category


def test_check_synth_workload(capsys):
    assert main(["check", "--synth", "testsuite", "--count", "2"]) == 0
    out = capsys.readouterr().out
    assert "TOTAL" in out
    assert "0 errors" in out


def test_check_without_sources_is_a_usage_error(capsys):
    assert main(["check"]) == 2
    assert "at least one source" in capsys.readouterr().err


def test_check_rejects_unknown_verify_mode(source_file):
    with pytest.raises(SystemExit):
        main(["check", source_file, "--verify", "sometimes"])


def test_stats_prints_verify_section(source_file, capsys):
    assert main(["stats", source_file, "--verify", "post"]) == 0
    out = capsys.readouterr().out
    assert "[verify]" in out
    assert "mode=post" in out
    assert "runs" in out


def test_stats_missing_store_is_friendly(source_file, tmp_path, capsys):
    missing = str(tmp_path / "never-created.pickle")
    assert main(["stats", source_file, "--store", missing]) == 0
    out = capsys.readouterr().out
    assert "[store]" in out
    assert "no data" in out


def test_stats_empty_store_file_is_friendly(source_file, tmp_path, capsys):
    empty = tmp_path / "empty.pickle"
    empty.write_bytes(b"")
    assert main(["stats", source_file, "--store", str(empty)]) == 0
    out = capsys.readouterr().out
    assert "[store]" in out
    assert "no data" in out


def test_stats_populated_store_shows_info(source_file, tmp_path, capsys):
    store = str(tmp_path / "warm.sqlite")
    assert main(["eval", source_file, "--store", store]) == 0
    capsys.readouterr()
    assert main(["stats", source_file, "--store", store]) == 0
    out = capsys.readouterr().out
    assert "[store]" in out
    assert "entries" in out
