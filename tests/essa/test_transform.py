"""Tests for the e-SSA (live-range splitting) transformation."""

from repro.essa import convert_to_essa
from repro.ir import Copy, verify_function
from repro.ir.interpreter import Interpreter
from repro.ir.ssa_destruction import remove_copies
from tests.helpers import (
    build_counting_loop_module,
    build_diamond_module,
    build_figure3_module,
    build_straightline_module,
    build_two_index_loop_module,
)


def sigma_copies(function):
    return [i for i in function.instructions() if isinstance(i, Copy) and i.kind == "sigma"]


def split_copies(function):
    return [i for i in function.instructions() if isinstance(i, Copy) and i.kind == "split"]


def test_straightline_code_is_untouched_except_verification():
    module, function = build_straightline_module()
    before = function.instruction_count()
    info = convert_to_essa(function)
    # `d = c - 1` is a subtraction: the live range of `c` is split once.
    assert len(info.subtraction_copies) == 1
    assert len(info.sigma_copies) == 0
    assert function.instruction_count() == before + 1
    verify_function(function)


def test_diamond_gets_sigma_copies_on_both_branches():
    module, function = build_diamond_module()
    info = convert_to_essa(function)
    # Condition a < b involves two variables and two branches: 4 σ-copies.
    assert len(info.sigma_copies) == 4
    verify_function(function)
    then_block = function.block_by_name("then")
    else_block = function.block_by_name("else")
    # The uses of a and b in the branch blocks are renamed to the σ-copies.
    add_then = [i for i in then_block.instructions if i.opcode == "add"][0]
    assert isinstance(add_then.lhs, Copy)
    assert add_then.lhs.sigma_on_true_branch is True
    add_else = [i for i in else_block.instructions if i.opcode == "add"][0]
    assert isinstance(add_else.lhs, Copy)
    assert add_else.lhs.sigma_on_true_branch is False


def test_sigma_annotations_record_condition_and_side():
    module, function = build_diamond_module()
    convert_to_essa(function)
    for copy in sigma_copies(function):
        assert copy.sigma_condition.opcode == "icmp"
        assert copy.sigma_operand_side in ("lhs", "rhs")
        assert isinstance(copy.sigma_on_true_branch, bool)


def test_loop_condition_splits_on_dedicated_blocks():
    module, function = build_counting_loop_module()
    info = convert_to_essa(function)
    # i < n: both are variables, both branches get copies.
    assert len(info.sigma_copies) == 4
    verify_function(function)


def test_two_index_loop_renames_gep_indices():
    module, function = build_two_index_loop_module()
    info = convert_to_essa(function)
    verify_function(function)
    body = function.block_by_name("body")
    geps = [i for i in body.instructions if i.opcode == "gep"]
    # The body is the true branch of (i < j): the gep indices must now be the
    # σ-copies of i and j rather than the φ-nodes themselves.
    assert all(isinstance(g.index, Copy) for g in geps)
    # The decrement j - 1 splits the live range of (the current name of) j.
    assert len(info.subtraction_copies) == 1


def test_figure3_program_splits_subtraction_and_conditional():
    module, function = build_figure3_module()
    info = convert_to_essa(function)
    verify_function(function)
    # x4 = x2 - 2 introduces one split copy (x5 in the paper's Figure 6).
    assert len(info.subtraction_copies) >= 1
    x4_split = info.subtraction_copies[0]
    assert x4_split.split_subtraction.opcode == "sub"


def test_conversion_is_idempotent():
    module, function = build_diamond_module()
    first = convert_to_essa(function)
    count_after_first = function.instruction_count()
    second = convert_to_essa(function)
    assert second.total_copies == 0
    assert function.instruction_count() == count_after_first


def test_transformation_preserves_semantics():
    module, function = build_two_index_loop_module()
    reference = Interpreter(module)
    array = reference.allocate_array([0, 10, 20, 30, 40, 50])
    reference.run("copy_reverse", [array, 5])
    expected = reference.read_array(array, 6)

    convert_to_essa(function)
    verify_function(function)
    transformed = Interpreter(module)
    array2 = transformed.allocate_array([0, 10, 20, 30, 40, 50])
    transformed.run("copy_reverse", [array2, 5])
    assert transformed.read_array(array2, 6) == expected


def test_copies_can_be_removed_to_recover_original_shape():
    module, function = build_diamond_module()
    original_result = Interpreter(module).run("f", [2, 7])
    convert_to_essa(function)
    removed = remove_copies(function)
    assert removed > 0
    assert Interpreter(module).run("f", [2, 7]) == original_result
