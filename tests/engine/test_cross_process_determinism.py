"""Cross-process determinism: the engine's foundational invariant.

Sharded evaluation is only sound because compiling the same source text in
any process yields bit-identical IR (deterministic frontend, mem2reg and
e-SSA conversion) and therefore bit-identical alias verdicts.  These tests
compile the same Csmith-seeded workload in two *separate* subprocesses
(``maxtasksperchild=1`` forces distinct worker processes) and compare
printed IR and per-pair verdict streams against each other and against the
parent process.
"""

from repro.engine import run_workload
from repro.frontend import compile_source
from repro.ir.printer import print_module
from repro.synth import CsmithConfig, RandomProgramGenerator
from repro.synth.workloads import compose_source

SPECS = (("basicaa",), ("lt",), ("basicaa", "lt"))


def _csmith_source(seed: int = 2024) -> str:
    config = CsmithConfig(seed=seed, pointer_depth=3, statement_count=12,
                          loop_count=2, chain_loops=1, chain_length=4)
    return RandomProgramGenerator(config).generate_source()


def test_two_subprocesses_compile_identical_ir():
    source = _csmith_source()
    units = [("csmith_p", source), ("csmith_p", source)]
    results = run_workload(units, kind="print-ir", workers=2,
                           max_tasks_per_child=1)
    first, second = (result.payload for result in results)
    assert first["pid"] != second["pid"], "expected two distinct processes"
    assert first["ir"] == second["ir"]
    # The parent's compilation matches the children's too.
    parent_ir = print_module(compile_source(source, module_name="csmith_p"))
    assert parent_ir == first["ir"]


def test_two_subprocesses_agree_on_verdicts():
    source = _csmith_source(seed=77)
    units = [("csmith_v", source), ("csmith_v", source)]
    results = run_workload(units, specs=SPECS, workers=2, max_tasks_per_child=1)
    first, second = results
    assert first.payload["pid"] != second.payload["pid"]
    assert first.payload["labels"] == second.payload["labels"]
    assert first.payload["module_hash"] == second.payload["module_hash"]
    # And the serial in-process evaluation agrees with both.
    serial = run_workload([("csmith_v", source)], specs=SPECS, workers=0)[0]
    assert serial.payload["labels"] == first.payload["labels"]


def test_composed_workload_program_is_deterministic_across_processes():
    source = compose_source("det", ["vector_add"], [(13, 12, 2, 2)])
    units = [("det", source), ("det", source)]
    results = run_workload(units, kind="print-ir", workers=2,
                           max_tasks_per_child=1)
    assert results[0].payload["ir"] == results[1].payload["ir"]


def test_store_payloads_transfer_across_processes(tmp_path):
    """Entries persisted by one run warm a parallel run in fresh processes,
    with bit-identical verdict streams."""
    source = _csmith_source(seed=9)
    store_path = str(tmp_path / "store.sqlite")
    cold = run_workload([("warmed", source)], specs=SPECS, workers=0,
                        store=store_path)[0]
    warm = run_workload([("warmed", source), ("warmed", source)], specs=SPECS,
                        workers=2, max_tasks_per_child=1, store=store_path)
    for result in warm:
        assert result.store_hits > 0
        assert result.store_misses == 0
        assert result.payload["labels"] == cold.payload["labels"]
