"""Tests for the persistent analysis store (backends, keys, versioning)."""

import os

import pytest

from repro.engine.store import (
    STORE_VERSION,
    AnalysisStore,
    default_store_max_bytes,
    function_key,
    text_hash,
    unit_key,
)


PAYLOAD = {"counts": {"no_alias": 3, "may_alias": 7}, "codes": "NNNMMMMMMM"}


@pytest.fixture(params=["sqlite", "pickle"])
def backend(request):
    return request.param


def test_round_trip_and_reopen(tmp_path, backend):
    path = str(tmp_path / "store.bin")
    with AnalysisStore(path, backend=backend) as store:
        assert store.get("k1") is None
        store.put("k1", PAYLOAD)
        store.put_many([("k2", {"codes": "M"}), ("k3", {"codes": "N"})])
        assert store.get("k1") == PAYLOAD
        assert len(store) == 3
    # A fresh process (modelled by a fresh object) sees the same entries.
    with AnalysisStore(path, backend=backend) as reopened:
        assert reopened.get("k2") == {"codes": "M"}
        assert sorted(reopened.keys()) == ["k1", "k2", "k3"]


def test_hit_miss_counters(tmp_path, backend):
    with AnalysisStore(str(tmp_path / "s.bin"), backend=backend) as store:
        store.put("k", PAYLOAD)
        store.get("k")
        store.get("absent")
        assert (store.hits, store.misses) == (1, 1)


def test_version_mismatch_invalidates(tmp_path, backend):
    path = str(tmp_path / "store.bin")
    with AnalysisStore(path, version="v1", backend=backend) as store:
        store.put("k1", PAYLOAD)
    # Reopening with a newer version drops every stale entry and restamps.
    with AnalysisStore(path, version="v2", backend=backend) as upgraded:
        assert upgraded.get("k1") is None
        assert len(upgraded) == 0
        upgraded.put("k1", {"codes": "X"})
    with AnalysisStore(path, version="v2", backend=backend) as reopened:
        assert reopened.get("k1") == {"codes": "X"}


def test_readonly_missing_file_is_empty(tmp_path, backend):
    path = str(tmp_path / "missing.bin")
    with AnalysisStore(path, backend=backend, readonly=True) as store:
        assert store.get("anything") is None
        assert len(store) == 0
    assert not os.path.exists(path)


def test_zero_byte_file_is_a_fresh_store(tmp_path):
    # touch(1) or an interrupted first write leaves a zero-byte file; the
    # pickle backend must treat it as empty instead of raising EOFError.
    path = str(tmp_path / "empty.pickle")
    with open(path, "wb"):
        pass
    with AnalysisStore(path, backend="pickle") as store:
        assert len(store) == 0
        assert store.get("anything") is None
        store.put("k", PAYLOAD)
    with AnalysisStore(path, backend="pickle") as reopened:
        assert reopened.get("k") == PAYLOAD


def test_readonly_rejects_writes_and_version_mismatch_misses(tmp_path, backend):
    path = str(tmp_path / "store.bin")
    with AnalysisStore(path, version="v1", backend=backend) as store:
        store.put("k1", PAYLOAD)
    with AnalysisStore(path, backend=backend, readonly=True, version="v1") as reader:
        assert reader.get("k1") == PAYLOAD
        with pytest.raises(RuntimeError):
            reader.put("k2", PAYLOAD)
    # A read-only store of the wrong version answers misses but must not
    # clear entries it cannot own.
    with AnalysisStore(path, backend=backend, readonly=True, version="v2") as reader:
        assert reader.get("k1") is None
    with AnalysisStore(path, backend=backend, readonly=True, version="v1") as reader:
        assert reader.get("k1") == PAYLOAD


def test_default_version_is_store_version(tmp_path):
    store = AnalysisStore(str(tmp_path / "s.sqlite"))
    assert store.version == STORE_VERSION
    store.close()


def test_backend_selection_by_suffix(tmp_path):
    pickle_store = AnalysisStore(str(tmp_path / "s.pkl"))
    sqlite_store = AnalysisStore(str(tmp_path / "s.sqlite"))
    assert pickle_store.backend_name == "pickle"
    assert sqlite_store.backend_name == "sqlite"
    pickle_store.close()
    sqlite_store.close()


def test_backend_selection_by_environment(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE_BACKEND", "pickle")
    store = AnalysisStore(str(tmp_path / "s.db"))
    assert store.backend_name == "pickle"
    store.close()


def test_function_key_sensitivity():
    base = function_key("lt", "define i32 @f()", "mhash")
    assert function_key("basicaa", "define i32 @f()", "mhash") != base
    assert function_key("lt", "define i32 @g()", "mhash") != base
    assert function_key("lt", "define i32 @f()", "other") != base
    assert function_key("lt", "define i32 @f()", "mhash") == base


def test_unit_key_sensitivity():
    base = unit_key("aaeval", "p", "int main() {}", ["lt"], True)
    assert unit_key("aaeval", "p", "int main() {}", ["lt"], False) != base
    assert unit_key("aaeval", "p", "int main() { return 0; }", ["lt"], True) != base
    assert unit_key("aaeval", "p", "int main() {}", ["lt", "basicaa"], True) != base
    assert unit_key("aaeval", "p", "int main() {}", ["lt"], True) == base


def test_unit_key_label_separator_unambiguous():
    """Labels are digested NUL-terminated, so no label text can collide
    with a differently-split label list (the old ``"|".join`` could)."""
    assert (unit_key("aaeval", "p", "src", ["a|b"], True)
            != unit_key("aaeval", "p", "src", ["a", "b"], True))
    assert (unit_key("aaeval", "p", "src", ["a", "b|c"], True)
            != unit_key("aaeval", "p", "src", ["a|b", "c"], True))


def test_store_version_aaeval4_to_aaeval5_migration(tmp_path, backend):
    """The fingerprint-keying bump: stale ``aaeval-4`` entries never serve.

    A writable open under the current version clears them wholesale; a
    read-only open (shard workers) answers clean misses without crashing
    or clearing entries it does not own.
    """
    assert STORE_VERSION == "aaeval-5"
    path = str(tmp_path / "store.bin")
    with AnalysisStore(path, version="aaeval-4", backend=backend) as old:
        old.put("stale-module-hash-key", PAYLOAD)
    # Read-only first (the worker path): miss cleanly, leave the file alone.
    with AnalysisStore(path, backend=backend, readonly=True) as reader:
        assert reader.version == STORE_VERSION
        assert reader.get("stale-module-hash-key") is None
    with AnalysisStore(path, version="aaeval-4", backend=backend,
                       readonly=True) as reader:
        assert reader.get("stale-module-hash-key") == PAYLOAD
    # Writable open (the coordinator path): drop and restamp.
    with AnalysisStore(path, backend=backend) as upgraded:
        assert upgraded.get("stale-module-hash-key") is None
        assert len(upgraded) == 0
        upgraded.put("fingerprint-key", PAYLOAD)
    with AnalysisStore(path, backend=backend) as reopened:
        assert reopened.get("fingerprint-key") == PAYLOAD


def test_text_hash_is_stable():
    assert text_hash("abc") == text_hash("abc")
    assert text_hash("abc") != text_hash("abd")


# -- growth management ------------------------------------------------------------

def test_generation_advances_per_writable_open(tmp_path, backend):
    path = str(tmp_path / "gen.bin")
    with AnalysisStore(path, backend=backend) as store:
        first = store.generation
        assert first >= 1
    with AnalysisStore(path, backend=backend) as store:
        assert store.generation == first + 1
    with AnalysisStore(path, backend=backend, readonly=True) as store:
        # Read-only opens observe the counter without advancing it.
        assert store.generation == first + 1


def test_size_accounting(tmp_path, backend):
    with AnalysisStore(str(tmp_path / "size.bin"), backend=backend) as store:
        assert store.size_bytes() == 0
        store.put("k1", PAYLOAD)
        first = store.size_bytes()
        assert first > 0
        store.put("k2", PAYLOAD)
        assert store.size_bytes() == 2 * first  # same payload, same pickle


def test_evict_sweeps_oldest_generations_first(tmp_path, backend):
    path = str(tmp_path / "evict.bin")
    with AnalysisStore(path, backend=backend) as store:
        store.put("old_a", PAYLOAD)
        store.put("old_b", PAYLOAD)
        entry_size = store.size_bytes() // 2
    with AnalysisStore(path, backend=backend) as store:
        store.put("new_a", PAYLOAD)
        # Budget for one entry: both old-generation entries must go, the
        # fresh one must survive.
        evicted = store.evict(max_bytes=entry_size)
        assert evicted == 2
        assert sorted(store.keys()) == ["new_a"]
        assert store.evictions == 2
        # Already under budget: a second sweep is a no-op.
        assert store.evict(max_bytes=entry_size) == 0


def test_evict_is_deterministic_within_a_generation(tmp_path, backend):
    path = str(tmp_path / "det.bin")
    with AnalysisStore(path, backend=backend) as store:
        for key in ("c", "a", "b", "d"):
            store.put(key, PAYLOAD)
        entry_size = store.size_bytes() // 4
        store.evict(max_bytes=2 * entry_size)
        # Key order breaks ties inside one generation: a and b are swept.
        assert sorted(store.keys()) == ["c", "d"]


def test_put_many_enforces_budget_automatically(tmp_path, backend):
    path = str(tmp_path / "auto.bin")
    with AnalysisStore(path, backend=backend) as store:
        store.put("probe", PAYLOAD)
        entry_size = store.size_bytes()
    with AnalysisStore(path, backend=backend,
                       max_bytes=3 * entry_size) as store:
        for index in range(8):
            store.put("k{}".format(index), PAYLOAD)
        assert store.size_bytes() <= 3 * entry_size
        assert store.evictions > 0
    # The budget does not corrupt survivors.
    with AnalysisStore(path, backend=backend, max_bytes=0) as store:
        for key in store.keys():
            assert store.get(key) == PAYLOAD


def test_evict_without_budget_is_a_noop(tmp_path, backend):
    with AnalysisStore(str(tmp_path / "nb.bin"), backend=backend) as store:
        store.put("k", PAYLOAD)
        assert store.max_bytes is None
        assert store.evict() == 0
        assert store.keys() == ["k"]


def test_readonly_store_refuses_eviction(tmp_path, backend):
    path = str(tmp_path / "ro.bin")
    with AnalysisStore(path, backend=backend) as store:
        store.put("k", PAYLOAD)
    with AnalysisStore(path, backend=backend, readonly=True) as store:
        with pytest.raises(RuntimeError):
            store.evict(max_bytes=1)


def test_default_store_max_bytes_parsing(monkeypatch):
    from repro.api.config import ConfigError

    monkeypatch.delenv("REPRO_STORE_MAX_MB", raising=False)
    assert default_store_max_bytes() is None
    monkeypatch.setenv("REPRO_STORE_MAX_MB", "2")
    assert default_store_max_bytes() == 2 * 1024 * 1024
    monkeypatch.setenv("REPRO_STORE_MAX_MB", "0.5")
    assert default_store_max_bytes() == 512 * 1024
    monkeypatch.setenv("REPRO_STORE_MAX_MB", "0")
    assert default_store_max_bytes() is None
    # Invalid values fail loudly at the config boundary (no silent fallback).
    monkeypatch.setenv("REPRO_STORE_MAX_MB", "not-a-number")
    with pytest.raises(ConfigError, match="REPRO_STORE_MAX_MB"):
        default_store_max_bytes()
    monkeypatch.setenv("REPRO_STORE_MAX_MB", "-1")
    with pytest.raises(ConfigError, match="REPRO_STORE_MAX_MB"):
        default_store_max_bytes()


# ---------------------------------------------------------------------------
# LRU approximation: lookups touch entries (generation promotion)
# ---------------------------------------------------------------------------

def test_touch_on_hit_approximates_lru(tmp_path, backend):
    """A hit promotes the entry, so eviction reclaims cold entries first."""
    path = str(tmp_path / "lru.bin")
    with AnalysisStore(path, backend=backend) as store:  # generation 1
        store.put("cold", PAYLOAD)
        store.put("hot", PAYLOAD)
    with AnalysisStore(path, backend=backend) as store:  # generation 2
        assert store.get("hot") == PAYLOAD  # touch: hot -> generation 2
        store.put("fresh", PAYLOAD)
        total = store.size_bytes()
        entry = total // 3
        # Budget for two entries: the only generation-1 entry left is the
        # untouched one, so FIFO would also drop "hot"; LRU keeps it.
        evicted = store.evict(max_bytes=total - entry)
        assert evicted == 1
        assert "cold" not in store
        assert "hot" in store
        assert "fresh" in store


def test_touch_without_eviction_is_invisible(tmp_path, backend):
    """Touching must not change contents, counters or sizes."""
    path = str(tmp_path / "t.bin")
    with AnalysisStore(path, backend=backend) as store:
        store.put("k", PAYLOAD)
        size = store.size_bytes()
    with AnalysisStore(path, backend=backend) as store:
        assert store.get("k") == PAYLOAD
        assert store.size_bytes() == size
    with AnalysisStore(path, backend=backend) as store:
        assert store.get("k") == PAYLOAD


def test_readonly_reader_records_touched_keys(tmp_path, backend):
    """The reader half of the writable-reader protocol: hits are logged."""
    path = str(tmp_path / "ro-touch.bin")
    with AnalysisStore(path, backend=backend) as store:
        store.put_many([("a", PAYLOAD), ("b", PAYLOAD)])
    reader = AnalysisStore(path, backend=backend, readonly=True)
    try:
        assert reader.get("a") == PAYLOAD
        assert reader.get("missing") is None
        assert reader.get("b") == PAYLOAD
        assert reader.touched_keys == ["a", "b"]
        with pytest.raises(RuntimeError):
            reader.touch_many(["a"])
    finally:
        reader.close()


def test_coordinator_applies_reader_touches(tmp_path, backend):
    """touch_many (the writer half) promotes the shipped keys."""
    path = str(tmp_path / "apply.bin")
    with AnalysisStore(path, backend=backend) as store:  # generation 1
        store.put_many([("a", PAYLOAD), ("b", PAYLOAD), ("c", PAYLOAD)])
    with AnalysisStore(path, backend=backend) as store:  # generation 2
        store.touch_many(["b"])  # as if a worker reported a hit on "b"
        store.touch_many(["nonexistent"])  # missing keys are no-ops
        total = store.size_bytes()
        entry = total // 3
        evicted = store.evict(max_bytes=entry)  # keep ~one entry
        assert evicted == 2
        assert store.keys() == ["b"]


def test_touches_flush_on_put_many_without_close(tmp_path, backend):
    """Buffered hits survive a write batch even if close() never runs."""
    path = str(tmp_path / "no-close.bin")
    with AnalysisStore(path, backend=backend) as store:  # generation 1
        store.put("hot", PAYLOAD)
    store = AnalysisStore(path, backend=backend)  # generation 2, never closed
    assert store.get("hot") == PAYLOAD  # buffered touch
    store.put("other", PAYLOAD)  # flushes the touch with the write batch
    if backend == "sqlite":
        # A second connection sees the promotion already.
        with AnalysisStore(path, backend=backend, max_bytes=0,
                           readonly=True) as reader:
            generations = {key: generation
                           for key, generation, _size in
                           reader._backend.entry_info()}
        assert generations["hot"] == 2
    else:
        assert dict((k, g) for k, g, _s in store._backend.entry_info())["hot"] == 2
